/* hetmem C API — the hwloc-memattrs-shaped interface (paper Fig. 4).
 *
 * The original implementation of this paper is a C API in hwloc 2.3
 * (hwloc/memattrs.h); most HPC runtimes that would consume it are C or
 * Fortran. This header exposes the same surface over the C++ library:
 * opaque handles, integer ids, and int error returns (0 success, negative
 * HETMEM_ERR_*), mirroring hwloc_memattr_get_best_target() and friends.
 *
 * Object model:
 *   hetmem_context  owns a topology + simulated machine + attribute
 *                   registry + heterogeneous allocator.
 *   nodes           are addressed by NUMA logical index (unsigned).
 *   initiators      are cpusets in Linux list syntax ("0-19,40-59").
 *   attributes      are integer ids; 0..7 are the builtins in the same
 *                   order as the C++ enum (capacity, locality, bandwidth,
 *                   latency, read/write variants).
 */
#ifndef HETMEM_CAPI_H_
#define HETMEM_CAPI_H_

#include <stddef.h>
#include <stdint.h>

#ifdef __cplusplus
extern "C" {
#endif

typedef struct hetmem_context hetmem_context;

/* Error codes (negative returns). */
enum {
  HETMEM_SUCCESS = 0,
  HETMEM_ERR_INVALID = -1,   /* bad argument / unknown handle */
  HETMEM_ERR_NOENT = -2,     /* no such attribute / no value */
  HETMEM_ERR_NOMEM = -3,     /* capacity exhausted */
  HETMEM_ERR_UNSUPPORTED = -4,
  HETMEM_ERR_PARSE = -5,
  HETMEM_ERR_INTERNAL = -6,
  HETMEM_ERR_AGAIN = -7,     /* backpressure / transient: retry later
                              * (see hetmem_last_retry_after_ms) */
};

/* Built-in attribute ids (match hetmem::attr::k*). */
enum {
  HETMEM_ATTR_CAPACITY = 0,
  HETMEM_ATTR_LOCALITY = 1,
  HETMEM_ATTR_BANDWIDTH = 2,
  HETMEM_ATTR_LATENCY = 3,
  HETMEM_ATTR_READ_BANDWIDTH = 4,
  HETMEM_ATTR_WRITE_BANDWIDTH = 5,
  HETMEM_ATTR_READ_LATENCY = 6,
  HETMEM_ATTR_WRITE_LATENCY = 7,
  HETMEM_ATTR_ENERGY_PER_BYTE = 8, /* nJ/byte moved, lower is better */
  HETMEM_ATTR_STATIC_POWER = 9,    /* watts of installed capacity, lower */
};

/* Allocation policies (match hetmem::alloc::Policy). */
enum {
  HETMEM_POLICY_STRICT = 0,
  HETMEM_POLICY_RANKED_FALLBACK = 1,
  HETMEM_POLICY_PREFERRED = 2,
};

/* --- context lifecycle -------------------------------------------------- */

/* Creates a context from a preset platform name (see
 * hetmem_list_presets); attributes are populated from the synthetic
 * firmware HMAT (local+remote). Returns NULL on unknown preset. */
hetmem_context* hetmem_context_create(const char* preset_name);

/* As above but attributes come from benchmarking the simulated machine
 * (slower; includes remote pairs). */
hetmem_context* hetmem_context_create_probed(const char* preset_name);

void hetmem_context_destroy(hetmem_context* ctx);

/* Writes up to `capacity` preset names into `names` (caller-owned array of
 * const char*); returns the total number of presets. */
int hetmem_list_presets(const char** names, size_t capacity);

/* --- topology queries --------------------------------------------------- */

/* Number of NUMA nodes / PUs. Negative on error. */
int hetmem_numa_count(const hetmem_context* ctx);
int hetmem_pu_count(const hetmem_context* ctx);

/* Node capacity in bytes; 0 on error. */
uint64_t hetmem_node_capacity(const hetmem_context* ctx, unsigned node);

/* Writes the node's locality cpuset in list syntax into buf. Returns the
 * needed length (snprintf-style) or negative error. */
int hetmem_node_cpuset(const hetmem_context* ctx, unsigned node, char* buf,
                       size_t buflen);

/* Kind name for debugging only ("DRAM", "HBM", ...) — applications should
 * not branch on this (the whole point of the paper). NULL on error. */
const char* hetmem_node_kind_debug(const hetmem_context* ctx, unsigned node);

/* Nodes local to an initiator cpuset: fills `nodes` (up to capacity),
 * returns the total count or negative error. */
int hetmem_local_nodes(const hetmem_context* ctx, const char* initiator,
                       unsigned* nodes, size_t capacity);

/* --- memory attributes (the paper's Fig. 4 calls) ------------------------ */

/* hwloc_memattr_get_value. For per-initiator attributes, `initiator` must
 * be a cpuset list string; pass NULL for global attributes. */
int hetmem_memattr_get_value(const hetmem_context* ctx, int attr,
                             unsigned node, const char* initiator,
                             double* value);

/* hwloc_memattr_get_best_target: *node/*value receive the winner. */
int hetmem_memattr_get_best_target(const hetmem_context* ctx, int attr,
                                   const char* initiator, unsigned* node,
                                   double* value);

/* hwloc_memattr_get_best_initiator: writes the winning cpuset into buf. */
int hetmem_memattr_get_best_initiator(const hetmem_context* ctx, int attr,
                                      unsigned node, char* buf, size_t buflen,
                                      double* value);

/* Attribute registration / lookup. Returns the id or negative error. */
int hetmem_memattr_register(hetmem_context* ctx, const char* name,
                            int higher_is_better, int need_initiator);
int hetmem_memattr_find(const hetmem_context* ctx, const char* name);
int hetmem_memattr_set_value(hetmem_context* ctx, int attr, unsigned node,
                             const char* initiator, double value);

/* --- the heterogeneous allocator ----------------------------------------- */

/* mem_alloc(bytes, attribute): returns a non-negative buffer handle or a
 * negative error. `policy` is a HETMEM_POLICY_* value. */
int64_t hetmem_alloc(hetmem_context* ctx, uint64_t bytes, int attr,
                     const char* initiator, int policy, const char* label);

int hetmem_free(hetmem_context* ctx, int64_t buffer);

/* Node currently holding the buffer, or negative error. */
int hetmem_buffer_node(const hetmem_context* ctx, int64_t buffer);

/* Migrates and returns the modeled cost in nanoseconds via *cost_ns. */
int hetmem_migrate(hetmem_context* ctx, int64_t buffer, unsigned node,
                   double* cost_ns);

/* Free/used bytes on a node. */
uint64_t hetmem_node_available(const hetmem_context* ctx, unsigned node);

/* --- multi-tenant service (docs/TENANCY.md) ------------------------------ */

/* Tenant priority classes (match hetmem::tenant::Priority). */
enum {
  HETMEM_PRIORITY_CRITICAL = 0,
  HETMEM_PRIORITY_NORMAL = 1,
  HETMEM_PRIORITY_BEST_EFFORT = 2,
};

/* Backpressure rejection reasons (hetmem_backpressure_rejections). */
enum {
  HETMEM_BACKPRESSURE_TOTAL = 0,  /* sum of the three reasons below */
  HETMEM_BACKPRESSURE_HEALTH = 1, /* every target quarantined/offline */
  HETMEM_BACKPRESSURE_QUOTA = 2,  /* tenant quota cannot absorb the bytes */
  HETMEM_BACKPRESSURE_SHED = 3,   /* degradation ladder shed the request */
};

/* Registers a tenant; returns its id (>= 1) or a negative error.
 * `priority` is a HETMEM_PRIORITY_* value; `total_cap_bytes` caps the
 * tenant's machine-wide usage (0 = unlimited); `share_weight` (> 0) scales
 * its migration-budget share. Duplicate names are HETMEM_ERR_INVALID. */
int64_t hetmem_tenant_register(hetmem_context* ctx, const char* name,
                               int priority, uint64_t total_cap_bytes,
                               double share_weight);

/* Deregisters a tenant. Its live buffers stay valid (and keep refunding the
 * quota as they are freed) but new allocations under the id are refused. */
int hetmem_tenant_deregister(hetmem_context* ctx, int64_t tenant);

/* hetmem_alloc charged against a tenant's quota and admitted through the
 * degradation ladder. On HETMEM_ERR_AGAIN the structured retry hint is
 * readable via hetmem_last_retry_after_ms. */
int64_t hetmem_alloc_tenant(hetmem_context* ctx, uint64_t bytes, int attr,
                            const char* initiator, int policy,
                            const char* label, int64_t tenant);

/* Bytes currently charged to the tenant across all tiers; 0 on error. */
uint64_t hetmem_tenant_used_bytes(const hetmem_context* ctx, int64_t tenant);

/* Allocator backpressure rejections broken down by reason (a
 * HETMEM_BACKPRESSURE_* value). Returns the count, or 0 on error. */
uint64_t hetmem_backpressure_rejections(const hetmem_context* ctx, int reason);

/* retry-after hint (ms) carried by the most recent HETMEM_ERR_AGAIN from
 * hetmem_alloc_tenant; 0 when none was produced yet. Clients should jitter
 * around it (full-jitter exponential backoff) rather than sleeping exactly
 * this long in lockstep. */
uint64_t hetmem_last_retry_after_ms(const hetmem_context* ctx);

/* --- power telemetry and the watt budget (docs/POWER.md) ----------------- */

/* Current estimated draw of `node` in watts (static share of installed
 * capacity + smoothed dynamic draw); negative error as a double (< 0) on a
 * bad context/node. A freshly created context reports the static floor. */
double hetmem_power_draw_watts(const hetmem_context* ctx, unsigned node);

/* Machine-wide watt budget consulted by the power governor. 0 = uncapped
 * (the default). Negative watts are HETMEM_ERR_INVALID. */
int hetmem_set_power_cap_watts(hetmem_context* ctx, double watts);
double hetmem_power_cap_watts(const hetmem_context* ctx);

/* Cumulative thermal power-throttle events reported against `node`
 * (governor escalation or injected machine.power.throttle faults); 0 on
 * error. */
uint64_t hetmem_throttle_events(const hetmem_context* ctx, unsigned node);

/* --- crash resilience: snapshot/restore + breakers (docs/RECOVERY.md) ---- */

/* Circuit-breaker states (match hetmem::recover::BreakerState). */
enum {
  HETMEM_BREAKER_CLOSED = 0,    /* normal service */
  HETMEM_BREAKER_OPEN = 1,      /* tripped; calls short-circuited */
  HETMEM_BREAKER_HALF_OPEN = 2, /* probing for recovery */
};

/* Serializes the context's full mutable state (placements, tenant charges,
 * allocator statistics, telemetry, supervisor state) to `path` in the
 * versioned hetmem-snap/1 text format. The write is atomic: the snapshot is
 * staged at `path`.tmp and renamed, so a crash mid-save leaves any previous
 * snapshot intact. Returns HETMEM_SUCCESS or a negative error. */
int hetmem_snapshot_save(const hetmem_context* ctx, const char* path);

/* Rebuilds a context from a snapshot file: the preset recorded in the
 * snapshot is re-instantiated (including probed attribute discovery when the
 * original context used it) and every buffer slot, tenant, charge, and
 * counter is restored so the new context reports statistics identical to
 * the saved one. Returns NULL on any parse, checksum, or restore failure —
 * a damaged snapshot never yields a partially restored context. */
hetmem_context* hetmem_snapshot_restore(const char* path);

/* State of the named per-subsystem circuit breaker ("migration" or
 * "evacuation"): a HETMEM_BREAKER_* value, HETMEM_ERR_NOENT for an unknown
 * breaker name, HETMEM_ERR_INVALID for a bad context. */
int hetmem_breaker_state(const hetmem_context* ctx, const char* breaker);

#ifdef __cplusplus
} /* extern "C" */
#endif

#endif /* HETMEM_CAPI_H_ */
