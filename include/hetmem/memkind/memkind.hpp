// memkind-compatibility shim — the paper's §II-D baseline, implemented over
// the simulated machine so the two allocation philosophies can be compared
// head-to-head (bench/ablation_memkind).
//
// memkind's API names memory *technologies*: MEMKIND_HBW means "give me
// high-bandwidth memory" and fails on machines that have none, because "it
// hardwires the difference between HBM and conventional memory instead of
// providing explicit performance-related criteria" (§II-D). This shim
// reproduces that behavior faithfully — including the failure — by keying
// off topo::MemoryKind, exactly what the attributes API refuses to do.
#pragma once

#include <cstdint>
#include <string>

#include "hetmem/simmem/machine.hpp"
#include "hetmem/support/result.hpp"

namespace hetmem::memkind {

/// The subset of memkind's static kinds that map onto our machines.
enum class Kind : std::uint8_t {
  kDefault,        // MEMKIND_DEFAULT: the OS default node
  kHbw,            // MEMKIND_HBW: HBM or fail
  kHbwPreferred,   // MEMKIND_HBW_PREFERRED: HBM, else default
  kHbwAll,         // MEMKIND_HBW_ALL: any HBM node, local or not
  kDax,            // MEMKIND_DAX_KMEM: NVDIMM exposed as system RAM, or fail
  kDaxPreferred,   // MEMKIND_DAX_KMEM_PREFERRED
  kHighestCapacity,// MEMKIND_HIGHEST_CAPACITY
};

[[nodiscard]] const char* kind_name(Kind kind);

class MemkindShim {
 public:
  explicit MemkindShim(sim::SimMachine& machine);

  /// memkind_malloc analogue. `initiator`: the calling thread's CPUs
  /// (memkind resolves locality from the calling thread too). Fails with
  /// kUnsupported when the machine simply has no memory of the requested
  /// technology — the portability failure the paper calls out.
  support::Result<sim::BufferId> malloc(std::uint64_t bytes, Kind kind,
                                        const support::Bitmap& initiator,
                                        std::string label = "memkind",
                                        std::size_t backing_bytes = 0);

  support::Status free(sim::BufferId buffer);

  /// memkind_check_available analogue.
  [[nodiscard]] bool available(Kind kind) const;

 private:
  [[nodiscard]] const topo::Object* find_node(topo::MemoryKind want,
                                              const support::Bitmap& initiator,
                                              bool local_only,
                                              std::uint64_t bytes) const;

  sim::SimMachine* machine_;
};

}  // namespace hetmem::memkind
