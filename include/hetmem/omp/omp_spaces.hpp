// OpenMP 5.x memory spaces and allocators over the attributes API.
//
// The paper's stated integration path (§II-E, §VIII: "we are working with
// some OpenMP developers to leverage our work into runtimes, especially
// through OpenMP memory spaces and allocators"): OpenMP names abstract
// spaces — omp_high_bw_mem_space, omp_low_lat_mem_space, ... — and this
// layer resolves them through MemAttrRegistry rankings, so the same OpenMP
// program gets MCDRAM on a KNL and plain DRAM on a DRAM+NVDIMM box. The
// subset implemented: the five predefined spaces, allocator construction
// with the fallback trait (default_mem_fb / null_fb / abort_fb), alignment,
// and the alloc/free entry points.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hetmem/alloc/allocator.hpp"

namespace hetmem::omp {

/// The predefined memory spaces of OpenMP 5.0 (spec §2.11.1), mapped to
/// allocation criteria:
enum class MemSpace : std::uint8_t {
  kDefault,       // omp_default_mem_space  -> Locality (the OS default node)
  kLargeCap,      // omp_large_cap_mem_space-> Capacity
  kConst,         // omp_const_mem_space    -> Locality (read-only data)
  kHighBandwidth, // omp_high_bw_mem_space  -> Bandwidth
  kLowLatency,    // omp_low_lat_mem_space  -> Latency
};

[[nodiscard]] const char* mem_space_name(MemSpace space);
[[nodiscard]] attr::AttrId space_attribute(MemSpace space);

/// omp_alloctrait_value_t subset: what to do when the space's memory is
/// exhausted (spec trait "fallback").
enum class FallbackTrait : std::uint8_t {
  kDefaultMemFb,  // retry in omp_default_mem_space (the spec default)
  kNullFb,        // return null (our Result error)
  kAbortFb,       // terminate — surfaced as a distinct error code here
};

struct AllocatorTraits {
  FallbackTrait fallback = FallbackTrait::kDefaultMemFb;
  std::uint64_t alignment = 64;  // trait "alignment": power of two
};

/// An omp_allocator_handle_t analogue.
struct OmpAllocator {
  MemSpace space = MemSpace::kDefault;
  AllocatorTraits traits;
};

class OmpRuntime {
 public:
  /// Binds to an allocator (and through it the machine + registry).
  explicit OmpRuntime(alloc::HeterogeneousAllocator& allocator);

  /// omp_init_allocator.
  support::Result<std::uint32_t> init_allocator(MemSpace space,
                                                const AllocatorTraits& traits);
  /// The predefined allocators (omp_default_mem_alloc etc.) exist from the
  /// start with handles 0..4 matching the MemSpace enum.
  [[nodiscard]] std::uint32_t predefined(MemSpace space) const {
    return static_cast<std::uint32_t>(space);
  }

  /// omp_alloc: the initiator models the calling thread's place.
  support::Result<sim::BufferId> allocate(std::uint64_t bytes,
                                          std::uint32_t allocator_handle,
                                          const support::Bitmap& initiator,
                                          std::string label = "omp",
                                          std::size_t backing_bytes = 0);

  /// omp_free.
  support::Status deallocate(sim::BufferId buffer);

  [[nodiscard]] const OmpAllocator* allocator_info(std::uint32_t handle) const;

 private:
  alloc::HeterogeneousAllocator* allocator_;
  std::vector<OmpAllocator> allocators_;
};

}  // namespace hetmem::omp
