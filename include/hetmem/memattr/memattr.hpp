// Memory performance attributes — the paper's primary contribution (§III-IV),
// modeled on the hwloc 2.3 memattrs API (hwloc/memattrs.h).
//
// Memory *targets* (NUMA nodes) are characterized by *attributes*. An
// attribute value may depend on which *initiator* (set of CPUs) performs the
// accesses: local DRAM is faster than the same DRAM seen from the other
// package. Applications select targets by comparing attribute values or by
// asking directly for the best local target for a criterion — never by
// hardwiring memory technologies (the whole point of the paper).
//
// Canonical units: Capacity in bytes, Bandwidth in bytes/s, Latency in ns,
// Locality in number of PUs. Custom attributes choose their own unit.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include "hetmem/support/bitmap.hpp"
#include "hetmem/support/result.hpp"
#include "hetmem/topo/topology.hpp"

namespace hetmem::attr {

/// Whether larger or smaller values rank a target higher for this criterion.
/// (Eq. 2 in the paper: for Latency, the *weaker* value has priority.)
enum class Polarity : std::uint8_t { kHigherFirst, kLowerFirst };

using AttrId = std::uint32_t;

/// Built-in attributes, registered by every registry in this exact order so
/// their ids are stable (mirrors HWLOC_MEMATTR_ID_*).
inline constexpr AttrId kCapacity = 0;        // bytes, higher first
inline constexpr AttrId kLocality = 1;        // #PUs of the node locality, lower first
inline constexpr AttrId kBandwidth = 2;       // bytes/s, higher, per-initiator
inline constexpr AttrId kLatency = 3;         // ns, lower, per-initiator
inline constexpr AttrId kReadBandwidth = 4;   // bytes/s, higher, per-initiator
inline constexpr AttrId kWriteBandwidth = 5;  // bytes/s, higher, per-initiator
inline constexpr AttrId kReadLatency = 6;     // ns, lower, per-initiator
inline constexpr AttrId kWriteLatency = 7;    // ns, lower, per-initiator
inline constexpr AttrId kFirstCustomAttr = 8;

struct AttrInfo {
  std::string name;
  Polarity polarity = Polarity::kHigherFirst;
  /// When true, values are stored per (target, initiator); when false a
  /// single value per target (Capacity, Locality).
  bool need_initiator = true;
};

/// An initiator is a set of CPUs performing the accesses — either an explicit
/// cpuset or the cpuset of a topology object (paper Fig. 4 caption).
class Initiator {
 public:
  static Initiator from_cpuset(support::Bitmap cpuset) {
    return Initiator(std::move(cpuset));
  }
  static Initiator from_object(const topo::Object& object) {
    return Initiator(object.cpuset());
  }

  [[nodiscard]] const support::Bitmap& cpuset() const { return cpuset_; }

 private:
  explicit Initiator(support::Bitmap cpuset) : cpuset_(std::move(cpuset)) {}
  support::Bitmap cpuset_;
};

/// How much a stored value should be believed (docs/RESILIENCE.md).
/// Capacity/Locality from the topology are always kTrusted; measured or
/// firmware-loaded values can be demoted when the producer detects noise
/// (probe repeat disagreement) or staleness (values loaded from a previous
/// run). Rankings prefer trusted values and fall back to coarser attributes
/// when an attribute has none left.
enum class Confidence : std::uint8_t { kTrusted, kNoisy, kStale };

[[nodiscard]] constexpr const char* confidence_name(Confidence confidence) {
  switch (confidence) {
    case Confidence::kTrusted: return "trusted";
    case Confidence::kNoisy: return "noisy";
    case Confidence::kStale: return "stale";
  }
  return "?";
}

struct TargetValue {
  const topo::Object* target = nullptr;
  double value = 0.0;
};

struct InitiatorValue {
  support::Bitmap initiator;
  double value = 0.0;
  Confidence confidence = Confidence::kTrusted;
};

/// Thread safety: the registry is read-mostly and internally synchronized
/// with a shared_mutex — get_value / targets_ranked / best_target and the
/// other queries take a shared (reader) lock and scale across threads, while
/// set_value / register_attribute / set_confidence / mark_all (probe and
/// HMAT writers) are exclusive. A ranking returned while a writer runs is
/// never torn: it reflects the registry strictly before or strictly after
/// each individual write (multi-value updates such as a whole HMAT load are
/// per-value atomic, not transactional).
class MemAttrRegistry {
 public:
  /// Binds to a topology and registers the built-in attributes. Capacity and
  /// Locality are populated immediately from the topology ("always supported
  /// natively", Table I); performance attributes start empty and are fed by
  /// the HMAT loader (hmat::) and/or benchmarking (probe::).
  explicit MemAttrRegistry(const topo::Topology& topology);

  [[nodiscard]] const topo::Topology& topology() const { return *topology_; }

  /// Registers a custom attribute (Table I last row). Names are unique.
  support::Result<AttrId> register_attribute(std::string_view name,
                                             Polarity polarity,
                                             bool need_initiator);

  [[nodiscard]] support::Result<AttrId> find_attribute(std::string_view name) const;
  [[nodiscard]] const AttrInfo& info(AttrId attr) const;
  [[nodiscard]] std::size_t attribute_count() const { return attributes_.size(); }

  /// Stores a value. For need_initiator attributes the initiator is
  /// mandatory; a later set_value with the same (target, initiator cpuset)
  /// overwrites. For global attributes pass nullopt.
  support::Status set_value(AttrId attr, const topo::Object& target,
                            const std::optional<Initiator>& initiator, double value);

  /// Reads a value (hwloc_memattr_get_value). For per-initiator attributes
  /// the lookup matches, in order: an exact stored cpuset, else the smallest
  /// stored cpuset containing the query, else the stored cpuset with the
  /// largest intersection. kNotFound when nothing matches.
  [[nodiscard]] support::Result<double> value(
      AttrId attr, const topo::Object& target,
      const std::optional<Initiator>& initiator) const;

  /// Best local target for an initiator (hwloc_memattr_get_best_target).
  /// Considers targets local to the initiator under `flags`; ties keep the
  /// lower logical index. kNotFound when no local target has a value.
  [[nodiscard]] support::Result<TargetValue> best_target(
      AttrId attr, const Initiator& initiator,
      topo::LocalityFlags flags = topo::LocalityFlags::kIntersecting) const;

  /// All local targets that have a value, best first (the allocator's
  /// fallback order, §IV-B). Targets without a value are omitted.
  [[nodiscard]] std::vector<TargetValue> targets_ranked(
      AttrId attr, const Initiator& initiator,
      topo::LocalityFlags flags = topo::LocalityFlags::kIntersecting) const;

  /// Best initiator for a target (hwloc_memattr_get_best_initiator); only
  /// meaningful for per-initiator attributes.
  [[nodiscard]] support::Result<InitiatorValue> best_initiator(
      AttrId attr, const topo::Object& target) const;

  /// All initiators that have a stored value for (attr, target).
  [[nodiscard]] std::vector<InitiatorValue> initiators(
      AttrId attr, const topo::Object& target) const;

  /// True when at least one target has a value for this attribute.
  [[nodiscard]] bool has_values(AttrId attr) const;

  // --- value confidence (resilience to noisy / stale measurements) ---

  /// Flags an existing value. kNotFound when no value is stored for the
  /// exact (target, initiator cpuset) pair.
  support::Status set_confidence(AttrId attr, const topo::Object& target,
                                 const std::optional<Initiator>& initiator,
                                 Confidence confidence);
  /// Confidence of the stored value matched the same way value() matches.
  [[nodiscard]] support::Result<Confidence> confidence(
      AttrId attr, const topo::Object& target,
      const std::optional<Initiator>& initiator) const;
  /// Demotes every stored value of `attr` (e.g. after reloading persisted
  /// values measured on a previous boot).
  void mark_all(AttrId attr, Confidence confidence);
  /// True when at least one stored value of `attr` is kTrusted.
  [[nodiscard]] bool has_trusted_values(AttrId attr) const;

  /// Resilient ranking: trusted values first (by polarity), then
  /// untrusted-valued targets as a last resort (also by polarity). Equal to
  /// targets_ranked when everything is trusted — the common case.
  [[nodiscard]] std::vector<TargetValue> targets_ranked_resilient(
      AttrId attr, const Initiator& initiator,
      topo::LocalityFlags flags = topo::LocalityFlags::kIntersecting) const;

  /// resolve_with_fallback, then a final coarser-attribute fallback: when
  /// neither `attr` nor its chain has any *trusted* value left, degrade to
  /// kCapacity (always populated natively from the topology) instead of
  /// ranking on values known to be noise. Fails only on invalid ids.
  [[nodiscard]] support::Result<AttrId> resolve_resilient(AttrId attr) const;

  /// Attribute fallback chain (§IV-B: "Bandwidth instead of Read Bandwidth"):
  /// returns `attr` itself when it has values, else the first fallback that
  /// does. Built-in chains: ReadBandwidth/WriteBandwidth -> Bandwidth,
  /// ReadLatency/WriteLatency -> Latency; everything else has no fallback.
  [[nodiscard]] support::Result<AttrId> resolve_with_fallback(AttrId attr) const;

 private:
  struct Stored {
    // Indexed by NUMA node logical index.
    std::vector<std::optional<double>> global_values;
    std::vector<Confidence> global_confidence;
    std::vector<std::vector<InitiatorValue>> per_initiator;
  };

  // The *_locked helpers assume the caller holds mutex_ (shared suffices for
  // the const ones); they exist so public methods composing several queries
  // take the lock exactly once (shared_mutex is not recursive).
  [[nodiscard]] bool valid_attr(AttrId attr) const { return attr < attributes_.size(); }
  [[nodiscard]] const InitiatorValue* match_initiator(
      const std::vector<InitiatorValue>& stored, const support::Bitmap& query) const;
  [[nodiscard]] support::Result<double> value_locked(
      AttrId attr, const topo::Object& target,
      const std::optional<Initiator>& initiator) const;
  [[nodiscard]] std::vector<TargetValue> targets_ranked_locked(
      AttrId attr, const Initiator& initiator, topo::LocalityFlags flags) const;
  [[nodiscard]] std::vector<TargetValue> targets_ranked_resilient_locked(
      AttrId attr, const Initiator& initiator, topo::LocalityFlags flags) const;
  [[nodiscard]] bool has_values_locked(AttrId attr) const;
  [[nodiscard]] bool has_trusted_values_locked(AttrId attr) const;

  const topo::Topology* topology_;
  // deque: stable AttrInfo addresses across register_attribute, so info()
  // can hand out references that outlive the lock (entries are immutable
  // once registered).
  std::deque<AttrInfo> attributes_;
  std::vector<Stored> values_;
  mutable std::shared_mutex mutex_;
};

/// Fig. 5-style report ("lstopo --memattrs"): every attribute with its per-
/// node values; bandwidths printed in MiB/s and latencies in ns to match the
/// paper's output format.
std::string memattrs_report(const MemAttrRegistry& registry);

/// Persistence: benchmark-measured values are expensive to (re)collect, so
/// hwloc lets tools export attribute values and reload them on the next run
/// (its XML export). Text format, one value per line:
///
///   # hetmem-memattrs v1
///   attr name=StreamTriad polarity=higher initiator=1   (custom attrs only)
///   value attr=Latency target=0 initiator=0-39 v=285.0
///   value attr=Capacity target=0 v=206158430208
///
/// serialize_values() dumps every stored value (built-in and custom);
/// load_values() re-registers custom attributes as needed and stores the
/// values into a registry bound to a matching topology (targets are matched
/// by OS index; unknown targets are an error).
std::string serialize_values(const MemAttrRegistry& registry);
support::Status load_values(MemAttrRegistry& registry, std::string_view text);

}  // namespace hetmem::attr
