// Memory performance attributes — the paper's primary contribution (§III-IV),
// modeled on the hwloc 2.3 memattrs API (hwloc/memattrs.h).
//
// Memory *targets* (NUMA nodes) are characterized by *attributes*. An
// attribute value may depend on which *initiator* (set of CPUs) performs the
// accesses: local DRAM is faster than the same DRAM seen from the other
// package. Applications select targets by comparing attribute values or by
// asking directly for the best local target for a criterion — never by
// hardwiring memory technologies (the whole point of the paper).
//
// Canonical units: Capacity in bytes, Bandwidth in bytes/s, Latency in ns,
// Locality in number of PUs. Custom attributes choose their own unit.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include "hetmem/health/quarantine.hpp"
#include "hetmem/memattr/compose.hpp"
#include "hetmem/support/bitmap.hpp"
#include "hetmem/support/result.hpp"
#include "hetmem/topo/topology.hpp"

namespace hetmem::attr {

/// Whether larger or smaller values rank a target higher for this criterion.
/// (Eq. 2 in the paper: for Latency, the *weaker* value has priority.)
enum class Polarity : std::uint8_t { kHigherFirst, kLowerFirst };

using AttrId = std::uint32_t;

/// Built-in attributes, registered by every registry in this exact order so
/// their ids are stable (mirrors HWLOC_MEMATTR_ID_*).
inline constexpr AttrId kCapacity = 0;        // bytes, higher first
inline constexpr AttrId kLocality = 1;        // #PUs of the node locality, lower first
inline constexpr AttrId kBandwidth = 2;       // bytes/s, higher, per-initiator
inline constexpr AttrId kLatency = 3;         // ns, lower, per-initiator
inline constexpr AttrId kReadBandwidth = 4;   // bytes/s, higher, per-initiator
inline constexpr AttrId kWriteBandwidth = 5;  // bytes/s, higher, per-initiator
inline constexpr AttrId kReadLatency = 6;     // ns, lower, per-initiator
inline constexpr AttrId kWriteLatency = 7;    // ns, lower, per-initiator
// Power attributes (docs/POWER.md): energy attributes are global per target
// (a device property, not an initiator-path one) and lower-first — less
// energy per byte moved, fewer static watts.
inline constexpr AttrId kEnergyPerByte = 8;   // nJ/byte moved, lower
inline constexpr AttrId kStaticPower = 9;     // W per node, lower
inline constexpr AttrId kFirstCustomAttr = 10;

struct AttrInfo {
  std::string name;
  Polarity polarity = Polarity::kHigherFirst;
  /// When true, values are stored per (target, initiator); when false a
  /// single value per target (Capacity, Locality).
  bool need_initiator = true;
};

/// An initiator is a set of CPUs performing the accesses — either an explicit
/// cpuset or the cpuset of a topology object (paper Fig. 4 caption).
class Initiator {
 public:
  static Initiator from_cpuset(support::Bitmap cpuset) {
    return Initiator(std::move(cpuset));
  }
  static Initiator from_object(const topo::Object& object) {
    return Initiator(object.cpuset());
  }

  [[nodiscard]] const support::Bitmap& cpuset() const { return cpuset_; }

 private:
  explicit Initiator(support::Bitmap cpuset) : cpuset_(std::move(cpuset)) {}
  support::Bitmap cpuset_;
};

/// How much a stored value should be believed (docs/RESILIENCE.md).
/// Capacity/Locality from the topology are always kTrusted; measured or
/// firmware-loaded values can be demoted when the producer detects noise
/// (probe repeat disagreement) or staleness (values loaded from a previous
/// run). Rankings prefer trusted values and fall back to coarser attributes
/// when an attribute has none left.
enum class Confidence : std::uint8_t { kTrusted, kNoisy, kStale };

[[nodiscard]] constexpr const char* confidence_name(Confidence confidence) {
  switch (confidence) {
    case Confidence::kTrusted: return "trusted";
    case Confidence::kNoisy: return "noisy";
    case Confidence::kStale: return "stale";
  }
  return "?";
}

struct TargetValue {
  const topo::Object* target = nullptr;
  double value = 0.0;
};

struct InitiatorValue {
  support::Bitmap initiator;
  double value = 0.0;
  Confidence confidence = Confidence::kTrusted;
};

/// What a cached ranking memoizes. kPlain/kResilient mirror targets_ranked /
/// targets_ranked_resilient for one attribute; kAllocPath additionally folds
/// resolve_with_fallback into the snapshot (the allocator's first step) and
/// kRescuePath folds resolve_resilient (its degradation step), so one cache
/// hit answers the whole "which attribute, ranked how" question without ever
/// touching the registry lock.
enum class RankingMode : std::uint8_t {
  kPlain,
  kResilient,
  kAllocPath,
  kRescuePath,
};

/// One memoized ranking: immutable once published, shared by every reader
/// that hits. `generation` stamps the registry state the snapshot was built
/// from; a snapshot whose stamp no longer matches generation() is rebuilt on
/// the next lookup and never served again.
struct CachedRanking {
  std::vector<TargetValue> targets;
  /// The attribute actually ranked: equals the requested attribute for
  /// kPlain/kResilient, the post-fallback-chain attribute for kAllocPath,
  /// and the post-degradation attribute for kRescuePath.
  AttrId resolved = 0;
  /// kAllocPath only: whether resolve_with_fallback succeeded. When false,
  /// `targets` is empty and `resolved` echoes the requested attribute.
  bool resolved_ok = true;
  // --- cache key (validated on lookup; hash collisions just overwrite) ---
  AttrId requested = 0;
  RankingMode mode = RankingMode::kResilient;
  topo::LocalityFlags flags = topo::LocalityFlags::kIntersecting;
  support::Bitmap initiator;
  std::uint64_t generation = 0;
};

using RankingSnapshot = std::shared_ptr<const CachedRanking>;

/// Hit/miss counters of the ranking cache (relaxed atomics; exact after a
/// quiescent point, monotone while running).
struct RankingCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  [[nodiscard]] double hit_rate() const {
    const double total = static_cast<double>(hits + misses);
    return total > 0.0 ? static_cast<double>(hits) / total : 0.0;
  }
};

/// Thread safety: the registry is read-mostly and internally synchronized
/// with a shared_mutex — get_value / targets_ranked / best_target and the
/// other queries take a shared (reader) lock and scale across threads, while
/// set_value / register_attribute / set_confidence / mark_all (probe and
/// HMAT writers) are exclusive. A ranking returned while a writer runs is
/// never torn: it reflects the registry strictly before or strictly after
/// each individual write (multi-value updates such as a whole HMAT load are
/// per-value atomic, not transactional).
class MemAttrRegistry {
 public:
  /// Binds to a topology and registers the built-in attributes. Capacity and
  /// Locality are populated immediately from the topology ("always supported
  /// natively", Table I); performance attributes start empty and are fed by
  /// the HMAT loader (hmat::) and/or benchmarking (probe::).
  explicit MemAttrRegistry(const topo::Topology& topology);

  [[nodiscard]] const topo::Topology& topology() const { return *topology_; }

  /// Registers a custom attribute (Table I last row). Names are unique.
  support::Result<AttrId> register_attribute(std::string_view name,
                                             Polarity polarity,
                                             bool need_initiator);

  [[nodiscard]] support::Result<AttrId> find_attribute(std::string_view name) const;
  [[nodiscard]] const AttrInfo& info(AttrId attr) const;
  [[nodiscard]] std::size_t attribute_count() const { return attributes_.size(); }

  /// Stores a value. For need_initiator attributes the initiator is
  /// mandatory; a later set_value with the same (target, initiator cpuset)
  /// overwrites. For global attributes pass nullopt.
  support::Status set_value(AttrId attr, const topo::Object& target,
                            const std::optional<Initiator>& initiator, double value);

  /// Reads a value (hwloc_memattr_get_value). For per-initiator attributes
  /// the lookup matches, in order: an exact stored cpuset, else the smallest
  /// stored cpuset containing the query, else the stored cpuset with the
  /// largest intersection. kNotFound when nothing matches.
  [[nodiscard]] support::Result<double> value(
      AttrId attr, const topo::Object& target,
      const std::optional<Initiator>& initiator) const;

  /// Best local target for an initiator (hwloc_memattr_get_best_target).
  /// Considers targets local to the initiator under `flags`; ties keep the
  /// lower logical index. kNotFound when no local target has a value.
  [[nodiscard]] support::Result<TargetValue> best_target(
      AttrId attr, const Initiator& initiator,
      topo::LocalityFlags flags = topo::LocalityFlags::kIntersecting) const;

  /// All local targets that have a value, best first (the allocator's
  /// fallback order, §IV-B). Targets without a value are omitted.
  [[nodiscard]] std::vector<TargetValue> targets_ranked(
      AttrId attr, const Initiator& initiator,
      topo::LocalityFlags flags = topo::LocalityFlags::kIntersecting) const;

  /// Best initiator for a target (hwloc_memattr_get_best_initiator); only
  /// meaningful for per-initiator attributes.
  [[nodiscard]] support::Result<InitiatorValue> best_initiator(
      AttrId attr, const topo::Object& target) const;

  /// All initiators that have a stored value for (attr, target).
  [[nodiscard]] std::vector<InitiatorValue> initiators(
      AttrId attr, const topo::Object& target) const;

  /// True when at least one target has a value for this attribute.
  [[nodiscard]] bool has_values(AttrId attr) const;

  // --- value confidence (resilience to noisy / stale measurements) ---

  /// Flags an existing value. kNotFound when no value is stored for the
  /// exact (target, initiator cpuset) pair.
  support::Status set_confidence(AttrId attr, const topo::Object& target,
                                 const std::optional<Initiator>& initiator,
                                 Confidence confidence);
  /// Confidence of the stored value matched the same way value() matches.
  [[nodiscard]] support::Result<Confidence> confidence(
      AttrId attr, const topo::Object& target,
      const std::optional<Initiator>& initiator) const;
  /// Demotes every stored value of `attr` (e.g. after reloading persisted
  /// values measured on a previous boot).
  void mark_all(AttrId attr, Confidence confidence);
  /// True when at least one stored value of `attr` is kTrusted.
  [[nodiscard]] bool has_trusted_values(AttrId attr) const;

  /// Resilient ranking: trusted values first (by polarity), then
  /// untrusted-valued targets as a last resort (also by polarity). Equal to
  /// targets_ranked when everything is trusted — the common case.
  [[nodiscard]] std::vector<TargetValue> targets_ranked_resilient(
      AttrId attr, const Initiator& initiator,
      topo::LocalityFlags flags = topo::LocalityFlags::kIntersecting) const;

  // --- ranking composition (compose.hpp) ---
  //
  // targets_ranked / targets_ranked_resilient are RankingComposition::
  // standard() applied to rank_candidates(); external rankers with their own
  // objectives (the power governor's bandwidth-per-watt, future access
  // classes) pull the same candidates and compose them differently instead
  // of the registry growing another special-case bucket.

  /// The raw composition input for (attr, initiator, flags): every local
  /// target with a value, in topology order, carrying value, confidence and
  /// the current quarantine verdict. Excluded targets are included (verdict
  /// kExclude) — dropping them is the composition's job.
  [[nodiscard]] std::vector<RankCandidate> rank_candidates(
      AttrId attr, const Initiator& initiator,
      topo::LocalityFlags flags = topo::LocalityFlags::kIntersecting) const;

  // --- generation-invalidated ranking cache (docs/PERF.md) ---
  //
  // Rankings change only on rare events (attribute registration, value
  // writes, probe demotion, node offlining), so the hot allocation path
  // memoizes them: a cache hit returns a shared immutable snapshot with NO
  // shared_mutex acquisition and no heap allocation. Every mutating
  // operation bumps generation(); a stale snapshot is rebuilt (under the
  // shared lock, once) on the next lookup for its key and never served
  // after the mutation that invalidated it became visible to the reader.

  /// Monotonic mutation counter. Bumped by register_attribute, set_value,
  /// set_confidence, mark_all, load_values and invalidate_rankings; never
  /// by queries. Strictly increases under concurrency (each successful
  /// mutation observes a unique increment).
  [[nodiscard]] std::uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }

  /// Forces every cached ranking stale without changing stored values — for
  /// external events that alter ranking *feasibility* rather than registry
  /// state (e.g. SimMachine taking a NUMA node offline).
  void invalidate_rankings();

  // --- health quarantine (docs/RESILIENCE.md "Health & evacuation") ---
  //
  // When a quarantine list is installed, every ranking composition consults
  // it: kExclude targets are dropped, kDeprioritize targets sink below all
  // normally-ranked targets (keeping polarity order within each group), and
  // best_target never returns an excluded node. Verdict *changes* do not
  // bump the generation by themselves — the writer (HealthMonitor) must call
  // invalidate_rankings() after each transition, which is what keeps the
  // verdict store + generation bump ordered (see quarantine.hpp).

  /// Installs (or clears, with nullptr) the quarantine list. Bumps the
  /// generation so existing cached rankings rebuild against it. The list
  /// must outlive the registry (or be cleared first).
  void set_quarantine_list(const health::QuarantineList* list);
  [[nodiscard]] const health::QuarantineList* quarantine_list() const {
    return quarantine_.load(std::memory_order_acquire);
  }

  /// Cached equivalents of targets_ranked / targets_ranked_resilient: the
  /// snapshot's `targets` is bit-identical to what the uncached call would
  /// return at the snapshot's generation. The primary overloads take the
  /// initiator's cpuset directly so a hit never copies a Bitmap (zero heap
  /// allocation); the Initiator overloads are conveniences that forward.
  [[nodiscard]] RankingSnapshot targets_ranked_cached(
      AttrId attr, const support::Bitmap& initiator_cpuset,
      topo::LocalityFlags flags = topo::LocalityFlags::kIntersecting) const;
  [[nodiscard]] RankingSnapshot targets_ranked_cached(
      AttrId attr, const Initiator& initiator,
      topo::LocalityFlags flags = topo::LocalityFlags::kIntersecting) const {
    return targets_ranked_cached(attr, initiator.cpuset(), flags);
  }
  [[nodiscard]] RankingSnapshot targets_ranked_resilient_cached(
      AttrId attr, const support::Bitmap& initiator_cpuset,
      topo::LocalityFlags flags = topo::LocalityFlags::kIntersecting) const;
  [[nodiscard]] RankingSnapshot targets_ranked_resilient_cached(
      AttrId attr, const Initiator& initiator,
      topo::LocalityFlags flags = topo::LocalityFlags::kIntersecting) const {
    return targets_ranked_resilient_cached(attr, initiator.cpuset(), flags);
  }

  /// The allocator's first step as one cached lookup: resolve_with_fallback
  /// composed with targets_ranked_resilient of the resolved attribute.
  /// resolved_ok=false (empty targets) when neither the attribute nor its
  /// chain has values — re-run resolve_with_fallback uncached for the error.
  [[nodiscard]] RankingSnapshot alloc_ranking_cached(
      AttrId attr, const support::Bitmap& initiator_cpuset,
      topo::LocalityFlags flags = topo::LocalityFlags::kIntersecting) const;

  /// The allocator's degradation step as one cached lookup:
  /// resolve_resilient composed with targets_ranked_resilient of the
  /// degraded attribute (ultimately kCapacity). Invalid ids yield an empty
  /// kCapacity snapshot.
  [[nodiscard]] RankingSnapshot rescue_ranking_cached(
      AttrId attr, const support::Bitmap& initiator_cpuset,
      topo::LocalityFlags flags = topo::LocalityFlags::kIntersecting) const;

  /// Cache observability and the uncached baseline switch (benchmarks
  /// disable the cache to measure what it buys; allocation *decisions* are
  /// identical either way).
  [[nodiscard]] RankingCacheStats ranking_cache_stats() const;
  void reset_ranking_cache_stats();
  void set_ranking_cache_enabled(bool enabled) {
    cache_enabled_.store(enabled, std::memory_order_relaxed);
  }
  [[nodiscard]] bool ranking_cache_enabled() const {
    return cache_enabled_.load(std::memory_order_relaxed);
  }

  /// resolve_with_fallback, then a final coarser-attribute fallback: when
  /// neither `attr` nor its chain has any *trusted* value left, degrade to
  /// kCapacity (always populated natively from the topology) instead of
  /// ranking on values known to be noise. Fails only on invalid ids.
  [[nodiscard]] support::Result<AttrId> resolve_resilient(AttrId attr) const;

  /// Attribute fallback chain (§IV-B: "Bandwidth instead of Read Bandwidth"):
  /// returns `attr` itself when it has values, else the first fallback that
  /// does. Built-in chains: ReadBandwidth/WriteBandwidth -> Bandwidth,
  /// ReadLatency/WriteLatency -> Latency; everything else has no fallback.
  [[nodiscard]] support::Result<AttrId> resolve_with_fallback(AttrId attr) const;

 private:
  struct Stored {
    // Indexed by NUMA node logical index.
    std::vector<std::optional<double>> global_values;
    std::vector<Confidence> global_confidence;
    std::vector<std::vector<InitiatorValue>> per_initiator;
  };

  // The *_locked helpers assume the caller holds mutex_ (shared suffices for
  // the const ones); they exist so public methods composing several queries
  // take the lock exactly once (shared_mutex is not recursive).
  [[nodiscard]] bool valid_attr(AttrId attr) const { return attr < attributes_.size(); }
  [[nodiscard]] const InitiatorValue* match_initiator(
      const std::vector<InitiatorValue>& stored, const support::Bitmap& query) const;
  [[nodiscard]] support::Result<double> value_locked(
      AttrId attr, const topo::Object& target,
      const std::optional<Initiator>& initiator) const;
  [[nodiscard]] std::vector<RankCandidate> rank_candidates_locked(
      AttrId attr, const Initiator& initiator, topo::LocalityFlags flags) const;
  [[nodiscard]] std::vector<TargetValue> targets_ranked_locked(
      AttrId attr, const Initiator& initiator, topo::LocalityFlags flags) const;
  [[nodiscard]] std::vector<TargetValue> targets_ranked_resilient_locked(
      AttrId attr, const Initiator& initiator, topo::LocalityFlags flags) const;
  [[nodiscard]] bool has_values_locked(AttrId attr) const;
  [[nodiscard]] bool has_trusted_values_locked(AttrId attr) const;
  [[nodiscard]] support::Result<AttrId> resolve_with_fallback_locked(
      AttrId attr) const;
  [[nodiscard]] AttrId resolve_resilient_locked(AttrId attr) const;

  /// Shared lookup/rebuild for the four cache modes. Hit: one atomic
  /// snapshot load validated against the key and generation(). Miss: rebuild
  /// under a shared lock (the generation stamp read under that lock is
  /// consistent — writers bump while exclusive), publish with a CAS that
  /// never replaces a newer-generation snapshot with an older one.
  [[nodiscard]] RankingSnapshot ranked_cached(
      RankingMode mode, AttrId attr, const support::Bitmap& initiator_cpuset,
      topo::LocalityFlags flags) const;
  /// Fills targets/resolved/resolved_ok for the key, caller holds mutex_.
  void build_ranking_locked(CachedRanking& out) const;
  void bump_generation_locked() {
    generation_.fetch_add(1, std::memory_order_release);
  }

  const topo::Topology* topology_;
  // deque: stable AttrInfo addresses across register_attribute, so info()
  // can hand out references that outlive the lock (entries are immutable
  // once registered).
  std::deque<AttrInfo> attributes_;
  std::vector<Stored> values_;
  mutable std::shared_mutex mutex_;

  // --- ranking cache state ---
  // Direct-mapped, power-of-two slots. The working set of distinct
  // (mode, attr, initiator, flags) keys in a process is tiny (a handful of
  // attributes x a handful of initiator localities); collisions simply
  // overwrite, which costs a rebuild, never correctness.
  static constexpr std::size_t kRankingCacheSlots = 128;
  mutable std::array<std::atomic<RankingSnapshot>, kRankingCacheSlots>
      ranking_cache_;
  std::atomic<std::uint64_t> generation_{0};
  std::atomic<const health::QuarantineList*> quarantine_{nullptr};
  std::atomic<bool> cache_enabled_{true};
  mutable std::atomic<std::uint64_t> cache_hits_{0};
  mutable std::atomic<std::uint64_t> cache_misses_{0};
};

/// Fig. 5-style report ("lstopo --memattrs"): every attribute with its per-
/// node values; bandwidths printed in MiB/s and latencies in ns to match the
/// paper's output format.
std::string memattrs_report(const MemAttrRegistry& registry);

/// Persistence: benchmark-measured values are expensive to (re)collect, so
/// hwloc lets tools export attribute values and reload them on the next run
/// (its XML export). Text format, one value per line:
///
///   # hetmem-memattrs v1
///   attr name=StreamTriad polarity=higher initiator=1   (custom attrs only)
///   value attr=Latency target=0 initiator=0-39 v=285.0
///   value attr=Capacity target=0 v=206158430208
///
/// serialize_values() dumps every stored value (built-in and custom);
/// load_values() re-registers custom attributes as needed and stores the
/// values into a registry bound to a matching topology (targets are matched
/// by OS index; unknown targets are an error).
std::string serialize_values(const MemAttrRegistry& registry);
support::Status load_values(MemAttrRegistry& registry, std::string_view text);

}  // namespace hetmem::attr
