// SLIT-style node-to-node distance matrix derived from Latency attributes
// (hwloc_distances_* analogue).
//
// Before HMAT, firmware described NUMA with the ACPI SLIT: relative
// distances normalized to 10 for local access. hwloc still exposes such
// matrices, and §VIII's open question — "if the application is irregular
// and the local DRAM is full, is it better to allocate in the local NVDIMM
// or in another DRAM?" — is answered by comparing exactly these entries.
#pragma once

#include <string>
#include <vector>

#include "hetmem/memattr/memattr.hpp"

namespace hetmem::attr {

class DistanceMatrix {
 public:
  /// Builds from the registry's Latency values: entry (i, j) is the latency
  /// of node i's local CPUs accessing node j. CPU-less nodes (e.g.
  /// network-attached memory) use the machine-wide cpuset as the initiator.
  /// Requires Latency values for every pair — generate the HMAT with
  /// local_only=false or run probe::discover with remote pairs first;
  /// kNotFound otherwise.
  static support::Result<DistanceMatrix> from_latencies(
      const MemAttrRegistry& registry);

  [[nodiscard]] std::size_t node_count() const { return size_; }
  /// SLIT-style relative value: 10 = the fastest pair in the machine.
  [[nodiscard]] unsigned value(unsigned from, unsigned to) const;
  /// The underlying latency in ns.
  [[nodiscard]] double latency_ns(unsigned from, unsigned to) const;

  /// Targets sorted by distance from `from`'s CPUs (closest first, ties by
  /// node index) — the §VIII "local NVDIMM vs remote DRAM" ordering.
  [[nodiscard]] std::vector<unsigned> nearest_order(unsigned from) const;

  /// ACPI-SLIT-style table rendering.
  [[nodiscard]] std::string render() const;

 private:
  explicit DistanceMatrix(std::size_t size)
      : size_(size), latency_(size * size, 0.0) {}
  std::size_t size_;
  std::vector<double> latency_;
};

}  // namespace hetmem::attr
