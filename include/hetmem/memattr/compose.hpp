// Ranking composition — how a list of candidate targets becomes a ranking.
//
// The registry used to hard-code its bucket structure: quarantine verdicts
// split targets_ranked into two groups, confidence split the resilient
// ranking into four, and each new placement concern (health, power, access
// classes) would have meant another special case. This module extracts the
// composition rule into one small algebra:
//
//   - a *candidate* carries everything known about one target (raw attribute
//     value, confidence, quarantine verdict);
//   - *layers* assign each candidate a bucket index (0 = best) or drop it;
//     layers compose lexicographically in the order they were added
//     (earlier layers dominate later ones);
//   - an optional *objective* replaces the raw value as the sort key inside
//     a bucket (e.g. the power governor's bandwidth-per-watt), with its own
//     polarity.
//
// compose() is a pure function of its inputs: candidates in topology order
// in, stable bucket-then-key order out — byte-identical to the registry's
// historical bucket-splitting for the standard compositions (the property
// tests assert this). Everything here is value types and free of registry
// state, so external rankers (health, power) express their orderings through
// the same API the registry itself uses.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "hetmem/health/quarantine.hpp"
#include "hetmem/topo/topology.hpp"

namespace hetmem::attr {

enum class Polarity : std::uint8_t;  // memattr.hpp
enum class Confidence : std::uint8_t;

struct TargetValue;

/// Everything composition may rank on for one candidate target. Built by
/// MemAttrRegistry::rank_candidates() (under its lock) or by hand in tests.
struct RankCandidate {
  const topo::Object* target = nullptr;
  /// Raw attribute value — what the resulting TargetValue reports.
  double value = 0.0;
  Confidence confidence{};  // kTrusted unless the producer demoted the value
  health::PlacementVerdict verdict = health::PlacementVerdict::kNormal;
};

class RankingComposition {
 public:
  /// Sentinel bucket: the candidate is removed from the ranking entirely
  /// (quarantine kExclude).
  static constexpr std::uint32_t kDropped = UINT32_MAX;

  /// Maps a candidate to a bucket index in [0, levels) — or kDropped.
  using Layer = std::function<std::uint32_t(const RankCandidate&)>;
  /// Maps a candidate to its within-bucket sort key.
  using Objective = std::function<double(const RankCandidate&)>;

  /// `value_polarity`: how raw values order within a bucket when no
  /// objective is installed (the attribute's own polarity).
  explicit RankingComposition(Polarity value_polarity);

  /// Appends a layer with `levels` buckets. Earlier layers dominate: two
  /// candidates are first ordered by the first layer that separates them.
  RankingComposition& add_layer(std::uint32_t levels, Layer layer);

  /// Replaces the within-bucket sort key (default: the raw value under the
  /// constructor's polarity). Layers still dominate the objective.
  RankingComposition& set_objective(Objective objective, Polarity key_polarity);

  /// Stable composition: candidates that tie on (buckets, key) keep their
  /// input order, so feeding topology-ordered candidates reproduces the
  /// registry's historical tie-breaking exactly.
  [[nodiscard]] std::vector<TargetValue> compose(
      const std::vector<RankCandidate>& candidates) const;

  // --- the library's canned layers ---

  /// Quarantine bucket (docs/RESILIENCE.md): kNormal -> 0, kDeprioritize ->
  /// 1 (sinks below every normal target), kExclude -> dropped.
  static Layer quarantine_layer();
  /// Confidence bucket: kTrusted -> 0, noisy/stale -> 1.
  static Layer confidence_layer();

  /// The registry's two standard compositions. Quarantine always dominates
  /// confidence: a node with noisy measurements is healthy hardware, a
  /// quarantined node is failing hardware.
  ///   confidence_aware=false : targets_ranked        (quarantine only)
  ///   confidence_aware=true  : targets_ranked_resilient (quarantine, then
  ///                            confidence)
  static RankingComposition standard(Polarity value_polarity,
                                     bool confidence_aware);

 private:
  struct LayerEntry {
    std::uint32_t levels = 1;
    Layer layer;
  };

  Polarity value_polarity_;
  Polarity key_polarity_;
  Objective objective_;
  std::vector<LayerEntry> layers_;
};

}  // namespace hetmem::attr
