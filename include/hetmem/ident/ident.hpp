// Automatic memory-kind identification from performance attributes alone
// (paper §III-A).
//
// Firmware does not say "this node is HBM" — and the paper argues it never
// reliably will, because performance varies across technologies. What an
// application can do is *classify* nodes from their measured attributes:
// a small node with outsized bandwidth behaves like HBM whatever it is
// built from; a big node with multiplied latency behaves like NVDIMM. This
// module is that classifier (the step SICM does with "Architecture
// Profiling" and KNL-era code hardwired). The output is a behavioral guess,
// not a technology claim — which is exactly how the allocator should use it.
#pragma once

#include <string>
#include <vector>

#include "hetmem/memattr/memattr.hpp"
#include "hetmem/topo/topology.hpp"

namespace hetmem::ident {

enum class KindGuess : std::uint8_t {
  kFastSmall,  // HBM/MCDRAM-like: bandwidth far above the machine median
  kNormal,     // DRAM-like: the baseline tier
  kSlowBig,    // NVDIMM-like: high capacity, multiplied latency
  kFar,        // NAM-like: extreme latency, machine-wide locality
  kUnknown,    // not enough attribute values to decide
};

[[nodiscard]] const char* kind_guess_name(KindGuess guess);

/// The guess a correct classifier should produce for a ground-truth kind.
[[nodiscard]] KindGuess expected_guess(topo::MemoryKind kind);

struct NodeClassification {
  unsigned node = 0;  // logical index
  KindGuess guess = KindGuess::kUnknown;
  /// 0..1; lower when the node sits near a decision boundary.
  double confidence = 0.0;
  std::string rationale;
};

struct ClassifyOptions {
  /// Bandwidth above `fast_bandwidth_ratio` x the machine median marks a
  /// fast tier; latency above `slow_latency_ratio` x the machine minimum
  /// marks a slow tier; `far_latency_ratio` marks network-attached.
  double fast_bandwidth_ratio = 2.0;
  double slow_latency_ratio = 2.2;
  double far_latency_ratio = 4.5;
  /// Absolute backstop for single-kind machines where relative ratios are
  /// all 1.0 (an HBM-only Fugaku node is still recognizably fast).
  double absolute_fast_bandwidth = 250e9;  // bytes/s
  double absolute_far_latency = 1000.0;    // ns
};

/// Classifies every NUMA node from the registry's Bandwidth/Latency/
/// Capacity values (best-initiator view). Nodes without performance values
/// come back kUnknown.
std::vector<NodeClassification> classify(const attr::MemAttrRegistry& registry,
                                         const ClassifyOptions& options = {});

/// Fraction of nodes whose guess matches expected_guess(ground truth kind);
/// used by tests and the identification bench.
double agreement_with_ground_truth(
    const topo::Topology& topology,
    const std::vector<NodeClassification>& classifications);

/// One line per node: "L#2: slow-big (confidence 0.9) — capacity 8.0x
/// median, latency 3.0x floor".
std::string render(const topo::Topology& topology,
                   const std::vector<NodeClassification>& classifications);

}  // namespace hetmem::ident
