// Kronecker (R-MAT) edge-list generator, Graph500-style.
//
// Generates the synthetic power-law graphs Graph500 BFS runs on
// (A=0.57, B=0.19, C=0.19, D=0.05; edgefactor 16). Generation is untimed in
// Graph500 and runs on plain host memory; only the BFS data structures live
// in simulated memory.
#pragma once

#include <cstdint>
#include <vector>

namespace hetmem::apps {

struct Edge {
  std::uint32_t u = 0;
  std::uint32_t v = 0;
};

struct RmatParams {
  unsigned scale = 16;        // 2^scale vertices
  unsigned edgefactor = 16;   // edges = edgefactor * 2^scale
  std::uint64_t seed = 20220503;  // PDSEC'22 vintage
  double a = 0.57;
  double b = 0.19;
  double c = 0.19;
};

/// Directed edge list with self-loops possible (removed by the CSR builder),
/// endpoints scrambled so vertex ids carry no structure.
std::vector<Edge> generate_rmat(const RmatParams& params);

}  // namespace hetmem::apps
