// Sparse matrix-vector multiply over simulated heterogeneous memory.
//
// SpMV is the workload where per-buffer criteria actually matter inside ONE
// application (paper §II-E: an application is "a set of memory buffers...
// each buffer may lead to different performance when allocated in different
// kinds of memory"): the matrix (values + column indices) streams at full
// bandwidth, while the gathered x vector is hit with data-dependent reads.
// Whole-process placement must compromise; per-buffer attributes place the
// matrix by Bandwidth and x by Latency — bench/ablation_perbuffer measures
// the gap.
#pragma once

#include <cstdint>
#include <memory>

#include "hetmem/alloc/allocator.hpp"
#include "hetmem/apps/csr.hpp"
#include "hetmem/apps/graph500.hpp"  // BufferPlacement
#include "hetmem/simmem/array.hpp"
#include "hetmem/simmem/exec.hpp"
#include "hetmem/support/result.hpp"

namespace hetmem::apps {

struct SpmvConfig {
  /// Declared matrix footprint (values + indices) — the Bandwidth-hungry
  /// part — and declared vector footprint — the Latency-hungry part.
  std::uint64_t matrix_bytes = 3ull << 30;
  std::uint64_t vector_bytes = 1ull << 30;
  /// Real backing instance: rows and nonzeros per row.
  std::uint32_t backing_rows = 1u << 14;
  std::uint32_t nnz_per_row = 16;
  unsigned threads = 16;
  unsigned iterations = 5;
  std::uint64_t seed = 7;
  double mlp = 6.0;
};

struct SpmvPlacement {
  BufferPlacement matrix;  // values + column indices (+ row offsets)
  BufferPlacement x;       // gathered input vector
  BufferPlacement y;       // streamed output vector

  static SpmvPlacement all_on_node(unsigned node);
  /// The paper's recipe: matrix by Bandwidth, x by Latency, y by Bandwidth.
  static SpmvPlacement per_buffer();
};

struct SpmvResult {
  double gflops = 0.0;        // 2*nnz flops per iteration, simulated time
  double seconds = 0.0;       // simulated
  double checksum = 0.0;
  unsigned matrix_node = 0;
  unsigned x_node = 0;
};

class SpmvRunner {
 public:
  static support::Result<std::unique_ptr<SpmvRunner>> create(
      sim::SimMachine& machine, alloc::HeterogeneousAllocator* allocator,
      const support::Bitmap& initiator, const SpmvConfig& config,
      const SpmvPlacement& placement);

  ~SpmvRunner();
  SpmvRunner(const SpmvRunner&) = delete;
  SpmvRunner& operator=(const SpmvRunner&) = delete;

  support::Result<SpmvResult> run();

  [[nodiscard]] const sim::ExecutionContext& exec() const { return *exec_; }
  [[nodiscard]] sim::ExecutionContext& exec() { return *exec_; }

  /// Re-reads buffer locations into the instrumented array views — pass as
  /// RuntimePolicy::attach's post-migration hook when the online runtime
  /// moves buffers mid-run.
  void refresh_arrays();

 private:
  SpmvRunner(sim::SimMachine& machine, SpmvConfig config);

  sim::SimMachine* machine_;
  SpmvConfig config_;
  std::vector<sim::BufferId> owned_;
  sim::BufferId values_id_{}, indices_id_{}, offsets_id_{}, x_id_{}, y_id_{};
  std::unique_ptr<sim::ExecutionContext> exec_;
  std::unique_ptr<sim::Array<double>> values_, x_, y_;
  std::unique_ptr<sim::Array<std::uint32_t>> indices_;
  std::unique_ptr<sim::Array<std::uint64_t>> offsets_;
};

}  // namespace hetmem::apps
