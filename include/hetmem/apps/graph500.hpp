// Graph500-style BFS benchmark over simulated heterogeneous memory
// (the paper's latency-sensitive use case, §VI).
//
// Protocol follows Graph500 v3: Kronecker graph, level-synchronized parallel
// BFS from several random roots, performance in Traversed Edges Per Second
// (harmonic mean across roots). "16 MPI processes on one socket / SubNUMA
// cluster" is modeled as 16 simulated threads bound to that initiator.
//
// The *declared* scale sets the paper-visible graph size (capacity charges
// and working-set effects); the *backing* scale is the real instance the BFS
// actually runs on (DESIGN.md §2).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "hetmem/alloc/allocator.hpp"
#include "hetmem/apps/csr.hpp"
#include "hetmem/memattr/memattr.hpp"
#include "hetmem/simmem/array.hpp"
#include "hetmem/simmem/exec.hpp"
#include "hetmem/support/result.hpp"

namespace hetmem::apps {

struct Graph500Config {
  unsigned scale_declared = 24;  // 2.15 GB of CSR targets at edgefactor 16
  unsigned scale_backing = 16;
  unsigned edgefactor = 16;
  unsigned threads = 16;
  unsigned num_roots = 8;
  std::uint64_t seed = 20220503;
  /// Per-edge CPU work (ns) — the platform's core speed knob (KNL cores are
  /// several times slower than Xeon's; Table II's absolute TEPS gap).
  double compute_ns_per_edge = 10.0;
  /// Outstanding-miss overlap for the dependent accesses.
  double mlp = 6.0;
  /// Beamer-style direction optimization: switch to bottom-up sweeps when
  /// the frontier exceeds num_vertices / direction_beta. Bottom-up scans
  /// unvisited vertices for any parent in the frontier — fewer dependent
  /// claims, mostly-sequential visited traffic. 0 disables (pure top-down,
  /// the calibrated Table II configuration).
  unsigned direction_beta = 0;
};

/// Where one logical buffer of the app goes.
struct BufferPlacement {
  /// Fixed node (whole-process binding experiments, Table II)...
  std::optional<unsigned> forced_node;
  /// ...or an attribute request through the heterogeneous allocator
  /// (the portable path, §IV-B).
  attr::AttrId attribute = attr::kCapacity;
  alloc::Policy policy = alloc::Policy::kRankedFallback;
  /// Forwarded to AllocRequest::attribute_rescue: chaos-hardened runs keep
  /// going on a Capacity ranking when the attribute has no usable values.
  bool attribute_rescue = false;
};

struct Graph500Placement {
  BufferPlacement graph;     // CSR offsets + targets
  BufferPlacement parents;   // BFS tree output (the Fig. 7a hot buffer)
  BufferPlacement frontier;  // current/next queues

  static Graph500Placement all_on_node(unsigned node);
  static Graph500Placement by_attribute(attr::AttrId attribute);
};

struct Graph500Result {
  double harmonic_mean_teps = 0.0;
  std::vector<double> teps_per_root;
  std::uint64_t backing_edges = 0;
  std::uint64_t declared_graph_bytes = 0;  // the paper's "Graph Size" column
  double total_sim_seconds = 0.0;
};

/// Owns the graph, the simulated buffers and the execution context so the
/// profiler can inspect the run afterwards (bench/table4, fig7).
class Graph500Runner {
 public:
  /// `allocator` may be null when every placement is forced_node.
  static support::Result<std::unique_ptr<Graph500Runner>> create(
      sim::SimMachine& machine, alloc::HeterogeneousAllocator* allocator,
      const support::Bitmap& initiator, const Graph500Config& config,
      const Graph500Placement& placement);

  ~Graph500Runner();
  Graph500Runner(const Graph500Runner&) = delete;
  Graph500Runner& operator=(const Graph500Runner&) = delete;

  /// Runs BFS from `num_roots` deterministic non-isolated roots.
  support::Result<Graph500Result> run();

  /// Single BFS; returns (teps, traversed edge count). Exposed for tests.
  support::Result<std::pair<double, std::uint64_t>> bfs_from(std::uint32_t root);

  /// Host-side validation of the last BFS tree (Graph500 validation step).
  [[nodiscard]] support::Status validate_last_tree() const;

  [[nodiscard]] const sim::ExecutionContext& exec() const { return *exec_; }
  [[nodiscard]] sim::ExecutionContext& exec() { return *exec_; }

  /// Re-reads buffer locations into the instrumented array views — pass as
  /// RuntimePolicy::attach's post-migration hook when the online runtime
  /// moves buffers mid-run.
  void refresh_arrays();

  [[nodiscard]] const CsrGraph& graph() const { return graph_; }
  [[nodiscard]] unsigned node_of_graph() const;
  [[nodiscard]] unsigned node_of_parents() const;
  [[nodiscard]] std::uint64_t declared_graph_bytes() const;

 private:
  Graph500Runner(sim::SimMachine& machine, Graph500Config config);

  support::Status allocate_buffers(alloc::HeterogeneousAllocator* allocator,
                                   const support::Bitmap& initiator,
                                   const Graph500Placement& placement);

  sim::SimMachine* machine_;
  Graph500Config config_;
  CsrGraph graph_;
  std::uint32_t last_root_ = 0;

  sim::BufferId offsets_id_{}, targets_id_{}, parents_id_{}, frontier_id_{},
      visited_id_{};
  std::vector<sim::BufferId> owned_;
  std::unique_ptr<sim::ExecutionContext> exec_;
  std::unique_ptr<sim::Array<std::uint64_t>> offsets_;
  std::unique_ptr<sim::Array<std::uint32_t>> targets_;
  std::unique_ptr<sim::Array<std::uint32_t>> parents_;
  std::unique_ptr<sim::Array<std::uint32_t>> frontier_;
  // Visited bitmap (n/8 bytes): the per-edge membership check hits this
  // mostly-cache-resident structure, not the parents array — that is what
  // makes reference Graph500 kernels as fast as they are.
  std::unique_ptr<sim::Array<std::uint64_t>> visited_;
};

/// The paper's "Graph Size" figure for a declared scale/edgefactor: the CSR
/// adjacency bytes (2 directed entries x 4 B per input edge).
[[nodiscard]] std::uint64_t graph500_declared_bytes(unsigned scale,
                                                    unsigned edgefactor);

}  // namespace hetmem::apps
