// KV-cache / hash-join probe kernel with a *moving* hot set.
//
// STREAM, Graph500 and SpMV all have stationary per-buffer behavior, so the
// online runtime (EpochSampler -> OnlineClassifier -> MigrationEngine) only
// ever sees steady state. This kernel is the adversarial complement: values
// live in `segments` independently placed buffers, key popularity follows a
// seeded Zipfian distribution, and every `shift_every_phases` phases the
// rank->key mapping rotates so the Zipf head lands on the *next* segment.
// The hot buffer therefore changes identity on a schedule — the phase-change
// scenario PAPERS.md "Online Application Guidance for Heterogeneous Memory
// Systems" calls out — and the runtime must evict the cooling segment and
// promote the heating one inside its hysteresis + budget envelope.
// bench/ablation_phases gates recovery against an oracle; the skew default
// (s = 1.5) puts ~99% of probes on the hot segment so cooled segments fall
// under the classifier's 1% insensitive floor and become evictable.
//
// Like the other runners, real probes run against a scaled-down backing
// store while traffic is recorded at declared scale (DESIGN.md §2), and all
// randomness is seeded per (phase, thread): a run's traffic, checksum and
// phase timings replay bit-identically, which the trace layer depends on.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "hetmem/alloc/allocator.hpp"
#include "hetmem/apps/graph500.hpp"  // BufferPlacement
#include "hetmem/simmem/array.hpp"
#include "hetmem/simmem/exec.hpp"
#include "hetmem/support/result.hpp"
#include "hetmem/support/zipf.hpp"

namespace hetmem::apps {

struct KvCacheConfig {
  /// Declared footprint of the value store, split evenly across segments.
  std::uint64_t declared_value_bytes = 4ull << 30;
  unsigned segments = 4;
  /// Declared footprints of the hash directory (sized to stay LLC-resident)
  /// and the streamed append log (spills the LLC, bandwidth-bound).
  std::uint64_t declared_directory_bytes = 16ull << 20;
  std::uint64_t declared_log_bytes = 512ull << 20;
  /// Real backing entries per segment (8-byte values).
  std::size_t backing_keys_per_segment = 1u << 14;
  unsigned threads = 4;
  /// Declared-scale probes per phase and real probes per thread per phase.
  double lookups_per_phase = 4e6;
  std::size_t backing_lookups_per_thread = 2048;
  /// Streamed log bytes appended per phase (declared scale).
  double log_bytes_per_phase = 16.0 * (1 << 20);
  unsigned phases = 32;
  /// Hot-set rotation cadence: hot segment = (phase / shift) % segments.
  unsigned shift_every_phases = 8;
  /// Zipf skew over all keys; see header comment for why the default is
  /// steep enough to cool rotated-away segments below the 1% share floor.
  double zipf_s = 1.5;
  std::uint64_t seed = 0x5eedcafe;
  double mlp = 6.0;
  /// Hash + probe compute per declared lookup.
  double compute_ns_per_lookup = 1.0;
};

struct KvCachePlacement {
  /// One placement rule applied to every buffer (directory, log, segments).
  BufferPlacement buffers;

  static KvCachePlacement all_on_node(unsigned node);
};

/// Results cover the phases executed by THIS call (run()/run_phases() may be
/// invoked repeatedly; the rotation schedule continues across calls).
struct KvCacheResult {
  /// Declared probes per simulated second over the executed phases.
  double lookups_per_second = 0.0;
  double seconds = 0.0;  // simulated
  double checksum = 0.0;
  /// Per executed phase: simulated duration and the hot segment index.
  std::vector<double> phase_ns;
  std::vector<unsigned> hot_segments;
};

class KvCacheRunner {
 public:
  static support::Result<std::unique_ptr<KvCacheRunner>> create(
      sim::SimMachine& machine, alloc::HeterogeneousAllocator* allocator,
      const support::Bitmap& initiator, const KvCacheConfig& config,
      const KvCachePlacement& placement);

  ~KvCacheRunner();
  KvCacheRunner(const KvCacheRunner&) = delete;
  KvCacheRunner& operator=(const KvCacheRunner&) = delete;

  /// Runs config.phases phases from the current cursor.
  support::Result<KvCacheResult> run();
  /// Runs `count` phases from the current cursor (bench windows interleave
  /// oracle migrations between calls).
  support::Result<KvCacheResult> run_phases(unsigned count);

  /// Hot segment for a global phase index under the rotation schedule.
  [[nodiscard]] unsigned hot_segment(unsigned phase) const {
    return (phase / config_.shift_every_phases) % config_.segments;
  }
  [[nodiscard]] unsigned phases_run() const { return phase_cursor_; }

  [[nodiscard]] sim::BufferId segment_buffer(unsigned segment) const {
    return segment_ids_[segment];
  }
  [[nodiscard]] sim::BufferId directory_buffer() const { return dir_id_; }
  [[nodiscard]] sim::BufferId log_buffer() const { return log_id_; }

  [[nodiscard]] const sim::ExecutionContext& exec() const { return *exec_; }
  [[nodiscard]] sim::ExecutionContext& exec() { return *exec_; }
  [[nodiscard]] const KvCacheConfig& config() const { return config_; }

  /// Re-reads buffer locations into the instrumented array views — pass as
  /// RuntimePolicy::attach's post-migration hook.
  void refresh_arrays();

 private:
  KvCacheRunner(sim::SimMachine& machine, KvCacheConfig config);

  sim::SimMachine* machine_;
  KvCacheConfig config_;
  std::vector<sim::BufferId> owned_;
  sim::BufferId dir_id_{}, log_id_{};
  std::vector<sim::BufferId> segment_ids_;
  std::unique_ptr<sim::ExecutionContext> exec_;
  std::unique_ptr<sim::Array<std::uint64_t>> directory_;
  std::unique_ptr<sim::Array<double>> log_;
  std::vector<std::unique_ptr<sim::Array<double>>> segments_;
  support::ZipfDistribution zipf_{1, 0.0};  // rebuilt over all keys in create
  unsigned phase_cursor_ = 0;
};

}  // namespace hetmem::apps
