// Compressed-sparse-row graph construction (host-side, untimed).
#pragma once

#include <cstdint>
#include <vector>

#include "hetmem/apps/rmat.hpp"

namespace hetmem::apps {

/// Symmetrized, deduplicated, self-loop-free CSR adjacency.
struct CsrGraph {
  std::uint32_t num_vertices = 0;
  std::uint64_t num_edges = 0;  // undirected edge count (each stored twice)
  std::vector<std::uint64_t> offsets;  // size num_vertices + 1
  std::vector<std::uint32_t> targets;  // size 2 * num_edges
  [[nodiscard]] std::uint32_t degree(std::uint32_t v) const {
    return static_cast<std::uint32_t>(offsets[v + 1] - offsets[v]);
  }
};

CsrGraph build_csr(std::vector<Edge> edges, std::uint32_t num_vertices);

}  // namespace hetmem::apps
