// STREAM Triad benchmark over simulated heterogeneous memory
// (the paper's bandwidth-sensitive use case, §VI, Table III).
//
// a[i] = b[i] + s * c[i]: 16 B read + 8 B written per element. The reported
// figure is the STREAM convention: (3 arrays x element bytes x iterations) /
// time. Arrays are placed either on a forced node or through the
// heterogeneous allocator with a criterion (Capacity / Latency / Bandwidth),
// which is exactly Table III's "Optimized Criteria" column.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "hetmem/alloc/allocator.hpp"
#include "hetmem/apps/graph500.hpp"  // BufferPlacement
#include "hetmem/simmem/array.hpp"
#include "hetmem/simmem/exec.hpp"
#include "hetmem/support/result.hpp"

namespace hetmem::apps {

struct StreamConfig {
  /// Total declared footprint of the three arrays together (Table III's
  /// "Total allocated memory for arrays").
  std::uint64_t declared_total_bytes = 3ull << 30;
  /// Real elements per array the kernel computes on.
  std::size_t backing_elements = 1u << 20;
  unsigned threads = 16;
  unsigned iterations = 10;
  /// Fixed per-kernel-launch overhead (barrier + fork/join), ns.
  double launch_overhead_ns = 40000.0;
};

struct StreamResult {
  double triad_bytes_per_second = 0.0;
  unsigned node_a = 0, node_b = 0, node_c = 0;
  bool fell_back = false;  // any array not on its first-ranked target
  double checksum = 0.0;   // guards against the kernel being optimized away
};

class StreamRunner {
 public:
  /// All three arrays use the same placement rule (STREAM's arrays are
  /// equally hot). `allocator` may be null only with forced_node.
  static support::Result<std::unique_ptr<StreamRunner>> create(
      sim::SimMachine& machine, alloc::HeterogeneousAllocator* allocator,
      const support::Bitmap& initiator, const StreamConfig& config,
      const BufferPlacement& placement);

  ~StreamRunner();
  StreamRunner(const StreamRunner&) = delete;
  StreamRunner& operator=(const StreamRunner&) = delete;

  support::Result<StreamResult> run_triad();

  [[nodiscard]] const sim::ExecutionContext& exec() const { return *exec_; }
  [[nodiscard]] sim::ExecutionContext& exec() { return *exec_; }

  /// Re-reads buffer locations into the instrumented array views — pass as
  /// RuntimePolicy::attach's post-migration hook when the online runtime
  /// moves buffers mid-run.
  void refresh_arrays();

 private:
  StreamRunner(sim::SimMachine& machine, StreamConfig config);

  sim::SimMachine* machine_;
  StreamConfig config_;
  sim::BufferId a_id_{}, b_id_{}, c_id_{};
  std::vector<sim::BufferId> owned_;
  bool fell_back_ = false;
  std::unique_ptr<sim::ExecutionContext> exec_;
  std::unique_ptr<sim::Array<double>> a_, b_, c_;
};

}  // namespace hetmem::apps
