// GlobalArbiter — cross-tenant arbitration of the migration byte budget.
//
// The MigrationEngine and the health Evacuator already share one per-epoch
// byte pool (the paper's §VII migration-avoidance knob). Without tenancy
// that pool is first-come-first-served: one tenant's evacuation burst or
// promotion storm can starve every other tenant's moves for the epoch. The
// arbiter subdivides the pool into per-tenant slices weighted by
//
//     priority_weight(priority) * quota.share_weight * deficit_boost
//
// where deficit_boost grows (capped) for tenants whose draws were denied in
// the previous epoch — a starved tenant's slice recovers instead of
// compounding. Draws for untenanted buffers bypass slicing entirely (they
// are governed only by the engine's global pool), so the classic
// single-application mode is unchanged.
//
// Denial is deferral, not loss: both budget consumers are level-triggered
// and retry every epoch, so a denied move simply waits for a fatter slice.
//
// Thread safety (docs/CONCURRENCY.md): externally synchronized — the same
// single epoch loop that drives MigrationEngine::run_epoch and
// Evacuator::drain_epoch drives begin_epoch/try_draw.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "hetmem/tenant/tenant.hpp"

namespace hetmem::tenant {

struct ArbiterOptions {
  /// Priority multipliers for the slice weights.
  double critical_weight = 4.0;
  double normal_weight = 2.0;
  double best_effort_weight = 1.0;
  /// Cap on the multiplicative boost a tenant's weight can earn from its
  /// previous-epoch denial deficit (1.0 = no boost ever).
  double deficit_boost_cap = 2.0;
};

[[nodiscard]] constexpr double priority_weight(const ArbiterOptions& options,
                                               Priority priority) {
  switch (priority) {
    case Priority::kCritical: return options.critical_weight;
    case Priority::kNormal: return options.normal_weight;
    case Priority::kBestEffort: return options.best_effort_weight;
  }
  return 1.0;
}

/// One tenant's allotment for the current epoch.
struct ArbiterSlice {
  TenantId id = kNoTenant;
  std::string name;
  std::uint64_t slice_bytes = 0;
  std::uint64_t granted_bytes = 0;
  std::uint64_t denied_bytes = 0;
};

struct ArbiterStats {
  std::uint64_t epochs = 0;
  std::uint64_t draws_granted = 0;
  std::uint64_t draws_denied = 0;
  std::uint64_t bytes_granted = 0;
  std::uint64_t bytes_denied = 0;
};

class GlobalArbiter {
 public:
  explicit GlobalArbiter(const TenantRegistry& registry,
                         ArbiterOptions options = {});

  /// Opens `epoch_index`, splitting `pool_bytes` into per-tenant slices over
  /// the registry's live tenants. Idempotent for the current epoch.
  /// UINT64_MAX pool means unlimited: every slice is unlimited too.
  void begin_epoch(std::uint64_t epoch_index, std::uint64_t pool_bytes);

  /// Draws `bytes` from `id`'s slice; false (and a recorded deficit) when
  /// the slice cannot cover it. kNoTenant and tenants registered after the
  /// epoch opened are granted unconditionally — slicing protects the
  /// tenants that were present when the pool was split. A draw against a
  /// stale epoch index lazily reopens with the previous pool size.
  bool try_draw(std::uint64_t epoch_index, TenantId id, std::uint64_t bytes);

  [[nodiscard]] std::uint64_t slice_remaining(TenantId id) const;
  [[nodiscard]] const std::vector<ArbiterSlice>& slices() const {
    return slices_;
  }
  [[nodiscard]] const ArbiterStats& stats() const { return stats_; }
  [[nodiscard]] const ArbiterOptions& options() const { return options_; }

  /// Deterministic text rendering of the current epoch's slices.
  [[nodiscard]] std::string render_log() const;

 private:
  const TenantRegistry* registry_;
  ArbiterOptions options_;
  std::uint64_t epoch_ = UINT64_MAX;
  std::uint64_t pool_bytes_ = UINT64_MAX;
  std::vector<ArbiterSlice> slices_;  // sorted by tenant id (deterministic)
  /// Denied bytes per tenant in the previous epoch -> deficit boost.
  std::unordered_map<TenantId, std::uint64_t> last_denied_;
  ArbiterStats stats_;
};

}  // namespace hetmem::tenant
