// Multi-tenant memory service layer (docs/TENANCY.md).
//
// The paper's allocator assumes one cooperative application; the ROADMAP
// north-star is a service where many clients contend for the same
// DRAM/HBM/NVDIMM capacity. This header is the arbitration substrate:
//
//   Tenant          — one client's identity: priority class, quota, and
//                     atomic usage accounting (lives as a shared_ptr so
//                     in-flight allocations survive deregistration).
//   TenantRegistry  — registration/lookup plus the machine-wide overload
//                     policy (DegradationLadder) and weighted-share math.
//   DegradationLadder — maps machine pressure to a per-priority action:
//                     place normally, spill off hot tiers, or shed with a
//                     structured retry-after hint. This replaces the binary
//                     "kBackpressure or nothing" overload response.
//
// The allocator consults all three on its tenant-aware admission path
// (AllocRequest::tenant); everything here is dependency-light (support +
// topo only) so alloc/runtime/health can layer on top without cycles.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include "hetmem/support/result.hpp"
#include "hetmem/topo/object.hpp"

namespace hetmem::tenant {

/// Service priority class. Lower enumerator = more important. The
/// degradation ladder sheds kBestEffort first, spills kNormal next, and
/// protects kCritical until real capacity exhaustion.
enum class Priority : std::uint8_t {
  kCritical = 0,
  kNormal = 1,
  kBestEffort = 2,
};

[[nodiscard]] constexpr const char* priority_name(Priority priority) {
  switch (priority) {
    case Priority::kCritical: return "critical";
    case Priority::kNormal: return "normal";
    case Priority::kBestEffort: return "best-effort";
  }
  return "?";
}

using TenantId = std::uint32_t;
/// Sentinel for "no tenant" (the library's classic single-application mode).
inline constexpr TenantId kNoTenant = 0;

/// One quota slot per topo::MemoryKind enumerator (kDRAM..kGPU).
inline constexpr std::size_t kTierCount = 5;

[[nodiscard]] constexpr std::size_t tier_index(topo::MemoryKind kind) {
  return static_cast<std::size_t>(kind) < kTierCount
             ? static_cast<std::size_t>(kind)
             : 0;
}

/// Per-tenant byte caps. UINT64_MAX means unlimited (the default): quotas
/// are opt-in per tenant, like every other service feature.
struct TenantQuota {
  /// Cap across all tiers.
  std::uint64_t total_cap_bytes = UINT64_MAX;
  /// Per-tier caps, indexed by topo::MemoryKind. A small DRAM cap is how an
  /// operator keeps best-effort tenants from squatting on the fast tier.
  std::array<std::uint64_t, kTierCount> tier_cap_bytes{
      UINT64_MAX, UINT64_MAX, UINT64_MAX, UINT64_MAX, UINT64_MAX};
  /// Weighted machine share (fairness gate in bench/stress_tenants and the
  /// GlobalArbiter's slice math). Relative to the sum over live tenants.
  double share_weight = 1.0;
};

/// Outcome of a quota charge attempt, in decreasing order of severity.
enum class ChargeResult : std::uint8_t {
  kOk = 0,
  /// This tier's cap is full: the ranking walk may fall through to another
  /// tier, so this is a per-node skip, not a request failure.
  kTierCapExceeded,
  /// The tenant's total cap is full: no placement anywhere can help.
  kTotalCapExceeded,
  /// The tenant was deregistered; new charges are refused.
  kTenantDead,
};

/// Per-tenant shed/spill telemetry (relaxed atomics, exact per counter).
struct TenantStats {
  std::uint64_t admitted = 0;
  std::uint64_t spilled = 0;        // placed, but off the preferred tier
  std::uint64_t shed = 0;           // refused with a retry-after hint
  std::uint64_t quota_rejections = 0;
};

/// One registered client. Usage accounting lives here (not in the registry)
/// so a deregistered tenant's outstanding buffers keep uncharging through
/// the handle the allocator retained — the refund happens exactly once, on
/// the free, never again on deregistration.
class Tenant {
 public:
  Tenant(TenantId id, std::string name, Priority priority, TenantQuota quota)
      : id_(id), name_(std::move(name)), priority_(priority), quota_(quota) {
    for (auto& used : tier_used_) used.store(0, std::memory_order_relaxed);
  }

  Tenant(const Tenant&) = delete;
  Tenant& operator=(const Tenant&) = delete;

  [[nodiscard]] TenantId id() const { return id_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Priority priority() const { return priority_; }
  [[nodiscard]] const TenantQuota& quota() const { return quota_; }
  /// False once deregistered: existing charges stay (and refund on free),
  /// new charges are refused with kTenantDead.
  [[nodiscard]] bool live() const {
    return live_.load(std::memory_order_acquire);
  }

  [[nodiscard]] std::uint64_t used_bytes() const {
    return total_used_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t used_bytes(topo::MemoryKind tier) const {
    return tier_used_[tier_index(tier)].load(std::memory_order_relaxed);
  }

  /// CAS-charges `bytes` against the total cap then the tier cap; on tier
  /// failure the total charge is rolled back, so a failed charge never
  /// leaks. Callable from any allocation thread.
  ChargeResult try_charge(topo::MemoryKind tier, std::uint64_t bytes) {
    if (!live()) return ChargeResult::kTenantDead;
    std::uint64_t used = total_used_.load(std::memory_order_relaxed);
    do {
      if (quota_.total_cap_bytes != UINT64_MAX &&
          used + bytes > quota_.total_cap_bytes) {
        return ChargeResult::kTotalCapExceeded;
      }
    } while (!total_used_.compare_exchange_weak(used, used + bytes,
                                                std::memory_order_relaxed));
    const std::size_t t = tier_index(tier);
    std::uint64_t tier_used = tier_used_[t].load(std::memory_order_relaxed);
    do {
      if (quota_.tier_cap_bytes[t] != UINT64_MAX &&
          tier_used + bytes > quota_.tier_cap_bytes[t]) {
        total_used_.fetch_sub(bytes, std::memory_order_relaxed);
        return ChargeResult::kTierCapExceeded;
      }
    } while (!tier_used_[t].compare_exchange_weak(tier_used, tier_used + bytes,
                                                  std::memory_order_relaxed));
    return ChargeResult::kOk;
  }

  /// Refunds a prior successful charge (free / failed placement).
  void uncharge(topo::MemoryKind tier, std::uint64_t bytes) {
    tier_used_[tier_index(tier)].fetch_sub(bytes, std::memory_order_relaxed);
    total_used_.fetch_sub(bytes, std::memory_order_relaxed);
  }

  /// Migration re-homing: the charge follows the buffer unconditionally —
  /// tier caps gate new admissions, never an evacuation off failing
  /// hardware (a health drain must not deadlock on a quota).
  void move_charge(topo::MemoryKind from, topo::MemoryKind to,
                   std::uint64_t bytes) {
    if (tier_index(from) == tier_index(to)) return;
    tier_used_[tier_index(from)].fetch_sub(bytes, std::memory_order_relaxed);
    tier_used_[tier_index(to)].fetch_add(bytes, std::memory_order_relaxed);
  }

  [[nodiscard]] TenantStats stats() const {
    TenantStats snapshot;
    snapshot.admitted = admitted_.load(std::memory_order_relaxed);
    snapshot.spilled = spilled_.load(std::memory_order_relaxed);
    snapshot.shed = shed_.load(std::memory_order_relaxed);
    snapshot.quota_rejections =
        quota_rejections_.load(std::memory_order_relaxed);
    return snapshot;
  }

  void note_admitted() { admitted_.fetch_add(1, std::memory_order_relaxed); }
  void note_spilled() { spilled_.fetch_add(1, std::memory_order_relaxed); }
  void note_shed() { shed_.fetch_add(1, std::memory_order_relaxed); }
  void note_quota_rejection() {
    quota_rejections_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Snapshot/restore (src/recover): overwrites the telemetry counters.
  /// Usage accounting is NOT restored here — charges are rebuilt through
  /// try_charge as the restorer re-adopts each buffer, so accounting always
  /// equals the sum of live charges.
  void restore_stats(const TenantStats& stats) {
    admitted_.store(stats.admitted, std::memory_order_relaxed);
    spilled_.store(stats.spilled, std::memory_order_relaxed);
    shed_.store(stats.shed, std::memory_order_relaxed);
    quota_rejections_.store(stats.quota_rejections, std::memory_order_relaxed);
  }

 private:
  friend class TenantRegistry;

  const TenantId id_;
  const std::string name_;
  const Priority priority_;
  const TenantQuota quota_;
  std::atomic<bool> live_{true};
  std::atomic<std::uint64_t> total_used_{0};
  std::array<std::atomic<std::uint64_t>, kTierCount> tier_used_{};
  std::atomic<std::uint64_t> admitted_{0};
  std::atomic<std::uint64_t> spilled_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> quota_rejections_{0};
};

/// Shared ownership keeps a tenant's accounting alive for as long as any
/// allocation, charge-map entry, or API caller still references it.
using TenantHandle = std::shared_ptr<Tenant>;

/// Machine-wide overload level, derived from the healthy free fraction.
/// Levels only restrict — each step keeps everything the previous step
/// denied and adds more.
enum class OverloadLevel : std::uint8_t {
  kNormal = 0,           // everyone places normally
  kSpillLowPriority = 1, // best-effort spills off nearly-full preferred tiers
  kShedBestEffort = 2,   // best-effort sheds; normal spills
  kCriticalOnly = 3,     // normal sheds too; only critical places
};

[[nodiscard]] constexpr const char* overload_level_name(OverloadLevel level) {
  switch (level) {
    case OverloadLevel::kNormal: return "normal";
    case OverloadLevel::kSpillLowPriority: return "spill-low-priority";
    case OverloadLevel::kShedBestEffort: return "shed-best-effort";
    case OverloadLevel::kCriticalOnly: return "critical-only";
  }
  return "?";
}

/// What the ladder tells the allocator to do with one request.
enum class LadderAction : std::uint8_t {
  kPlace,  // normal ranking walk
  kSpill,  // ranking walk, but skip nearly-full nodes on the first pass
  kShed,   // refuse now with Errc::kBackpressure + retry_after_ms
};

struct LadderOptions {
  /// Healthy-free-fraction thresholds for entering each level; must be
  /// monotonically decreasing.
  double spill_free_fraction = 0.25;
  double shed_free_fraction = 0.12;
  double critical_only_free_fraction = 0.04;
  /// A node counts as "hot" for the spill pass above this occupancy.
  double spill_node_occupancy = 0.90;
  /// Base retry-after hint; doubles per ladder level above the shedding
  /// threshold so hints grow as the machine gets sicker.
  std::uint64_t retry_after_base_ms = 4;
};

/// Pure policy: pressure -> level -> per-priority action. Stateless and
/// immutable after construction, so it is safe to read from any thread.
class DegradationLadder {
 public:
  explicit DegradationLadder(LadderOptions options = {}) : options_(options) {}

  [[nodiscard]] OverloadLevel level_for(double healthy_free_fraction) const {
    if (healthy_free_fraction < options_.critical_only_free_fraction) {
      return OverloadLevel::kCriticalOnly;
    }
    if (healthy_free_fraction < options_.shed_free_fraction) {
      return OverloadLevel::kShedBestEffort;
    }
    if (healthy_free_fraction < options_.spill_free_fraction) {
      return OverloadLevel::kSpillLowPriority;
    }
    return OverloadLevel::kNormal;
  }

  [[nodiscard]] LadderAction action(OverloadLevel level,
                                    Priority priority) const {
    switch (level) {
      case OverloadLevel::kNormal:
        return LadderAction::kPlace;
      case OverloadLevel::kSpillLowPriority:
        return priority == Priority::kBestEffort ? LadderAction::kSpill
                                                 : LadderAction::kPlace;
      case OverloadLevel::kShedBestEffort:
        if (priority == Priority::kBestEffort) return LadderAction::kShed;
        return priority == Priority::kNormal ? LadderAction::kSpill
                                             : LadderAction::kPlace;
      case OverloadLevel::kCriticalOnly:
        return priority == Priority::kCritical ? LadderAction::kPlace
                                               : LadderAction::kShed;
    }
    return LadderAction::kPlace;
  }

  /// Deterministic base hint for a shed request: grows with the overload
  /// level and with how far the priority is from critical, so the clients
  /// the ladder wants gone longest are told to stay away longest. Callers
  /// add jitter via tenant::Backoff, not here.
  [[nodiscard]] std::uint64_t retry_after_ms(OverloadLevel level,
                                             Priority priority) const {
    const unsigned level_steps = static_cast<unsigned>(level);
    const unsigned priority_steps = static_cast<unsigned>(priority);
    return options_.retry_after_base_ms << (level_steps + priority_steps);
  }

  [[nodiscard]] const LadderOptions& options() const { return options_; }

 private:
  LadderOptions options_;
};

struct TenantRegistryOptions {
  LadderOptions ladder;
};

/// Registration, lookup, and the machine-wide share math.
///
/// Thread safety (docs/CONCURRENCY.md): register/deregister take an
/// exclusive lock; find/tenants/share math take a shared lock; everything on
/// a Tenant handle (charges, stats) is lock-free atomics, so allocation hot
/// paths never touch the registry mutex.
class TenantRegistry {
 public:
  explicit TenantRegistry(TenantRegistryOptions options = {})
      : ladder_(options.ladder) {}

  TenantRegistry(const TenantRegistry&) = delete;
  TenantRegistry& operator=(const TenantRegistry&) = delete;

  /// Registers a tenant under a unique name. Ids are never reused.
  support::Result<TenantHandle> register_tenant(std::string name,
                                                Priority priority,
                                                TenantQuota quota = {});

  /// Removes the tenant from the live set and marks the handle dead —
  /// exactly once: a second call (or a stale handle) reports kNotFound.
  /// Outstanding buffers keep their charges until freed; the tenant simply
  /// stops being admitted and stops counting toward the live share weights.
  support::Status deregister_tenant(const TenantHandle& handle);

  /// Snapshot/restore (src/recover): re-registers a tenant under its
  /// ORIGINAL id, bumping the id counter past it so ids stay never-reused
  /// and match the snapshotted run exactly (deregistered tenants leave
  /// gaps). Setup-time only; fails on a duplicate id or name.
  support::Result<TenantHandle> restore_tenant(TenantId id, std::string name,
                                               Priority priority,
                                               TenantQuota quota);

  [[nodiscard]] TenantHandle find(std::string_view name) const;
  [[nodiscard]] TenantHandle find(TenantId id) const;
  [[nodiscard]] std::vector<TenantHandle> tenants() const;
  [[nodiscard]] std::size_t live_count() const;

  /// Id watermark: the id the NEXT register_tenant call will mint. Part of
  /// the snapshot state — deregistered tenants leave no trace in tenants(),
  /// so without the watermark a restored registry would re-mint their ids
  /// and break the never-reused-id contract.
  [[nodiscard]] TenantId next_id() const {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    return next_id_;
  }
  /// Restore-time only: advances the watermark (never rewinds it).
  void restore_next_id(TenantId next) {
    std::unique_lock<std::shared_mutex> lock(mutex_);
    if (next > next_id_) next_id_ = next;
  }

  [[nodiscard]] const DegradationLadder& ladder() const { return ladder_; }

  /// Operator override: forces at least this overload level regardless of
  /// measured pressure (drills, planned maintenance, tests). nullopt clears.
  void set_overload_override(std::optional<OverloadLevel> level) {
    override_.store(level ? static_cast<int>(*level) : -1,
                    std::memory_order_relaxed);
  }
  [[nodiscard]] std::optional<OverloadLevel> overload_override() const {
    const int raw = override_.load(std::memory_order_relaxed);
    if (raw < 0) return std::nullopt;
    return static_cast<OverloadLevel>(raw);
  }

  /// Combines the measured level with the operator override (max wins).
  [[nodiscard]] OverloadLevel effective_level(
      double healthy_free_fraction) const {
    OverloadLevel level = ladder_.level_for(healthy_free_fraction);
    if (auto forced = overload_override();
        forced && static_cast<int>(*forced) > static_cast<int>(level)) {
      level = *forced;
    }
    return level;
  }

  /// `handle`'s weighted fair share of the machine: share_weight over the
  /// sum of live share weights (1.0 when it is the only live tenant).
  [[nodiscard]] double share_fraction(const TenantHandle& handle) const;

 private:
  mutable std::shared_mutex mutex_;
  std::vector<TenantHandle> tenants_;  // live tenants only
  TenantId next_id_ = 1;               // 0 is kNoTenant
  std::atomic<int> override_{-1};
  const DegradationLadder ladder_;
};

}  // namespace hetmem::tenant
