// Compatibility alias: the jittered-backoff helper moved to
// support/backoff.hpp so the tenant shed-retry loop, the allocator's
// RetryPolicy, and the recover layer's circuit-breaker probes share one
// seeded, testable implementation (docs/RECOVERY.md "Backoff unification").
// New code should include hetmem/support/backoff.hpp directly.
#pragma once

#include "hetmem/support/backoff.hpp"

namespace hetmem::tenant {

using BackoffOptions = support::BackoffOptions;
using Backoff = support::Backoff;
using support::parse_retry_after_ms;

}  // namespace hetmem::tenant
