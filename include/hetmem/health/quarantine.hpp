// QuarantineList — the narrow, lock-free bridge between the health monitor
// and ranking composition (docs/RESILIENCE.md "Health & evacuation").
//
// The HealthMonitor owns the per-node state machine; rankings only need the
// placement-relevant projection of it: should this target be ranked normally,
// sunk to the bottom (quarantined: still usable as a last resort), or
// excluded outright (offline: placing anything there would fail anyway)?
// That projection is one atomic byte per node, readable from any allocation
// thread with no lock.
//
// Visibility contract: verdict stores are relaxed on purpose. The monitor
// always publishes a transition as "store the verdict, THEN call
// MemAttrRegistry::invalidate_rankings()" — the generation bump happens
// under the registry's exclusive lock, so any reader that observes the new
// generation (acquire) also observes the verdict stored before it. A reader
// racing ahead of the bump may build a ranking with the old verdict, but it
// stamps the old generation, so the stale snapshot dies on the next lookup.
// This header is intentionally self-contained (no library dependency) so
// memattr can consult it without a health -> memattr -> health cycle.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

namespace hetmem::health {

/// Placement-relevant projection of a node's health state.
enum class PlacementVerdict : std::uint8_t {
  kNormal = 0,        // rank by attribute value as usual
  kDeprioritize = 1,  // quarantined: sink below every normal target
  kExclude = 2,       // offline: drop from rankings entirely
};

[[nodiscard]] constexpr const char* placement_verdict_name(
    PlacementVerdict verdict) {
  switch (verdict) {
    case PlacementVerdict::kNormal: return "normal";
    case PlacementVerdict::kDeprioritize: return "deprioritize";
    case PlacementVerdict::kExclude: return "exclude";
  }
  return "?";
}

/// One atomic verdict per NUMA node. Writers: the HealthMonitor (or tests /
/// operator tooling). Readers: MemAttrRegistry ranking composition and the
/// allocator's admission-control check. Out-of-range nodes read kNormal so a
/// list sized for one topology degrades gracefully if misused.
class QuarantineList {
 public:
  explicit QuarantineList(std::size_t node_count)
      : node_count_(node_count),
        verdicts_(std::make_unique<std::atomic<std::uint8_t>[]>(node_count)) {
    for (std::size_t n = 0; n < node_count_; ++n) {
      verdicts_[n].store(0, std::memory_order_relaxed);
    }
  }

  QuarantineList(const QuarantineList&) = delete;
  QuarantineList& operator=(const QuarantineList&) = delete;

  [[nodiscard]] std::size_t node_count() const { return node_count_; }

  /// Relaxed store — see the visibility contract above: callers that change
  /// a verdict MUST follow up with MemAttrRegistry::invalidate_rankings()
  /// for the change to reach cached rankings.
  void set(unsigned node, PlacementVerdict verdict) {
    if (node >= node_count_) return;
    verdicts_[node].store(static_cast<std::uint8_t>(verdict),
                          std::memory_order_relaxed);
  }

  [[nodiscard]] PlacementVerdict verdict(unsigned node) const {
    if (node >= node_count_) return PlacementVerdict::kNormal;
    return static_cast<PlacementVerdict>(
        verdicts_[node].load(std::memory_order_relaxed));
  }

  /// True when no node is quarantined or excluded (fast all-clear check).
  [[nodiscard]] bool all_clear() const {
    for (std::size_t n = 0; n < node_count_; ++n) {
      if (verdicts_[n].load(std::memory_order_relaxed) != 0) return false;
    }
    return true;
  }

 private:
  std::size_t node_count_ = 0;
  std::unique_ptr<std::atomic<std::uint8_t>[]> verdicts_;
};

}  // namespace hetmem::health
