// Evacuator — self-healing memory targets, part 2: budgeted draining.
//
// When the HealthMonitor quarantines or offlines a node, its live buffers
// are stranded on failing hardware. The Evacuator drains them through the
// MigrationEngine's per-epoch byte budget (evacuation and optimization
// migrations share one pool — the paper's §VII "migration should likely be
// avoided" knob caps BOTH), most critical buffers first:
//   1. classifier-committed latency-sensitive buffers,
//   2. bandwidth-sensitive buffers,
//   3. insensitive / untracked buffers,
// hotter (larger traffic EMA) before colder within each class.
//
// Quarantined nodes drain under a break-even gate: the buffer's observed
// traffic must be modeled cheaper on the destination than on the (degraded)
// source within the horizon — cold buffers stay put until the node either
// recovers or goes offline. Offline nodes bypass the gate entirely: the
// data is unreachable-in-spirit, every buffer moves as budget allows, and
// what the budget defers this epoch is retried the next (level-triggered,
// like the engine).
//
// Thread safety: externally synchronized with the engine's epoch loop (one
// thread drives run_epoch + drain_epoch). Allocation threads may run
// concurrently; each buffer is revalidated under the machine's per-buffer
// lifecycle lock at migrate() time, so a drain racing a free is benign.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hetmem/alloc/allocator.hpp"
#include "hetmem/health/health.hpp"
#include "hetmem/runtime/engine.hpp"
#include "hetmem/runtime/policy.hpp"

namespace hetmem::health {

struct EvacuatorOptions {
  /// Break-even horizon for quarantined drains (offline drains skip it).
  double expected_future_epochs = 10.0;
  /// MLP assumed by the shared TrafficCostModel.
  double mlp = 6.0;
  /// Effective slowdown of a quarantined node in the benefit model: the
  /// source cost is multiplied by this before comparing against the
  /// destination, representing the degraded regime (ECC storms, media
  /// throttling) that caused the quarantine. > 1.0.
  double quarantined_slowdown = 4.0;
};

enum class EvacVerdict : std::uint8_t {
  kMoved,               // migrated off the failing node
  kSkippedCold,         // quarantined drain: no modeled benefit; stays put
  kRejectedBreakeven,   // quarantined drain: cost does not amortize
  kRejectedNoTarget,    // no healthy destination has room
  kDeferredBudget,      // epoch byte budget exhausted; retried next epoch
  kDeferredTenantShare,  // owning tenant's arbiter slice exhausted; retried
  kFailedMigrate,       // machine refused (fault, raced free); retried
};

[[nodiscard]] const char* evac_verdict_name(EvacVerdict verdict);

struct EvacDecision {
  std::uint64_t epoch = 0;
  unsigned from_node = 0;
  unsigned to_node = 0;  // == from_node when nothing moved
  sim::BufferId buffer;
  std::string label;
  std::uint64_t bytes = 0;
  EvacVerdict verdict = EvacVerdict::kMoved;
  double cost_ns = 0.0;
  std::string reason;
};

struct EvacuatorStats {
  std::uint64_t moved = 0;
  std::uint64_t moved_bytes = 0;
  std::uint64_t skipped = 0;    // cold + breakeven
  std::uint64_t deferred = 0;   // budget
  std::uint64_t failed = 0;     // no-target + failed-migrate
  double cost_ns = 0.0;
};

class Evacuator {
 public:
  /// Shares `engine`'s per-epoch byte budget; `initiator` anchors locality
  /// for destination rankings (normally the workload's cpuset, same as the
  /// engine's). All references must outlive the evacuator.
  Evacuator(alloc::HeterogeneousAllocator& allocator,
            runtime::MigrationEngine& engine, support::Bitmap initiator,
            EvacuatorOptions options = {});

  /// Drains the live buffers of `node` for this epoch, given its health
  /// state (kHealthy/kSuspect: no-op). `classifier` (optional) supplies
  /// criticality and traffic EMAs; without it every buffer is treated as
  /// untracked (drained only when the node is offline). Returns the
  /// migration cost paid (simulated ns) for the caller's clock.
  double drain_epoch(std::uint64_t epoch_index, unsigned node,
                     HealthState state, unsigned threads,
                     const runtime::OnlineClassifier* classifier = nullptr);

  /// True when no live buffer remains on `node`.
  [[nodiscard]] bool drained(unsigned node) const;

  [[nodiscard]] const std::vector<EvacDecision>& decisions() const {
    return decisions_;
  }
  [[nodiscard]] const EvacuatorStats& stats() const { return stats_; }
  [[nodiscard]] const EvacuatorOptions& options() const { return options_; }

  /// Deterministic text rendering of the full decision history.
  [[nodiscard]] std::string render_log() const;

 private:
  void log(std::uint64_t epoch, unsigned from_node, unsigned to_node,
           sim::BufferId buffer, EvacVerdict verdict, double cost_ns,
           std::string reason);

  alloc::HeterogeneousAllocator* allocator_;
  runtime::MigrationEngine* engine_;
  support::Bitmap initiator_;
  EvacuatorOptions options_;
  std::vector<EvacDecision> decisions_;
  EvacuatorStats stats_;
};

/// Wires a monitor + evacuator into a RuntimePolicy's epoch hook: each epoch
/// polls the monitor, then drains every node needing evacuation, charging
/// the paid migration cost into the run's clock alongside the engine's. All
/// three objects must outlive the policy's attached run.
void attach_health(runtime::RuntimePolicy& policy, HealthMonitor& monitor,
                   Evacuator& evacuator);

}  // namespace hetmem::health
