// Per-target health state machine — self-healing memory targets, part 1.
//
// PR 1 made the allocator survive a node *failing a call* (transient retry,
// ranking fallback). This subsystem makes the stack react to a node
// *failing as hardware*: the HealthMonitor polls SimMachine's per-node
// error telemetry (injected transient faults, ECC bursts, the sticky
// degraded regime, offline events) and advances a per-node state machine
//
//   healthy -> suspect -> quarantined -> offline
//      ^          |            |
//      +----------+------------+   (hysteresis: N clean polls step DOWN
//                                    one state at a time — re-probation)
//
// with the placement consequences projected into a QuarantineList the
// MemAttrRegistry consults: quarantined targets sink to the bottom of every
// ranking, offline targets are excluded. Every transition calls
// invalidate_rankings() so the generation-stamped ranking cache never
// serves a verdict that predates the transition.
//
// Thread safety: poll() is single-threaded (drive it from the epoch loop or
// a dedicated monitor thread — never two at once). state() and the
// QuarantineList are safe to read concurrently from allocation threads.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "hetmem/health/quarantine.hpp"
#include "hetmem/memattr/memattr.hpp"
#include "hetmem/simmem/machine.hpp"

namespace hetmem::health {

enum class HealthState : std::uint8_t {
  kHealthy = 0,
  kSuspect = 1,      // fault evidence this poll; placement unaffected
  kQuarantined = 2,  // sustained faults: deprioritized, buffers drain
  kOffline = 3,      // machine reports the node gone: excluded, urgent drain
};

[[nodiscard]] constexpr const char* health_state_name(HealthState state) {
  switch (state) {
    case HealthState::kHealthy: return "healthy";
    case HealthState::kSuspect: return "suspect";
    case HealthState::kQuarantined: return "quarantined";
    case HealthState::kOffline: return "offline";
  }
  return "?";
}

struct HealthOptions {
  /// Error delta (transient faults + ECC errors) in one poll that moves a
  /// healthy node to suspect.
  std::uint64_t suspect_errors = 1;
  /// Error delta in one poll that jumps a node straight to quarantined,
  /// regardless of its current state (an error burst).
  std::uint64_t quarantine_errors = 8;
  /// Consecutive faulty polls a suspect node sustains before quarantine.
  unsigned faulty_polls_to_quarantine = 2;
  /// Consecutive clean polls needed to step DOWN one state (quarantined ->
  /// suspect -> healthy). Recovery is deliberately one step per streak: a
  /// node leaving quarantine re-probates as suspect first.
  unsigned clean_polls_to_recover = 3;
  /// Treat the sticky degraded regime as fault evidence each poll. A
  /// degraded node can therefore never recover past suspect until an
  /// operator clears the regime.
  bool degraded_is_fault = true;
  /// Count capacity rejections as fault evidence. OFF by default and almost
  /// always wrong to enable: a full node is healthy, and quarantining it
  /// would amplify pressure on the remaining targets.
  bool count_capacity_rejections = false;
  /// Count thermal power-throttle events (docs/POWER.md) as fault evidence.
  /// ON by default: a throttling node should sink in rankings and shed
  /// buffers exactly like faulting hardware, and recovers through the same
  /// clean-streak hysteresis once the governor stops reporting throttles.
  bool throttle_is_fault = true;
};

/// One state-machine edge, for replay verification and post-mortems. The
/// sequence (and render_transition_log()) is byte-stable for a fixed fault
/// seed and poll pattern.
struct HealthTransition {
  std::uint64_t poll = 0;  // 1-based poll index that caused the edge
  unsigned node = 0;
  HealthState from = HealthState::kHealthy;
  HealthState to = HealthState::kHealthy;
  std::string reason;
};

class HealthMonitor {
 public:
  /// Binds to the machine it watches and the registry whose rankings it
  /// gates. Installs its QuarantineList into the registry; the destructor
  /// uninstalls it. Both must outlive the monitor.
  HealthMonitor(sim::SimMachine& machine, attr::MemAttrRegistry& registry,
                HealthOptions options = {});
  ~HealthMonitor();

  HealthMonitor(const HealthMonitor&) = delete;
  HealthMonitor& operator=(const HealthMonitor&) = delete;

  /// One monitoring pass: samples every node's passive fault sites
  /// (SimMachine::sample_node_faults), diffs telemetry against the previous
  /// poll, and advances each node's state machine. Each transition updates
  /// the QuarantineList and invalidates the registry's cached rankings
  /// BEFORE the transition is appended to the log. Returns the number of
  /// transitions this poll. Single-threaded (see file header).
  std::size_t poll();

  /// Current state; safe to read concurrently with poll().
  [[nodiscard]] HealthState state(unsigned node) const;

  /// Nodes whose live buffers should be drained (quarantined or offline),
  /// ascending. Reflects the most recent poll.
  [[nodiscard]] std::vector<unsigned> nodes_needing_evacuation() const;

  [[nodiscard]] const QuarantineList& quarantine() const { return quarantine_; }
  [[nodiscard]] std::uint64_t poll_count() const { return poll_count_; }
  [[nodiscard]] const std::vector<HealthTransition>& transitions() const {
    return transitions_;
  }
  [[nodiscard]] const HealthOptions& options() const { return options_; }

  /// Deterministic text rendering of the full transition history.
  [[nodiscard]] std::string render_transition_log() const;

  // --- snapshot/restore hooks (src/recover, docs/RECOVERY.md) ---

  /// One node's exported state-machine state. last_errors must stay
  /// consistent with the machine telemetry it was snapshotted against
  /// (restore both from the same snapshot) or the first post-restore poll
  /// misreads the delta.
  struct NodeState {
    HealthState state = HealthState::kHealthy;
    std::uint64_t last_errors = 0;
    unsigned faulty_streak = 0;
    unsigned clean_streak = 0;
  };
  [[nodiscard]] NodeState node_state(unsigned node) const;
  /// Overlays poll count and per-node states, re-projects the quarantine
  /// verdicts, and invalidates the registry's cached rankings once. The
  /// transition log is not restored — a restored monitor narrates only
  /// post-restore transitions (the pre-crash narrative lives in the
  /// snapshot's engine log prefix analogue, not here).
  void restore_state(std::uint64_t poll_count,
                     const std::vector<NodeState>& nodes);

 private:
  struct NodeHealth {
    std::atomic<std::uint8_t> state{0};  // HealthState; readable concurrently
    std::uint64_t last_errors = 0;       // cumulative error count at last poll
    unsigned faulty_streak = 0;
    unsigned clean_streak = 0;
  };

  void transition(unsigned node, NodeHealth& health, HealthState to,
                  std::string reason);
  [[nodiscard]] std::uint64_t error_count(const sim::NodeTelemetry& t) const;

  sim::SimMachine* machine_;
  attr::MemAttrRegistry* registry_;
  HealthOptions options_;
  QuarantineList quarantine_;
  std::unique_ptr<NodeHealth[]> nodes_;
  std::size_t node_count_ = 0;
  std::uint64_t poll_count_ = 0;
  std::vector<HealthTransition> transitions_;
};

}  // namespace hetmem::health
