// Deterministic, seeded fault injection for chaos-testing the attribute /
// allocator stack (DESIGN.md §6 "failure injection", docs/RESILIENCE.md).
//
// Real heterogeneous-memory deployments fail in mundane ways long before
// they fail in exotic ones: firmware HMAT tables are incomplete or malformed
// (Linux only re-exports the *local* entries, paper §IV-A1), benchmark-based
// discovery is noisy, targets fill up mid-run, and nodes go offline. The
// injector models those events as named *sites*, each with an independent,
// seed-derived random stream, so a fault schedule is reproducible: the same
// seed yields the same faults at the same consultation indices regardless of
// how sites interleave.
//
// Consumers never depend on the injector; they accept an optional pointer
// and consult it at their decision points (SimMachine::allocate,
// probe::measure, corrupt_hmat_text). A null injector means no faults.
#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "hetmem/support/rng.hpp"

namespace hetmem::fault {

/// Well-known site names. Sites are open-ended strings; these constants are
/// the ones wired into the library itself.
namespace site {
/// SimMachine::allocate returns a transient (retryable) failure.
inline constexpr const char* kMachineAllocTransient = "machine.alloc.transient";
/// SimMachine::allocate marks the requested node offline (sticky) and fails.
inline constexpr const char* kMachineNodeOffline = "machine.node.offline";
/// SimMachine::migrate returns a transient (retryable) failure — the move_pages
/// analogue of a busy page or exhausted kernel migration slot.
inline constexpr const char* kMachineMigrateTransient = "machine.migrate.transient";
/// SimMachine::migrate wedges: the move fails with kTransient like a stuck
/// kernel migration thread. Configured with a burst, consecutive epochs of
/// migration attempts all fail — the stalled-progress signature the recover
/// layer's Watchdog detects and its migration CircuitBreaker opens on
/// (docs/RECOVERY.md).
inline constexpr const char* kMachineMigrateStall = "machine.migrate.stall";
/// recover::Watchdog::observe_epoch: the observed epoch is treated as having
/// blown its deadline (an injected overrun) regardless of its measured
/// duration — drives the watchdog/breaker paths without needing a slow host.
inline constexpr const char* kRuntimeEpochOverrun = "runtime.epoch.overrun";
/// SimMachine::sample_node_faults: a burst of corrected ECC errors is
/// attributed to the sampled node (telemetry only — data stays intact, but
/// the health monitor treats sustained bursts as failing hardware).
inline constexpr const char* kMachineEccBurst = "machine.ecc.burst";
/// SimMachine::sample_node_faults: the sampled node enters the sticky
/// degraded-bandwidth regime (the Optane media-throttle analogue) until an
/// operator clears it with set_node_degraded(node, false).
inline constexpr const char* kMachineNodeDegraded = "machine.node.degraded";
/// SimMachine::sample_node_faults: the sampled node reports a thermal
/// power-throttle event (telemetry only — the health monitor counts
/// sustained throttling as fault evidence, the power governor raises the
/// same events organically when a node stays over its share of the watt
/// cap; docs/POWER.md). Not armed by any preset: arm it explicitly with
/// configure() so power chaos never perturbs the non-power regressions.
inline constexpr const char* kMachinePowerThrottle = "machine.power.throttle";
/// probe::measure fails outright (device busy, perf counters unavailable).
inline constexpr const char* kProbeFail = "probe.fail";
/// probe::measure result is multiplied by a noise factor per metric.
inline constexpr const char* kProbeNoise = "probe.noise";
/// corrupt_hmat_text: drop a record line (omission / local-only quirks).
inline constexpr const char* kHmatDropEntry = "hmat.drop-entry";
/// corrupt_hmat_text: flip a read<->write access token.
inline constexpr const char* kHmatFlipAccess = "hmat.flip-access";
/// corrupt_hmat_text: truncate a record line mid-token.
inline constexpr const char* kHmatTruncateLine = "hmat.truncate-line";
/// corrupt_hmat_text: duplicate a record with a perturbed value.
inline constexpr const char* kHmatDuplicateEntry = "hmat.duplicate-entry";
/// corrupt_hmat_text: replace a numeric value with garbage.
inline constexpr const char* kHmatGarbleValue = "hmat.garble-value";
}  // namespace site

/// Catalog entry for one built-in injection site — who consults it and what
/// a fired fault does. docs/RESILIENCE.md renders this table; tools can
/// enumerate sites instead of grepping string constants.
struct SiteInfo {
  const char* name;
  const char* consulted_by;
  const char* effect;
};

/// Every built-in site, in a stable order (machine, probe, hmat). Open-ended
/// custom sites used by tests are not listed — this is the library's own
/// catalog, the one docs/RESILIENCE.md must match.
const std::vector<SiteInfo>& all_sites();

/// Per-site behavior. A site "fires" with `probability` per consultation;
/// once fired it keeps firing for `burst` consecutive consultations, and
/// never fires more than `max_count` times in total (0 = unlimited).
struct FaultSpec {
  double probability = 0.0;
  std::uint64_t max_count = 0;
  unsigned burst = 1;
  /// Relative half-width for noise sites: factors are uniform in
  /// [1 - noise_sigma, 1 + noise_sigma] when the site fires.
  double noise_sigma = 0.0;
};

/// One injected fault, for replay verification and post-mortems.
struct FaultEvent {
  std::string site;
  /// Consultation index *within the site* at which the fault fired.
  std::uint64_t sequence = 0;
};

/// Thread-safe: consultations from concurrent allocation/migration paths are
/// serialized by an internal mutex, so counters and each site's random
/// stream stay coherent. Determinism under concurrency is per-site only —
/// which *thread* sees a given fault depends on the interleaving, but the
/// sequence of fired consultation indices for a (seed, site) pair does not.
class FaultInjector {
 public:
  explicit FaultInjector(std::uint64_t seed) : seed_(seed) {}

  FaultInjector(FaultInjector&& other) noexcept
      : seed_(other.seed_),
        sites_(std::move(other.sites_)),
        schedule_(std::move(other.schedule_)) {}
  FaultInjector& operator=(FaultInjector&& other) noexcept {
    if (this != &other) {
      std::lock_guard<std::mutex> lock(mutex_);
      seed_ = other.seed_;
      sites_ = std::move(other.sites_);
      schedule_ = std::move(other.schedule_);
    }
    return *this;
  }

  /// Installs (or replaces) the spec for a site. Unconfigured sites never
  /// fire. Reconfiguring resets the site's burst state but keeps its random
  /// stream and counters, so the schedule stays seed-deterministic.
  void configure(std::string_view site, FaultSpec spec);

  /// Consults a site: returns true when a fault should be injected now.
  /// Each call advances the site's consultation counter (and its random
  /// stream when the site is armed).
  bool should_fail(std::string_view site);

  /// Multiplicative noise for measurement sites: 1.0 when the site does not
  /// fire, else uniform in [1 - sigma, 1 + sigma] (clamped positive).
  double noise_factor(std::string_view site);

  /// Raw deterministic uniform draw in [0, 1) from the site's stream, with
  /// no consultation/firing semantics — for fault payloads (truncation
  /// positions, perturbation magnitudes).
  double uniform(std::string_view site);

  [[nodiscard]] std::uint64_t seed() const { return seed_; }
  [[nodiscard]] std::uint64_t injected(std::string_view site) const;
  [[nodiscard]] std::uint64_t consultations(std::string_view site) const;
  [[nodiscard]] std::uint64_t total_injected() const;
  /// Snapshot of the fault schedule so far (copied under the lock).
  [[nodiscard]] std::vector<FaultEvent> schedule() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return schedule_;
  }

  /// Canonical "site@sequence site@sequence ..." fingerprint of the whole
  /// schedule so far — two runs with the same seed and call pattern must
  /// produce identical strings (the replay test relies on this).
  [[nodiscard]] std::string schedule_fingerprint() const;

  /// Canned chaos levels for the harness: "none", "light" (rare faults,
  /// mild noise), "heavy" (frequent faults, strong noise, bursts),
  /// "hmat-chaos" (table corruption only), "alloc-storm" (transient
  /// allocation failures only).
  static FaultInjector preset(std::string_view name, std::uint64_t seed);
  static const std::vector<const char*>& preset_names();

  /// One site's full mutable state, for snapshot/restore (src/recover). A
  /// restored site continues its random stream and counters exactly where
  /// the exported one stopped, so fault schedules survive a crash+restore
  /// byte-identically. The event schedule_ log is not part of a site's
  /// state: a restored injector narrates only post-restore events.
  struct SiteState {
    std::string name;
    FaultSpec spec;
    std::array<std::uint64_t, 4> rng{};
    std::uint64_t consultations = 0;
    std::uint64_t injected = 0;
    unsigned burst_remaining = 0;
    bool armed = false;
  };
  /// Every site ever touched, in first-touch order (the order restore_site
  /// calls must preserve so site_state_locked's linear scan behaves the
  /// same).
  [[nodiscard]] std::vector<SiteState> export_sites() const;
  /// Installs (or overwrites) one site's exported state.
  void restore_site(const SiteState& state);

 private:
  struct Site {
    std::string name;
    FaultSpec spec;
    support::Xoshiro256 rng{0};
    std::uint64_t consultations = 0;
    std::uint64_t injected = 0;
    unsigned burst_remaining = 0;
    bool armed = false;  // has a spec with probability > 0
  };

  // Callers hold mutex_ for every *_locked helper.
  Site& site_state_locked(std::string_view site);
  [[nodiscard]] const Site* find_site_locked(std::string_view site) const;
  bool should_fail_locked(std::string_view site);

  mutable std::mutex mutex_;
  std::uint64_t seed_;
  std::vector<Site> sites_;
  std::vector<FaultEvent> schedule_;
};

/// Report of textual HMAT corruption: what was mutated and the surviving
/// (possibly malformed) table text. Comment lines are never touched.
struct HmatCorruption {
  std::string text;
  std::size_t lines_dropped = 0;
  std::size_t lines_truncated = 0;
  std::size_t access_flips = 0;
  std::size_t duplicates_added = 0;
  std::size_t values_garbled = 0;
  [[nodiscard]] std::size_t total_mutations() const {
    return lines_dropped + lines_truncated + access_flips + duplicates_added +
           values_garbled;
  }
};

/// Applies seed-deterministic corruption to a serialized HMAT table
/// (hmat::serialize format), emulating firmware quirks: dropped entries,
/// read/write flips, truncated lines, duplicated entries with perturbed
/// values, and garbage numbers. The output is meant to be fed through
/// hmat::parse_lenient, which must recover per-record and report
/// line-numbered diagnostics for every unparseable mutation.
HmatCorruption corrupt_hmat_text(std::string_view text, FaultInjector& injector);

}  // namespace hetmem::fault
