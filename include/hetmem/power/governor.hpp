// PowerGovernor — a machine-wide watt budget enforced in the epoch loop.
//
// State machine (docs/POWER.md):
//
//   idle        cap unset (0) — run_epoch returns immediately without
//               touching the registry, so rankings stay byte-identical to
//               the plain bandwidth order and the ranking cache keeps its
//               hit rate (no generation churn from an idle governor);
//   enforcing   cap set, draw <= cap — streaks reset, nothing migrates;
//   draining    draw > cap — the worst-draw node with live buffers is the
//               offender; its buffers drain toward the most energy-efficient
//               targets with room, through the SAME tenant-arbitrated
//               per-epoch byte budget the MigrationEngine and the health
//               Evacuator share (power never gets a private migration lane);
//   throttling  a node stays the offender for throttle_after_epochs
//               consecutive over-cap epochs — each further epoch reports a
//               thermal-throttle event into SimMachine telemetry, which the
//               HealthMonitor counts as fault evidence: the node takes the
//               quarantine-sink path in rankings and recovers through the
//               ordinary clean-streak hysteresis once draw falls back.
//
// placement_ranking() is the power-aware twin of targets_ranked: below
// near_cap_fraction of the cap it returns the registry's cached ranking
// unchanged; near or over the cap it re-ranks the same candidates by a
// bandwidth-per-watt objective via RankingComposition (no special-case
// bucket — the ROADMAP-flagged composition refactor is what makes this a
// one-liner).
//
// Thread safety (docs/CONCURRENCY.md): externally synchronized like the
// MigrationEngine — one epoch loop drives run_epoch; the machine/allocator
// calls it makes are themselves thread-safe, and the const telemetry
// accessors (machine_draw_watts, stats) may race the epoch loop benignly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hetmem/alloc/allocator.hpp"
#include "hetmem/runtime/engine.hpp"
#include "hetmem/runtime/policy.hpp"

namespace hetmem::power {

struct GovernorOptions {
  /// Draw/cap ratio above which placement_ranking switches to the
  /// bandwidth-per-watt objective.
  double near_cap_fraction = 0.9;
  /// Consecutive over-cap epochs a node sustains as the drain offender
  /// before thermal-throttle events start being reported against it.
  unsigned throttle_after_epochs = 2;
  /// Per-epoch ceiling on bytes the governor itself drains (the shared
  /// engine budget still applies on top).
  std::uint64_t drain_max_bytes_per_epoch = std::uint64_t{1} << 30;
};

enum class PowerVerdict : std::uint8_t {
  kDrained,          // buffer migrated off the offender
  kThrottled,        // thermal-throttle event reported against the node
  kNoTarget,         // no energy-ranked destination had room
  kBudgetExhausted,  // shared epoch byte budget (or drain ceiling) spent
  kTenantDenied,     // owning tenant's arbiter slice refused the draw
  kFailedMigrate,    // allocator/machine refused (fault, offline, raced)
};

[[nodiscard]] const char* power_verdict_name(PowerVerdict verdict);

struct PowerDecision {
  std::uint64_t epoch = 0;
  unsigned node = 0;  // offender (kDrained: source; kThrottled: throttled)
  sim::BufferId buffer;
  std::string label;
  unsigned to_node = 0;
  std::uint64_t bytes = 0;
  PowerVerdict verdict = PowerVerdict::kDrained;
  std::string reason;
};

struct GovernorStats {
  std::uint64_t epochs = 0;           // run_epoch calls with a cap set
  std::uint64_t over_cap_epochs = 0;
  std::uint64_t throttle_events = 0;
  std::uint64_t drained_buffers = 0;
  std::uint64_t drained_bytes = 0;
  double drain_cost_ns = 0.0;
};

class PowerGovernor {
 public:
  /// The engine supplies the shared per-epoch byte budget and tenant
  /// arbitration; both must outlive the governor.
  PowerGovernor(alloc::HeterogeneousAllocator& allocator,
                runtime::MigrationEngine& engine, support::Bitmap initiator,
                GovernorOptions options = {});

  /// One governor step (see the state machine above). Returns the simulated
  /// migration cost paid this epoch, for the epoch hook to charge.
  double run_epoch(std::uint64_t epoch_index, unsigned threads);

  /// Sum of SimMachine::power_draw_watts over all nodes.
  [[nodiscard]] double machine_draw_watts() const;

  /// True when a cap is set and draw >= near_cap_fraction * cap.
  [[nodiscard]] bool near_cap() const;

  /// Power-aware ranking for `attr` (see class comment). Deterministic for
  /// fixed registry/telemetry state.
  [[nodiscard]] std::vector<attr::TargetValue> placement_ranking(
      attr::AttrId attr,
      topo::LocalityFlags flags = topo::LocalityFlags::kIntersecting) const;

  [[nodiscard]] const GovernorStats& stats() const { return stats_; }
  [[nodiscard]] const std::vector<PowerDecision>& decisions() const {
    return decisions_;
  }
  /// Per-node consecutive-offender streaks — the throttle-escalation state
  /// machine's memory, exported for snapshot/restore (src/recover).
  [[nodiscard]] const std::vector<unsigned>& over_streaks() const {
    return over_streak_;
  }
  /// Snapshot/restore: overlays stats and streaks so a restored governor
  /// escalates (or relaxes) exactly where the snapshotted one would have.
  /// The decision log is not restored (post-restore narrative only).
  void restore_state(const GovernorStats& stats,
                     const std::vector<unsigned>& over_streaks) {
    stats_ = stats;
    for (std::size_t n = 0; n < over_streak_.size() && n < over_streaks.size();
         ++n) {
      over_streak_[n] = over_streaks[n];
    }
  }
  /// Deterministic text rendering of the decision history (byte-stable for
  /// a fixed seed and phase schedule, like the engine's).
  [[nodiscard]] std::string render_log() const;

 private:
  void log(std::uint64_t epoch, unsigned node, sim::BufferId buffer,
           std::string label, unsigned to_node, std::uint64_t bytes,
           PowerVerdict verdict, std::string reason);
  /// Offender: the highest-draw node that still holds live buffers;
  /// UINT_MAX when none qualifies. Ties keep the lower logical index.
  [[nodiscard]] unsigned pick_offender() const;

  alloc::HeterogeneousAllocator* allocator_;
  runtime::MigrationEngine* engine_;
  support::Bitmap initiator_;
  GovernorOptions options_;
  std::vector<unsigned> over_streak_;  // per node, consecutive offender epochs
  GovernorStats stats_;
  std::vector<PowerDecision> decisions_;
};

/// Chains the governor into the policy's epoch loop (coexists with
/// health::attach_health via RuntimePolicy::add_epoch_hook — order of
/// attachment decides hook order; costs sum either way).
void attach_governor(runtime::RuntimePolicy& policy, PowerGovernor& governor);

}  // namespace hetmem::power
