// Power attributes — energy as a first-class placement criterion.
//
// The source paper ranks targets purely on performance attributes; its
// co-authors' follow-up ("Understanding Power Consumption Metric on
// Heterogeneous Memory Systems", PAPERS.md) shows per-tier power differs
// enough that bandwidth-first placement makes Pareto-wrong decisions under a
// machine watt budget. This module closes that gap (ROADMAP item 4):
// feed_registry() publishes the machine's NodePowerModel constants as two
// well-known, lower-first attributes —
//
//   kEnergyPerByte : mean dynamic energy per byte moved, nJ/B
//                    ((read + write) / 2 of the node's model)
//   kStaticPower   : background draw of the installed capacity, W
//                    (static W/GiB x capacity GiB)
//
// so applications can mem_alloc(..., kEnergyPerByte) exactly like they ask
// for kBandwidth, and the PowerGovernor (governor.hpp) can compose a
// bandwidth-per-watt objective through the same RankingComposition API the
// registry's own rankings use. See docs/POWER.md.
#pragma once

#include "hetmem/memattr/memattr.hpp"
#include "hetmem/simmem/machine.hpp"
#include "hetmem/support/result.hpp"

namespace hetmem::power {

/// Publishes per-node kEnergyPerByte and kStaticPower values derived from
/// the machine's perf-model power constants into the registry (kTrusted —
/// model constants, not measurements). Idempotent; call at setup time after
/// the machine exists (create_context does, for the C API).
support::Status feed_registry(attr::MemAttrRegistry& registry,
                              const sim::SimMachine& machine);

}  // namespace hetmem::power
