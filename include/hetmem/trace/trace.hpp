// Access-trace record & replay for the online runtime.
//
// A trace is the sequence of RAW per-epoch traffic deltas — one record per
// (buffer id, epoch) carrying the six BufferTraffic counters — exactly what
// an EpochSampler diffs out of an ExecutionContext before subsampling.
// Recording raw (pre-subsampling) deltas is what makes replay exact: the
// replayer feeds them back through a fresh EpochSampler with the recorded
// run's options, which re-applies the same seeded stochastic-rounding
// stream, so the classifier and migration engine observe bit-identical
// epochs and produce a byte-identical decision log (on a machine prepared
// with the same topology, buffers and policy options as the recorded run).
//
// Three sources produce traces:
//   TraceRecorder   chained into an ExecutionContext's phase observer next
//                   to a live RuntimePolicy (records what the run did);
//   parse()         the lossless text format below (serialize() round-trips
//                   doubles via hexfloat, so not a single ULP is lost);
//   synthesize_*()  seeded Zipfian / square-wave / ramp generators for
//                   stressing hysteresis without running a workload.
//
// Text format (one record per line, hexfloat doubles):
//   hetmem-trace/1
//   workload <label>
//   threads <n>
//   phases_per_epoch <n>
//   epoch <index> <duration_ns>
//   s <buffer> <reads> <writes> <llc_misses> <memory_bytes> <rand> <rand_miss>
//   ...
//   end
//
// Version 2 (`hetmem-trace/2`) differs in exactly one record: the epoch
// line grows a third field carrying the effective subsample period the
// recorded run's sampler applied to that epoch,
//   epoch <index> <duration_ns> <sample_period>
// which is what lets adaptive-sampling runs (docs/RUNTIME.md) replay byte-
// identically — the replayer re-applies the recorded period per epoch
// instead of re-running the overhead controller. parse() accepts both
// headers; serialize() emits whichever `Trace::version` names (a v1
// serialization of epochs carrying periods drops them, by design).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "hetmem/runtime/epoch.hpp"
#include "hetmem/runtime/policy.hpp"
#include "hetmem/simmem/exec.hpp"
#include "hetmem/support/result.hpp"

namespace hetmem::trace {

struct Trace {
  /// Serialization format: 1 = `hetmem-trace/1` (no per-epoch period),
  /// 2 = `hetmem-trace/2` (epoch lines carry the effective sample period).
  /// parse() sets this from the header it saw; TraceRecorder emits 2.
  unsigned version = 1;
  std::string workload = "trace";
  /// Thread count of the recorded run (replay passes it to the engine's
  /// cost model so migration costs match the live run).
  unsigned threads = 1;
  /// Phase cadence the recorder closed epochs at (documentation; the epochs
  /// below are already aggregated).
  unsigned phases_per_epoch = 1;
  /// RAW epochs: exact deltas, no subsampling applied.
  std::vector<runtime::Epoch> epochs;
};

/// Lossless text round-trip: parse(serialize(t)) == t bit for bit.
[[nodiscard]] std::string serialize(const Trace& trace);
[[nodiscard]] support::Result<Trace> parse(std::string_view text);

struct RecorderOptions {
  unsigned phases_per_epoch = 1;
  std::string workload = "recorded";
};

/// Captures RAW per-epoch traffic deltas from a live run. Does its own
/// snapshot diffing (independent of any sampler), so it can sit next to a
/// subsampling RuntimePolicy and still record exact counters.
class TraceRecorder {
 public:
  explicit TraceRecorder(RecorderOptions options = {});

  /// Call once per completed phase; records an epoch every
  /// phases_per_epoch calls.
  void on_phase(const sim::ExecutionContext& exec);
  /// Records whatever accumulated since the last epoch (end-of-run flush).
  void force_epoch(const sim::ExecutionContext& exec);

  /// Installs a phase observer on `exec`. With `policy`, the observer
  /// records the phase FIRST and then runs the policy — the recorder sees
  /// the pre-overhead clock, and the policy behaves exactly as if attached
  /// alone (decisions never depend on epoch durations).
  void attach(sim::ExecutionContext& exec,
              runtime::RuntimePolicy* policy = nullptr);

  [[nodiscard]] const Trace& trace() const { return trace_; }
  [[nodiscard]] std::uint64_t epochs_recorded() const {
    return trace_.epochs.size();
  }

 private:
  void record_epoch(const sim::ExecutionContext& exec);

  RecorderOptions options_;
  Trace trace_;
  std::vector<sim::BufferTraffic> snapshot_;
  double snapshot_clock_ns_ = 0.0;
  unsigned phases_since_epoch_ = 0;
};

struct ReplayStats {
  std::uint64_t epochs = 0;
  /// Total simulated cost the policy paid during replay (migrations +
  /// epoch hooks).
  double paid_ns = 0.0;
};

/// Feeds a trace's raw epochs through RuntimePolicy::replay_epoch in order.
class TraceReplayer {
 public:
  explicit TraceReplayer(runtime::RuntimePolicy& policy) : policy_(&policy) {}

  ReplayStats replay(const Trace& trace);

 private:
  runtime::RuntimePolicy* policy_;
};

// --- synthetic traces -----------------------------------------------------

struct SynthOptions {
  unsigned epochs = 32;
  double duration_ns = 1e8;
  unsigned threads = 4;
  /// Latency-profile intensity: random accesses per epoch on the hot buffer
  /// (misses ride along at ~97%, like a 1 GiB working set on a 27 MiB LLC).
  double random_accesses = 4e6;
  /// Bandwidth-profile intensity: streamed bytes per epoch.
  double stream_bytes = 512.0 * 1024 * 1024;
  std::string workload = "synthetic";
};

/// Hot-set rotation over `buffers`: the hot buffer takes the Zipf head's
/// random traffic, cooled buffers keep a `cold_fraction` trickle (mirrors
/// what the KV-cache kernel generates, without running it).
[[nodiscard]] Trace synthesize_rotation(
    const std::vector<sim::BufferId>& buffers, unsigned shift_every,
    double cold_fraction, const SynthOptions& options = {});

/// Square wave on one buffer: bandwidth profile for `half_period` epochs,
/// then latency profile, alternating.
[[nodiscard]] Trace synthesize_square(sim::BufferId buffer,
                                      unsigned half_period,
                                      const SynthOptions& options = {});

/// Ramp on one buffer: steady bandwidth profile for `ramp_start` epochs,
/// then a linear blend into the latency profile over `ramp_epochs`, then
/// steady latency profile.
[[nodiscard]] Trace synthesize_ramp(sim::BufferId buffer, unsigned ramp_start,
                                    unsigned ramp_epochs,
                                    const SynthOptions& options = {});

}  // namespace hetmem::trace
