// RuntimePolicy — the ~3-line opt-in façade for online memory management.
//
//   runtime::RuntimePolicy policy(allocator, initiator, options);
//   policy.attach(runner.exec(), [&] { runner.refresh_arrays(); });
//   runner.run(...);   // buffers now migrate mid-run as behavior shifts
//
// Wires EpochSampler -> OnlineClassifier -> MigrationEngine into an
// ExecutionContext's phase observer: each completed phase may close an
// epoch, each epoch updates the moving averages, and the engine migrates
// whatever passes its gates. Migration cost is charged into the context's
// simulated clock (the run pays for its own management), and the
// post-migration hook lets the application refresh its sim::Array views.
//
// Everything downstream of the (seeded) sampler is deterministic, so the
// whole decision log replays byte-identically for a fixed seed — including
// under fault injection, whose per-site streams are independent of ours.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "hetmem/runtime/classifier.hpp"
#include "hetmem/runtime/engine.hpp"
#include "hetmem/runtime/epoch.hpp"

namespace hetmem::runtime {

struct RuntimePolicyOptions {
  SamplerOptions sampler;
  ClassifierOptions classifier;
  EngineOptions engine;
  /// Charge paid migration cost into the execution context's simulated
  /// clock via charge_overhead_ns().
  bool charge_migration_cost = true;
};

class RuntimePolicy {
 public:
  RuntimePolicy(alloc::HeterogeneousAllocator& allocator,
                support::Bitmap initiator, RuntimePolicyOptions options = {});

  /// Installs this policy as `exec`'s phase observer. `post_migration` runs
  /// after any epoch that moved at least one buffer (applications refresh
  /// their array views there). Both `exec` and the policy must outlive the
  /// run; re-attaching to another context is allowed.
  void attach(sim::ExecutionContext& exec,
              std::function<void()> post_migration = {});

  /// Manual driving without attach(): call once per completed phase.
  void on_phase(sim::ExecutionContext& exec);

  /// Trace-replay entry point (trace::TraceReplayer): runs one RAW
  /// (exact-delta) epoch through the full pipeline without a live
  /// ExecutionContext — the sampler resamples it (same stochastic-rounding
  /// stream a live run would draw), the classifier observes, the engine
  /// migrates, and any epoch hook runs. Returns the paid simulated-ns cost
  /// (nothing is charged anywhere — there is no clock to charge). On a
  /// machine prepared identically to the recorded run, replaying a recorded
  /// trace reproduces the decision log byte for byte.
  double replay_epoch(const Epoch& raw_epoch, unsigned threads);

  /// Runs after the engine's epoch, before overhead is charged — the hook
  /// returns additional simulated-ns cost to charge (0.0 for none). The
  /// health subsystem plugs its poll-and-evacuate step in here
  /// (health::attach_health), keeping runtime free of a health dependency.
  /// Arguments: the epoch index and the workload's thread count.
  using EpochHook = std::function<double(std::uint64_t, unsigned)>;
  void set_epoch_hook(EpochHook hook) { epoch_hook_ = std::move(hook); }

  /// Chains `hook` after any hook already installed; costs sum. Lets the
  /// health evacuator and the power governor coexist on one policy
  /// (attach_health + power::attach_governor both use this).
  void add_epoch_hook(EpochHook hook) {
    if (!epoch_hook_) {
      epoch_hook_ = std::move(hook);
      return;
    }
    epoch_hook_ = [first = std::move(epoch_hook_), second = std::move(hook)](
                      std::uint64_t epoch, unsigned threads) {
      return first(epoch, threads) + second(epoch, threads);
    };
  }

  /// Circuit-breaker hook (recover::Supervisor): when set and it returns
  /// false for an epoch index, the engine's migration pass is skipped —
  /// placement-only service — while sampling, classification, epoch hooks,
  /// and the adaptive period log all continue untouched. Applies to live
  /// epochs AND trace replay so a gated run still replays byte-identically.
  using MigrationGate = std::function<bool(std::uint64_t)>;
  void set_migration_gate(MigrationGate gate) {
    migration_gate_ = std::move(gate);
  }

  [[nodiscard]] const EpochSampler& sampler() const { return sampler_; }
  [[nodiscard]] const OnlineClassifier& classifier() const {
    return classifier_;
  }
  [[nodiscard]] const MigrationEngine& engine() const { return engine_; }
  /// Mutable engine access for components sharing its per-epoch byte budget
  /// (the health Evacuator draws from the same pool as run_epoch).
  [[nodiscard]] MigrationEngine& mutable_engine() { return engine_; }
  /// Mutable sampler/classifier access for the snapshot layer (src/recover)
  /// — restore-time only, never while a run is attached.
  [[nodiscard]] EpochSampler& mutable_sampler() { return sampler_; }
  [[nodiscard]] OnlineClassifier& mutable_classifier() { return classifier_; }
  [[nodiscard]] const std::vector<Decision>& decisions() const {
    return engine_.decisions();
  }
  /// The engine's decision log, plus — when adaptive sampling is on — a
  /// trailing "sampler periods:" section listing the effective period of
  /// every emitted epoch. The section is part of the byte-identical replay
  /// contract: a replayed trace/2 run reproduces the recorded periods, so
  /// live and replay logs match to the byte.
  [[nodiscard]] std::string render_decision_log() const;
  [[nodiscard]] double total_migration_cost_ns() const {
    return engine_.stats().migration_cost_ns;
  }

 private:
  alloc::HeterogeneousAllocator* allocator_;
  EpochSampler sampler_;
  OnlineClassifier classifier_;
  MigrationEngine engine_;
  bool charge_migration_cost_;
  std::function<void()> post_migration_;
  EpochHook epoch_hook_;
  MigrationGate migration_gate_;
};

}  // namespace hetmem::runtime
