// Online sensitivity classification with hysteresis.
//
// The offline profiler classifies a buffer once, over a whole finished run.
// Online, behavior drifts: a buffer that streamed during one phase may become
// the pointer-chase hot set of the next. The OnlineClassifier keeps a
// per-buffer exponential moving average of epoch traffic and re-evaluates the
// *shared* classification rule (prof::classify_sensitivity — identical
// thresholds to the offline path by construction) against the EMA. To prevent
// ping-ponging, a changed verdict is only *committed* after the instantaneous
// classification has disagreed with the committed one for
// `hysteresis_epochs` consecutive epochs.
#pragma once

#include <vector>

#include "hetmem/prof/classify.hpp"
#include "hetmem/runtime/epoch.hpp"

namespace hetmem::runtime {

struct ClassifierOptions {
  /// Weight of the newest epoch in the moving average, in (0, 1].
  /// 1.0 = no smoothing (the EMA is just the last epoch).
  double ema_alpha = 0.5;
  /// Consecutive epochs the instantaneous classification must disagree with
  /// the committed one before the change commits. <= 1 commits on the first
  /// disagreeing epoch (hysteresis disabled).
  unsigned hysteresis_epochs = 3;
  /// Shared with the offline profiler (prof::ProfileOptions::classify).
  prof::ClassifyThresholds thresholds;
};

struct Reclassification {
  sim::BufferId buffer;
  prof::Sensitivity previous;
  prof::Sensitivity current;
};

class OnlineClassifier {
 public:
  explicit OnlineClassifier(ClassifierOptions options = {});

  /// Folds one epoch into the moving averages and returns the commits it
  /// caused (ascending buffer index). A buffer's first-ever epoch commits
  /// immediately — there is no placement to disagree with yet.
  std::vector<Reclassification> observe(const Epoch& epoch);

  struct BufferState {
    bool tracked = false;
    /// EMA of per-epoch traffic. Decays toward zero on epochs where the
    /// buffer was idle, so cold buffers drift to kInsensitive (and become
    /// eviction candidates) instead of keeping their last hot verdict.
    sim::BufferTraffic ema;
    prof::Sensitivity committed = prof::Sensitivity::kInsensitive;
    /// Candidate verdict while a disagreement streak is running.
    prof::Sensitivity pending = prof::Sensitivity::kInsensitive;
    unsigned disagreement_streak = 0;
  };

  /// Indexed by buffer index; entries for never-seen buffers are untracked.
  [[nodiscard]] const std::vector<BufferState>& states() const {
    return states_;
  }
  /// Committed verdict (kInsensitive for untracked buffers).
  [[nodiscard]] prof::Sensitivity committed(sim::BufferId buffer) const;
  [[nodiscard]] bool tracked(sim::BufferId buffer) const;
  /// EMA of total per-epoch memory bytes across all buffers.
  [[nodiscard]] double ema_total_bytes() const { return ema_total_bytes_; }
  [[nodiscard]] const ClassifierOptions& options() const { return options_; }

  /// Snapshot/restore (src/recover): overlays the full mutable state — the
  /// EMA tables and hysteresis streaks drive every downstream decision, so
  /// a restored classifier must continue from exactly these values for the
  /// decision log to stay byte-identical.
  void restore_state(std::vector<BufferState> states, double ema_total_bytes) {
    states_ = std::move(states);
    ema_total_bytes_ = ema_total_bytes;
  }

 private:
  ClassifierOptions options_;
  std::vector<BufferState> states_;
  double ema_total_bytes_ = 0.0;
};

}  // namespace hetmem::runtime
