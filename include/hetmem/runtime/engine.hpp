// Budgeted migration engine — turns online verdicts into migrate() calls.
//
// Level-triggered: every epoch it looks at ALL tracked buffers whose
// committed sensitivity disagrees with their current placement (not only the
// epoch's fresh reclassifications), so a move deferred by the budget or a
// transient fault is retried the next epoch. Each considered move passes
// three gates before the allocator is touched:
//   1. benefit  — the advisor's TrafficCostModel must price the buffer's EMA
//                 traffic cheaper on the destination than where it is;
//   2. breakeven — one-time migration cost must amortize within
//                 expected_future_epochs of that per-epoch benefit;
//   3. budget   — accepted bytes per epoch (including evictions) stay under
//                 epoch_budget_bytes, the paper's §VII "migration should
//                 likely be avoided" knob.
// When the destination is full, the engine may first *evict* committed-
// insensitive tracked buffers from it to the best capacity target (coldest
// first); eviction bytes count against the same budget and their cost
// against the same break-even gate.
//
// Every considered move is logged as a Decision with a verdict and reason —
// an observability surface (render_decision_log() is byte-stable for a fixed
// seed, which the chaos tests assert), not just printf.
//
// Thread safety (docs/CONCURRENCY.md): externally synchronized — one epoch
// loop drives the engine (its decision log is an ordered narrative). The
// allocator/machine calls it makes are themselves thread-safe, so worker
// threads may allocate/free concurrently with the epoch loop.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hetmem/alloc/advisor.hpp"
#include "hetmem/alloc/allocator.hpp"
#include "hetmem/runtime/classifier.hpp"
#include "hetmem/tenant/arbiter.hpp"

namespace hetmem::runtime {

struct EngineOptions {
  /// Max bytes migrated per epoch (promotions + evictions). UINT64_MAX =
  /// unlimited.
  std::uint64_t epoch_budget_bytes = UINT64_MAX;
  /// Break-even horizon: a move must amortize within this many epochs of its
  /// estimated per-epoch benefit.
  double expected_future_epochs = 10.0;
  /// MLP assumed by the shared TrafficCostModel.
  double mlp = 6.0;
  /// Allow evicting committed-insensitive buffers to make room.
  bool allow_evictions = true;
};

enum class Verdict : std::uint8_t {
  kAccepted,            // migrated
  kEvicted,             // migrated away to make room for an accepted move
  kRejectedNoTarget,    // attribute ranking empty (no usable target)
  kRejectedCapacity,    // no ranked target has (or can be given) room
  kRejectedNoBenefit,   // destination would not be faster for this traffic
  kRejectedBreakeven,   // cost does not amortize within the horizon
  kRejectedBudget,      // deferred: epoch byte budget exhausted
  kRejectedTenantShare,  // deferred: owning tenant's arbiter slice exhausted
  kFailedMigrate,       // allocator/machine refused (fault, offline, raced)
};

[[nodiscard]] const char* verdict_name(Verdict verdict);

struct Decision {
  std::uint64_t epoch = 0;
  sim::BufferId buffer;
  std::string label;
  unsigned from_node = 0;
  unsigned to_node = 0;
  prof::Sensitivity sensitivity = prof::Sensitivity::kInsensitive;
  Verdict verdict = Verdict::kRejectedNoBenefit;
  double benefit_per_epoch_ns = 0.0;
  double cost_ns = 0.0;
  double breakeven_epochs = 0.0;
  std::uint64_t bytes = 0;
  std::string reason;
};

struct EngineStats {
  std::uint64_t considered = 0;
  std::uint64_t accepted = 0;
  std::uint64_t evicted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t failed = 0;
  std::uint64_t migrated_bytes = 0;     // accepted + evicted
  double migration_cost_ns = 0.0;       // total paid
};

class MigrationEngine {
 public:
  MigrationEngine(alloc::HeterogeneousAllocator& allocator,
                  support::Bitmap initiator, EngineOptions options = {});

  /// Runs one epoch of decisions against the classifier's committed state.
  /// `threads` is the workload's simulated thread count (the classifier's
  /// traffic is summed over threads; the cost model divides stalls back).
  /// Returns the migration cost paid this epoch (simulated ns) for the
  /// caller to charge into its clock.
  double run_epoch(std::uint64_t epoch_index, const OnlineClassifier& classifier,
                   unsigned threads);

  [[nodiscard]] const std::vector<Decision>& decisions() const {
    return decisions_;
  }
  [[nodiscard]] const EngineStats& stats() const { return stats_; }
  /// Largest accepted+evicted byte total of any single epoch — what the
  /// budget acceptance check reads.
  [[nodiscard]] std::uint64_t max_epoch_migrated_bytes() const {
    return max_epoch_bytes_;
  }
  [[nodiscard]] const EngineOptions& options() const { return options_; }

  // --- shared per-epoch byte budget ---
  //
  // The health Evacuator drains failing nodes through the SAME per-epoch
  // pool run_epoch draws from, so evacuation and optimization migrations
  // jointly respect epoch_budget_bytes. The first draw (or run_epoch) for a
  // new epoch_index resets the pool; externally synchronized like the rest
  // of the engine — one epoch loop drives both consumers.

  /// Bytes still available to migrate in `epoch_index`.
  [[nodiscard]] std::uint64_t budget_remaining(std::uint64_t epoch_index);
  /// Draws `bytes` from the epoch's pool; false (and no draw) when the
  /// remaining budget is smaller.
  bool consume_budget(std::uint64_t epoch_index, std::uint64_t bytes);

  // --- per-tenant arbitration (docs/TENANCY.md) ---
  //
  // With an arbiter installed, the epoch budget pool is additionally carved
  // into per-tenant slices (priority- and deficit-weighted) when each epoch
  // opens, and every migration — the engine's own and the Evacuator's —
  // must draw its bytes from the owning tenant's slice before touching the
  // shared pool. Untenanted buffers bypass the slices entirely.

  /// Installs the arbiter (setup-time, like the rest of the engine's
  /// configuration; nullptr detaches). Must outlive the engine.
  void set_arbiter(tenant::GlobalArbiter* arbiter) { arbiter_ = arbiter; }
  [[nodiscard]] tenant::GlobalArbiter* arbiter() const { return arbiter_; }

  /// Draws `bytes` from the slice of the tenant owning `buffer`. True when
  /// no arbiter is installed, the buffer is untenanted, or the slice covers
  /// the draw; false records the denial (feeding next epoch's deficit
  /// boost) and leaves the shared pool untouched.
  bool tenant_draw(std::uint64_t epoch_index, sim::BufferId buffer,
                   std::uint64_t bytes);

  /// Deterministic text rendering of the full decision history.
  [[nodiscard]] std::string render_decision_log() const;

  // --- snapshot/restore hooks (src/recover, docs/RECOVERY.md) ---

  /// Overlays the cumulative statistics and budget watermark. The budget
  /// pool itself is not restored: run_epoch re-opens it per epoch index, and
  /// a restored run resumes at the NEXT epoch, which resets it anyway.
  void restore_stats(const EngineStats& stats, std::uint64_t max_epoch_bytes) {
    stats_ = stats;
    max_epoch_bytes_ = max_epoch_bytes;
  }

  /// Prepends already-rendered decision-log text (the snapshotted run's
  /// narrative up to the crash). render_decision_log() emits it before the
  /// decisions this engine takes itself, so a restored run's full log is
  /// byte-identical to an uninterrupted run's — the determinism gate
  /// compares exactly that. The structured decisions() vector holds only
  /// post-restore decisions.
  void restore_log_prefix(std::string rendered) {
    log_prefix_ = std::move(rendered);
  }
  [[nodiscard]] const std::string& log_prefix() const { return log_prefix_; }

 private:
  struct Candidate {
    sim::BufferId buffer;
    unsigned to_node = 0;
    prof::Sensitivity sensitivity = prof::Sensitivity::kInsensitive;
    double benefit_per_epoch_ns = 0.0;
  };

  /// Resets the budget pool when `epoch_index` opens a new epoch.
  void ensure_epoch(std::uint64_t epoch_index);

  void log(std::uint64_t epoch, sim::BufferId buffer, Verdict verdict,
           const Candidate* candidate, double cost_ns, std::string reason);
  [[nodiscard]] double node_traffic_cost_ns(
      unsigned node, std::uint64_t declared_bytes,
      const sim::BufferTraffic& traffic, unsigned threads) const;

  alloc::HeterogeneousAllocator* allocator_;
  support::Bitmap initiator_;
  EngineOptions options_;
  tenant::GlobalArbiter* arbiter_ = nullptr;
  std::string log_prefix_;  // restored pre-crash narrative (restore_log_prefix)
  std::vector<Decision> decisions_;
  EngineStats stats_;
  std::uint64_t max_epoch_bytes_ = 0;
  // Epoch-keyed shared budget pool (see budget_remaining/consume_budget).
  std::uint64_t budget_epoch_ = UINT64_MAX;
  std::uint64_t budget_left_ = 0;
};

}  // namespace hetmem::runtime
