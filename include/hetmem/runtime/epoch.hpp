// Epoch sampling — the online runtime's measurement front-end.
//
// An *epoch* is the unit at which the runtime observes and acts: every
// `phases_per_epoch` completed phases, the sampler diffs the execution
// context's cumulative per-buffer traffic against its previous snapshot and
// emits the delta. `sample_period` emulates PEBS-style sampled tracking
// (Olson et al., arXiv:2110.02150; Nonell et al., arXiv:2011.13432): with a
// period P, counters are only known at a granularity of P events (P cache
// lines for byte counters), reconstructed by seeded stochastic rounding so
// the estimate is unbiased AND deterministic for a fixed seed.
// bench/ablation_runtime shows placement decisions survive P = 10..100.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "hetmem/simmem/exec.hpp"
#include "hetmem/support/rng.hpp"

namespace hetmem::runtime {

struct SamplerOptions {
  /// Completed phases per emitted epoch (>= 1).
  unsigned phases_per_epoch = 1;
  /// PEBS-style subsample period: 1 = exact counters, N = one sample every
  /// N events (N*64 bytes for byte counters), reconstructed multiplicatively.
  double sample_period = 1.0;
  /// Seed for the stochastic-rounding stream (decisions replay for a fixed
  /// seed).
  std::uint64_t seed = 0x5eed;
};

struct EpochSample {
  sim::BufferId buffer;
  /// Estimated traffic delta over the epoch (post-subsampling).
  sim::BufferTraffic traffic;
};

struct Epoch {
  std::uint64_t index = 0;
  /// Simulated time covered (includes overhead charged between phases).
  double duration_ns = 0.0;
  /// Sum of sampled memory_bytes over this epoch's samples.
  double total_memory_bytes = 0.0;
  /// Buffers with any estimated traffic this epoch, ascending buffer index.
  std::vector<EpochSample> samples;
};

class EpochSampler {
 public:
  explicit EpochSampler(SamplerOptions options = {});

  /// Call once per completed phase (RuntimePolicy wires this to the
  /// ExecutionContext's phase observer). Returns an epoch every
  /// phases_per_epoch calls, std::nullopt in between.
  std::optional<Epoch> on_phase(const sim::ExecutionContext& exec);

  /// Emits an epoch from whatever accumulated since the last one, resetting
  /// the phase countdown — e.g. to flush at the end of a run.
  Epoch force_epoch(const sim::ExecutionContext& exec);

  /// Replay path (trace::TraceReplayer): applies this sampler's subsampling
  /// to a RAW (exact-delta) epoch as if it had been observed live — same
  /// per-sample stochastic-rounding draws, same RNG stream, epochs numbered
  /// by this sampler's own counter. Feeding the raw deltas a live sampler
  /// saw, in order, into a fresh sampler with the same options reproduces
  /// the live sampler's output epochs bit for bit.
  Epoch subsample_epoch(const Epoch& raw);

  [[nodiscard]] std::uint64_t epochs_emitted() const { return epochs_; }
  [[nodiscard]] const SamplerOptions& options() const { return options_; }

 private:
  Epoch make_epoch(const sim::ExecutionContext& exec);
  /// Applies the subsample period to one buffer's traffic delta in place.
  void subsample_traffic(sim::BufferTraffic& delta);
  /// Stochastic rounding of `value` to multiples of `quantum`.
  double subsample(double value, double quantum);

  SamplerOptions options_;
  support::Xoshiro256 rng_;
  std::vector<sim::BufferTraffic> snapshot_;
  double snapshot_clock_ns_ = 0.0;
  unsigned phases_since_epoch_ = 0;
  std::uint64_t epochs_ = 0;
};

}  // namespace hetmem::runtime
