// Epoch sampling — the online runtime's measurement front-end.
//
// An *epoch* is the unit at which the runtime observes and acts: every
// `phases_per_epoch` completed phases, the sampler reads the per-buffer
// traffic deltas accumulated since its previous epoch (through the
// execution context's telemetry-ring reader — O(dirty buffers), not a full
// merge) and emits them. `sample_period` emulates PEBS-style sampled
// tracking (Olson et al., arXiv:2110.02150; Nonell et al.,
// arXiv:2011.13432): with a period P, counters are only known at a
// granularity of P events (P cache lines for byte counters), reconstructed
// by seeded stochastic rounding so the estimate is unbiased AND
// deterministic for a fixed seed. bench/ablation_runtime shows placement
// decisions survive P = 10..100.
//
// Adaptive mode (docs/RUNTIME.md "Adaptive sampling") closes the loop on
// the sampler's own cost: each epoch it measures its read-deltas +
// subsampling time, compares it to the epoch's duration_ns, and steers the
// *effective* period with a multiplicative-increase/decrease law —
//   cost/duration > budget        -> period *= 2 (up to max_sample_period)
//   cost/duration < budget / 4    -> period /= 2 (down to sample_period)
// — the deadband between keeps the period stable under steady load. The
// period chosen after epoch N applies to epoch N+1; every epoch carries the
// period that sampled it (Epoch::sample_period), which the trace/2 format
// records so replays reproduce the controller's choices bit for bit
// without re-running the controller.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "hetmem/simmem/exec.hpp"
#include "hetmem/support/rng.hpp"

namespace hetmem::runtime {

struct EpochSample {
  sim::BufferId buffer;
  /// Estimated traffic delta over the epoch (post-subsampling).
  sim::BufferTraffic traffic;
};

struct Epoch {
  std::uint64_t index = 0;
  /// Simulated time covered (includes overhead charged between phases).
  double duration_ns = 0.0;
  /// Sum of sampled memory_bytes over this epoch's samples.
  double total_memory_bytes = 0.0;
  /// Subsample period applied to this epoch's counters: the sampler's
  /// effective period at emission time (fixed `sample_period` when the
  /// controller is off). 0.0 on raw epochs that never passed through a
  /// sampler (hand-built or parsed from a v1 trace).
  double sample_period = 0.0;
  /// Buffers with any estimated traffic this epoch, ascending buffer index.
  std::vector<EpochSample> samples;
};

struct SamplerOptions {
  /// Completed phases per emitted epoch (>= 1).
  unsigned phases_per_epoch = 1;
  /// PEBS-style subsample period: 1 = exact counters, N = one sample every
  /// N events (N*64 bytes for byte counters), reconstructed multiplicatively.
  /// In adaptive mode this is the *floor* the controller never goes below.
  double sample_period = 1.0;
  /// Seed for the stochastic-rounding stream (decisions replay for a fixed
  /// seed).
  std::uint64_t seed = 0x5eed;

  // --- adaptive sample-rate control ---
  /// Enables the overhead-budget controller described in the file header.
  bool adaptive = false;
  /// Target ceiling for sampler cost as a fraction of epoch duration.
  double overhead_budget_fraction = 0.01;
  /// Upper clamp for the effective period under sustained pressure.
  double max_sample_period = 4096.0;
  /// Replaces the wall-clock cost measurement: returns the sampler cost in
  /// ns for the epoch just emitted. Inject a deterministic model in tests
  /// and ablations; leave empty for live (measured) operation. Replays
  /// never consult it — recorded per-epoch periods rule.
  std::function<double(const Epoch&)> cost_model = nullptr;
};

class EpochSampler {
 public:
  explicit EpochSampler(SamplerOptions options = {});

  /// Call once per completed phase (RuntimePolicy wires this to the
  /// ExecutionContext's phase observer). Returns an epoch every
  /// phases_per_epoch calls, std::nullopt in between.
  std::optional<Epoch> on_phase(const sim::ExecutionContext& exec);

  /// Emits an epoch from whatever accumulated since the last one, resetting
  /// the phase countdown — e.g. to flush at the end of a run.
  Epoch force_epoch(const sim::ExecutionContext& exec);

  /// Replay path (trace::TraceReplayer): applies this sampler's subsampling
  /// to a RAW (exact-delta) epoch as if it had been observed live — same
  /// per-sample stochastic-rounding draws, same RNG stream, epochs numbered
  /// by this sampler's own counter. Feeding the raw deltas a live sampler
  /// saw, in order, into a fresh sampler with the same options reproduces
  /// the live sampler's output epochs bit for bit. In adaptive mode the
  /// raw epoch's recorded sample_period (trace/2) is used verbatim; the
  /// controller itself never runs during replay.
  Epoch subsample_epoch(const Epoch& raw);

  [[nodiscard]] std::uint64_t epochs_emitted() const { return epochs_; }
  [[nodiscard]] const SamplerOptions& options() const { return options_; }

  /// The period the NEXT live epoch will be sampled at (== sample_period
  /// when the controller is off).
  [[nodiscard]] double effective_period() const;
  /// Measured (or modeled) sampler cost of the most recent live epoch, ns.
  [[nodiscard]] double last_cost_ns() const { return last_cost_ns_; }
  /// Period applied to each emitted epoch, in emission order — what the
  /// policy decision log and the trace/2 recorder publish.
  [[nodiscard]] const std::vector<double>& period_log() const {
    return period_log_;
  }

  /// Full mutable state, for snapshot/restore (src/recover). Options are
  /// NOT part of the state — the restorer reconstructs the sampler from the
  /// same options and then overlays this; the determinism contract
  /// (docs/RECOVERY.md) requires the options to match the snapshotted run.
  /// The TelemetryReader is also excluded: it rebinds to whatever execution
  /// context the restored policy attaches to.
  struct State {
    std::array<std::uint64_t, 4> rng{};
    double snapshot_clock_ns = 0.0;
    unsigned phases_since_epoch = 0;
    std::uint64_t epochs = 0;
    double effective_period = 1.0;
    double last_cost_ns = 0.0;
    std::vector<double> period_log;
  };
  [[nodiscard]] State export_state() const;
  void restore_state(const State& state);

 private:
  Epoch make_epoch(const sim::ExecutionContext& exec);
  /// Runs the multiplicative-increase/decrease law on last_cost_ns_.
  void update_controller(double duration_ns);
  /// Applies `period` to one buffer's traffic delta in place.
  void subsample_traffic(sim::BufferTraffic& delta, double period);
  /// Stochastic rounding of `value` to multiples of `quantum`.
  double subsample(double value, double quantum);

  SamplerOptions options_;
  support::Xoshiro256 rng_;
  sim::TelemetryReader reader_;
  double snapshot_clock_ns_ = 0.0;
  unsigned phases_since_epoch_ = 0;
  std::uint64_t epochs_ = 0;
  double effective_period_ = 1.0;
  double last_cost_ns_ = 0.0;
  std::vector<double> period_log_;
};

}  // namespace hetmem::runtime
