// Set-associative cache simulator with set sampling.
//
// The profiler's default miss counts come from the analytic model in
// sim::CacheModel (fast, fractional). This module is the *measured*
// alternative — a trace-driven LRU set-associative cache like the ones
// behind VTune's LLC-miss counters — used for prof's deep mode and for
// validating the analytic model (bench/ablation_cachemodel). Set sampling
// (simulate 1-in-K sets) keeps it cheap at production trace rates, the
// standard technique from hardware simulation.
//
// Set-sampling extrapolation rule: with `set_sampling = K`, only sets whose
// index is a multiple of K are simulated. An access that maps to a
// non-simulated set is a *statistical hit* — access() returns true and the
// access contributes NOTHING to any counter (not even `accesses`). Every
// access that lands in a simulated set is counted K times (one observed
// access stands in for the ~K-1 unobserved accesses that hashed to the
// skipped sets), so `stats().accesses/misses` estimate full-trace totals
// and `miss_rate()` is the sampled sets' miss ratio. The estimate is
// unbiased when line addresses spread uniformly over set indices (true for
// large strided or uniform-random footprints; adversarial traces that
// concentrate on a residue class of sets will bias it) — the sampled-vs-full
// tolerance is tested in tests/cachesim_test.cpp. `evictions` stays
// UNSCALED: it counts replacement events inside simulated sets only, a
// capacity-pressure signal rather than a full-trace estimate.
//
// Storage is structure-of-arrays (parallel tag / last-use / valid arrays)
// so the hot tag-probe loop touches one contiguous lane instead of striding
// over 24-byte line records; lookup_batch() amortizes the set decode and
// exploits sorted runs of equal line addresses on top of that.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hetmem::cachesim {

struct CacheConfig {
  std::uint64_t size_bytes = 27ull * 1024 * 1024 + 512 * 1024;  // 27.5 MiB CLX
  unsigned ways = 11;
  unsigned line_bytes = 64;
  /// Simulate one set in `set_sampling`; 1 = full simulation. Sampled
  /// accesses are scaled back up in the reported counts.
  unsigned set_sampling = 1;

  [[nodiscard]] std::uint64_t set_count() const {
    return size_bytes / (static_cast<std::uint64_t>(ways) * line_bytes);
  }
};

struct CacheStats {
  std::uint64_t accesses = 0;   // scaled to the full trace when sampling
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  [[nodiscard]] double miss_rate() const {
    return accesses == 0 ? 0.0 : static_cast<double>(misses) /
                                     static_cast<double>(accesses);
  }
};

/// Raw (UNSCALED) outcome counts of one lookup_batch() call. `simulated`
/// is how many of the batch's accesses landed in simulated sets; the
/// remaining `count - simulated` were statistical hits. Scale `simulated`
/// and `misses` by `set_sampling` to extrapolate, as access_batch() does.
struct BatchCounts {
  std::uint64_t simulated = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
};

class Cache {
 public:
  explicit Cache(const CacheConfig& config);

  /// One access to `address`; returns true on hit. Sampled-out accesses
  /// return true and are only counted statistically (see the extrapolation
  /// rule in the file header).
  bool access(std::uint64_t address);

  /// Per-stream accounting: like access(), but attributes the miss to
  /// `stream_id` (the profiler uses buffer indices). Streams are created
  /// lazily.
  bool access(std::uint64_t address, std::uint32_t stream_id);

  /// Batched simulation over LINE addresses (byte address / line_bytes),
  /// which MUST be sorted ascending — sorting makes equal lines adjacent,
  /// so repeat touches of a line skip the tag probe entirely (the line is
  /// MRU from the previous access; only its recency advances). End state
  /// and counts are exactly what `count` sequential lookups of the same
  /// addresses would produce. Does NOT touch stats(); callers scale the
  /// returned raw counts themselves (access_batch does).
  BatchCounts lookup_batch(const std::uint64_t* line_addresses,
                           std::size_t count);

  /// Sorted BYTE addresses through lookup_batch(), folding the scaled
  /// counts into stats() exactly as per-access access() calls would.
  void access_batch(const std::uint64_t* addresses, std::size_t count);

  /// access_batch() with per-stream attribution (one stream per batch).
  void access_batch(const std::uint64_t* addresses, std::size_t count,
                    std::uint32_t stream_id);

  [[nodiscard]] const CacheStats& stats() const { return total_; }
  [[nodiscard]] CacheStats stream_stats(std::uint32_t stream_id) const;
  [[nodiscard]] const CacheConfig& config() const { return config_; }

  void reset();

 private:
  [[nodiscard]] bool lookup(std::uint64_t address, bool* sampled);
  /// LRU probe of one simulated set; returns hit, sets *evicted on
  /// replacement of a valid line and *touched to the line slot that now
  /// holds the tag (MRU). `set_slot` indexes simulated sets.
  [[nodiscard]] bool probe(std::uint64_t set_slot, std::uint64_t tag,
                           bool* evicted, std::size_t* touched);

  CacheConfig config_;
  std::uint64_t sets_simulated_;
  // Structure-of-arrays line storage, sets_simulated_ x ways each: the
  // probe loop scans tags_ alone (8 contiguous bytes per way) and only
  // touches the other lanes on a decided outcome.
  std::vector<std::uint64_t> tags_;
  std::vector<std::uint64_t> last_use_;
  std::vector<std::uint8_t> valid_;
  std::uint64_t tick_ = 0;
  CacheStats total_;
  std::vector<CacheStats> streams_;
  std::vector<std::uint64_t> batch_scratch_;  // access_batch line addresses
};

}  // namespace hetmem::cachesim
