// Set-associative cache simulator with set sampling.
//
// The profiler's default miss counts come from the analytic model in
// sim::CacheModel (fast, fractional). This module is the *measured*
// alternative — a trace-driven LRU set-associative cache like the ones
// behind VTune's LLC-miss counters — used for prof's deep mode and for
// validating the analytic model (bench/ablation_cachemodel). Set sampling
// (simulate 1-in-K sets) keeps it cheap at production trace rates, the
// standard technique from hardware simulation.
#pragma once

#include <cstdint>
#include <vector>

namespace hetmem::cachesim {

struct CacheConfig {
  std::uint64_t size_bytes = 27ull * 1024 * 1024 + 512 * 1024;  // 27.5 MiB CLX
  unsigned ways = 11;
  unsigned line_bytes = 64;
  /// Simulate one set in `set_sampling`; 1 = full simulation. Sampled
  /// accesses are scaled back up in the reported counts.
  unsigned set_sampling = 1;

  [[nodiscard]] std::uint64_t set_count() const {
    return size_bytes / (static_cast<std::uint64_t>(ways) * line_bytes);
  }
};

struct CacheStats {
  std::uint64_t accesses = 0;   // scaled to the full trace when sampling
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  [[nodiscard]] double miss_rate() const {
    return accesses == 0 ? 0.0 : static_cast<double>(misses) /
                                     static_cast<double>(accesses);
  }
};

class Cache {
 public:
  explicit Cache(const CacheConfig& config);

  /// One access to `address`; returns true on hit. Sampled-out accesses
  /// return true and are only counted statistically.
  bool access(std::uint64_t address);

  /// Per-stream accounting: like access(), but attributes the miss to
  /// `stream_id` (the profiler uses buffer indices). Streams are created
  /// lazily.
  bool access(std::uint64_t address, std::uint32_t stream_id);

  [[nodiscard]] const CacheStats& stats() const { return total_; }
  [[nodiscard]] CacheStats stream_stats(std::uint32_t stream_id) const;
  [[nodiscard]] const CacheConfig& config() const { return config_; }

  void reset();

 private:
  struct Line {
    std::uint64_t tag = 0;
    std::uint64_t last_use = 0;
    bool valid = false;
  };

  [[nodiscard]] bool lookup(std::uint64_t address, bool* sampled);

  CacheConfig config_;
  std::uint64_t sets_simulated_;
  std::vector<Line> lines_;  // sets_simulated_ x ways
  std::uint64_t tick_ = 0;
  CacheStats total_;
  std::vector<CacheStats> streams_;
};

}  // namespace hetmem::cachesim
