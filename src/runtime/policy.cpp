#include "hetmem/runtime/policy.hpp"

namespace hetmem::runtime {

RuntimePolicy::RuntimePolicy(alloc::HeterogeneousAllocator& allocator,
                             support::Bitmap initiator,
                             RuntimePolicyOptions options)
    : allocator_(&allocator),
      sampler_(options.sampler),
      classifier_(options.classifier),
      engine_(allocator, std::move(initiator), options.engine),
      charge_migration_cost_(options.charge_migration_cost) {}

void RuntimePolicy::attach(sim::ExecutionContext& exec,
                           std::function<void()> post_migration) {
  post_migration_ = std::move(post_migration);
  exec.set_phase_observer(
      [this, &exec](const sim::PhaseResult&) { on_phase(exec); });
}

void RuntimePolicy::on_phase(sim::ExecutionContext& exec) {
  std::optional<Epoch> epoch = sampler_.on_phase(exec);
  if (!epoch.has_value()) return;
  classifier_.observe(*epoch);
  const std::uint64_t moves_before =
      engine_.stats().accepted + engine_.stats().evicted;
  const double paid_ns =
      engine_.run_epoch(epoch->index, classifier_, exec.thread_count());
  if (charge_migration_cost_) exec.charge_overhead_ns(paid_ns);
  const std::uint64_t moves_after =
      engine_.stats().accepted + engine_.stats().evicted;
  if (moves_after != moves_before && post_migration_) post_migration_();
}

}  // namespace hetmem::runtime
