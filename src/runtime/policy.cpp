#include "hetmem/runtime/policy.hpp"

#include <cstdio>

namespace hetmem::runtime {

RuntimePolicy::RuntimePolicy(alloc::HeterogeneousAllocator& allocator,
                             support::Bitmap initiator,
                             RuntimePolicyOptions options)
    : allocator_(&allocator),
      sampler_(options.sampler),
      classifier_(options.classifier),
      engine_(allocator, std::move(initiator), options.engine),
      charge_migration_cost_(options.charge_migration_cost) {}

void RuntimePolicy::attach(sim::ExecutionContext& exec,
                           std::function<void()> post_migration) {
  post_migration_ = std::move(post_migration);
  exec.set_phase_observer(
      [this, &exec](const sim::PhaseResult&) { on_phase(exec); });
}

void RuntimePolicy::on_phase(sim::ExecutionContext& exec) {
  std::optional<Epoch> epoch = sampler_.on_phase(exec);
  if (!epoch.has_value()) return;
  classifier_.observe(*epoch);
  // Movement is detected via the allocator's migration counter, not engine
  // stats, so buffers moved by the epoch hook (health evacuation) also
  // trigger the application's post-migration refresh.
  const std::uint64_t migrations_before = allocator_->stats().migrations;
  double paid_ns = 0.0;
  if (!migration_gate_ || migration_gate_(epoch->index)) {
    paid_ns = engine_.run_epoch(epoch->index, classifier_, exec.thread_count());
  }
  if (epoch_hook_) paid_ns += epoch_hook_(epoch->index, exec.thread_count());
  if (charge_migration_cost_) exec.charge_overhead_ns(paid_ns);
  if (allocator_->stats().migrations != migrations_before && post_migration_) {
    post_migration_();
  }
}

std::string RuntimePolicy::render_decision_log() const {
  std::string log = engine_.render_decision_log();
  if (sampler_.options().adaptive) {
    log += "sampler periods:\n";
    const std::vector<double>& periods = sampler_.period_log();
    for (std::size_t epoch = 0; epoch < periods.size(); ++epoch) {
      char line[64];
      std::snprintf(line, sizeof(line), "epoch %zu period %g\n", epoch,
                    periods[epoch]);
      log += line;
    }
  }
  return log;
}

double RuntimePolicy::replay_epoch(const Epoch& raw_epoch, unsigned threads) {
  Epoch epoch = sampler_.subsample_epoch(raw_epoch);
  classifier_.observe(epoch);
  const std::uint64_t migrations_before = allocator_->stats().migrations;
  double paid_ns = 0.0;
  if (!migration_gate_ || migration_gate_(epoch.index)) {
    paid_ns = engine_.run_epoch(epoch.index, classifier_, threads);
  }
  if (epoch_hook_) paid_ns += epoch_hook_(epoch.index, threads);
  if (allocator_->stats().migrations != migrations_before && post_migration_) {
    post_migration_();
  }
  return paid_ns;
}

}  // namespace hetmem::runtime
