#include "hetmem/runtime/classifier.hpp"

#include <algorithm>

namespace hetmem::runtime {

OnlineClassifier::OnlineClassifier(ClassifierOptions options)
    : options_(options) {
  options_.ema_alpha = std::clamp(options_.ema_alpha, 1e-6, 1.0);
}

prof::Sensitivity OnlineClassifier::committed(sim::BufferId buffer) const {
  if (!buffer.valid() || buffer.index >= states_.size()) {
    return prof::Sensitivity::kInsensitive;
  }
  return states_[buffer.index].committed;
}

bool OnlineClassifier::tracked(sim::BufferId buffer) const {
  return buffer.valid() && buffer.index < states_.size() &&
         states_[buffer.index].tracked;
}

std::vector<Reclassification> OnlineClassifier::observe(const Epoch& epoch) {
  const double alpha = options_.ema_alpha;
  std::uint32_t max_index = 0;
  for (const EpochSample& sample : epoch.samples) {
    max_index = std::max(max_index, sample.buffer.index);
  }
  if (!epoch.samples.empty() && states_.size() <= max_index) {
    states_.resize(max_index + 1);
  }

  ema_total_bytes_ =
      alpha * epoch.total_memory_bytes + (1.0 - alpha) * ema_total_bytes_;

  // Fold samples in; buffers absent from this epoch decay toward zero.
  auto blend = [alpha](sim::BufferTraffic& ema, const sim::BufferTraffic& now) {
    ema.reads = alpha * now.reads + (1.0 - alpha) * ema.reads;
    ema.writes = alpha * now.writes + (1.0 - alpha) * ema.writes;
    ema.llc_misses = alpha * now.llc_misses + (1.0 - alpha) * ema.llc_misses;
    ema.memory_bytes =
        alpha * now.memory_bytes + (1.0 - alpha) * ema.memory_bytes;
    ema.random_accesses =
        alpha * now.random_accesses + (1.0 - alpha) * ema.random_accesses;
    ema.random_misses =
        alpha * now.random_misses + (1.0 - alpha) * ema.random_misses;
  };

  std::vector<Reclassification> commits;
  std::size_t next_sample = 0;
  for (std::uint32_t index = 0; index < states_.size(); ++index) {
    BufferState& state = states_[index];
    const EpochSample* sample = nullptr;
    if (next_sample < epoch.samples.size() &&
        epoch.samples[next_sample].buffer.index == index) {
      sample = &epoch.samples[next_sample++];
    }
    if (!state.tracked) {
      if (sample == nullptr) continue;
      // First sighting: seed the EMA with the full epoch (no decayed-zero
      // blend) and commit immediately — there is no history to disagree with.
      state.tracked = true;
      state.ema = sample->traffic;
      const double share = ema_total_bytes_ > 0.0
                               ? state.ema.memory_bytes / ema_total_bytes_
                               : 0.0;
      state.committed = prof::classify_sensitivity(
          share, state.ema.llc_misses, state.ema.random_misses,
          options_.thresholds);
      state.pending = state.committed;
      if (state.committed != prof::Sensitivity::kInsensitive) {
        commits.push_back(Reclassification{sim::BufferId{index},
                                           prof::Sensitivity::kInsensitive,
                                           state.committed});
      }
      continue;
    }

    static const sim::BufferTraffic kIdle{};
    blend(state.ema, sample != nullptr ? sample->traffic : kIdle);

    const double share = ema_total_bytes_ > 0.0
                             ? state.ema.memory_bytes / ema_total_bytes_
                             : 0.0;
    const prof::Sensitivity instant = prof::classify_sensitivity(
        share, state.ema.llc_misses, state.ema.random_misses,
        options_.thresholds);
    if (instant == state.committed) {
      state.disagreement_streak = 0;
      state.pending = state.committed;
      continue;
    }
    if (instant == state.pending) {
      ++state.disagreement_streak;
    } else {
      state.pending = instant;
      state.disagreement_streak = 1;
    }
    if (state.disagreement_streak >= std::max(1u, options_.hysteresis_epochs)) {
      commits.push_back(Reclassification{sim::BufferId{index}, state.committed,
                                         instant});
      state.committed = instant;
      state.disagreement_streak = 0;
    }
  }
  return commits;
}

}  // namespace hetmem::runtime
