#include "hetmem/runtime/engine.hpp"

#include <algorithm>
#include <utility>

#include "hetmem/support/str.hpp"
#include "hetmem/support/units.hpp"

namespace hetmem::runtime {

namespace {

/// Planned eviction while a promotion is being evaluated.
struct PlannedEviction {
  sim::BufferId buffer;
  unsigned to_node = 0;
  std::uint64_t bytes = 0;
};

}  // namespace

const char* verdict_name(Verdict verdict) {
  switch (verdict) {
    case Verdict::kAccepted: return "accepted";
    case Verdict::kEvicted: return "evicted";
    case Verdict::kRejectedNoTarget: return "rejected:no-target";
    case Verdict::kRejectedCapacity: return "rejected:capacity";
    case Verdict::kRejectedNoBenefit: return "rejected:no-benefit";
    case Verdict::kRejectedBreakeven: return "rejected:breakeven";
    case Verdict::kRejectedBudget: return "rejected:budget";
    case Verdict::kRejectedTenantShare: return "rejected:tenant-share";
    case Verdict::kFailedMigrate: return "failed:migrate";
  }
  return "?";
}

MigrationEngine::MigrationEngine(alloc::HeterogeneousAllocator& allocator,
                                 support::Bitmap initiator,
                                 EngineOptions options)
    : allocator_(&allocator),
      initiator_(std::move(initiator)),
      options_(options) {}

void MigrationEngine::ensure_epoch(std::uint64_t epoch_index) {
  if (budget_epoch_ == epoch_index) return;
  budget_epoch_ = epoch_index;
  budget_left_ = options_.epoch_budget_bytes;
  if (arbiter_ != nullptr) {
    arbiter_->begin_epoch(epoch_index, options_.epoch_budget_bytes);
  }
}

bool MigrationEngine::tenant_draw(std::uint64_t epoch_index,
                                  sim::BufferId buffer, std::uint64_t bytes) {
  if (arbiter_ == nullptr) return true;
  ensure_epoch(epoch_index);
  const tenant::TenantHandle owner = allocator_->tenant_of(buffer);
  const tenant::TenantId id = owner != nullptr ? owner->id() : tenant::kNoTenant;
  return arbiter_->try_draw(epoch_index, id, bytes);
}

std::uint64_t MigrationEngine::budget_remaining(std::uint64_t epoch_index) {
  ensure_epoch(epoch_index);
  return budget_left_;
}

bool MigrationEngine::consume_budget(std::uint64_t epoch_index,
                                     std::uint64_t bytes) {
  ensure_epoch(epoch_index);
  if (bytes > budget_left_) return false;
  // An unlimited budget never depletes (UINT64_MAX is the documented
  // "unlimited" sentinel, not a real pool size).
  if (budget_left_ != UINT64_MAX) budget_left_ -= bytes;
  return true;
}

double MigrationEngine::node_traffic_cost_ns(
    unsigned node, std::uint64_t declared_bytes,
    const sim::BufferTraffic& traffic, unsigned threads) const {
  const sim::SimMachine& machine = allocator_->machine();
  const alloc::TrafficCostModel model{options_.mlp, threads};
  const bool local = initiator_.is_subset_of(
      machine.topology().numa_node(node)->cpuset());
  return model.cost_ns(machine, node, declared_bytes, local, traffic);
}

void MigrationEngine::log(std::uint64_t epoch, sim::BufferId buffer,
                          Verdict verdict, const Candidate* candidate,
                          double cost_ns, std::string reason) {
  const sim::BufferInfo& info = allocator_->machine().info(buffer);
  Decision decision;
  decision.epoch = epoch;
  decision.buffer = buffer;
  decision.label = info.label;
  decision.from_node = info.node;
  decision.verdict = verdict;
  decision.cost_ns = cost_ns;
  decision.bytes = info.declared_bytes;
  decision.reason = std::move(reason);
  if (candidate != nullptr) {
    decision.to_node = candidate->to_node;
    decision.sensitivity = candidate->sensitivity;
    decision.benefit_per_epoch_ns = candidate->benefit_per_epoch_ns;
    decision.breakeven_epochs =
        candidate->benefit_per_epoch_ns > 0.0
            ? cost_ns / candidate->benefit_per_epoch_ns
            : 0.0;
  } else {
    decision.to_node = info.node;
  }
  ++stats_.considered;
  switch (verdict) {
    case Verdict::kAccepted: ++stats_.accepted; break;
    case Verdict::kEvicted: ++stats_.evicted; break;
    case Verdict::kFailedMigrate: ++stats_.failed; break;
    default: ++stats_.rejected; break;
  }
  decisions_.push_back(std::move(decision));
}

double MigrationEngine::run_epoch(std::uint64_t epoch_index,
                                  const OnlineClassifier& classifier,
                                  unsigned threads) {
  sim::SimMachine& machine = allocator_->machine();
  const attr::MemAttrRegistry& registry = allocator_->registry();
  const auto query = attr::Initiator::from_cpuset(initiator_);
  const auto& states = classifier.states();

  // Cold insensitive buffers on `node` that could be displaced, coldest
  // (lowest EMA traffic) first. Only buffers the classifier tracks are fair
  // game — never an application's untracked allocations.
  auto eviction_candidates = [&](unsigned node, sim::BufferId except) {
    std::vector<std::uint32_t> victims;
    for (std::uint32_t index = 0; index < states.size(); ++index) {
      if (!states[index].tracked || index == except.index) continue;
      if (states[index].committed != prof::Sensitivity::kInsensitive) continue;
      const sim::BufferInfo& info = machine.info(sim::BufferId{index});
      if (info.freed || info.node != node) continue;
      victims.push_back(index);
    }
    std::stable_sort(victims.begin(), victims.end(),
                     [&](std::uint32_t a, std::uint32_t b) {
                       return states[a].ema.memory_bytes <
                              states[b].ema.memory_bytes;
                     });
    return victims;
  };

  // Where evicted buffers go: down the Capacity ranking (always populated
  // natively), skipping the node being cleared. Fetched through the ranking
  // cache: across epochs without attribute mutations this is one lock-free
  // load instead of a fresh sort under the registry shared_mutex.
  attr::RankingSnapshot capacity_snapshot =
      registry.targets_ranked_cached(attr::kCapacity, query);
  const std::vector<attr::TargetValue>& capacity_ranking =
      capacity_snapshot->targets;

  // Phase 1: level-triggered scan. Propose a move for every tracked
  // latency/bandwidth buffer whose best feasible ranked target is elsewhere;
  // buffers already best-placed stay silent (steady state logs nothing).
  std::vector<Candidate> candidates;
  for (std::uint32_t index = 0; index < states.size(); ++index) {
    const auto& state = states[index];
    if (!state.tracked ||
        state.committed == prof::Sensitivity::kInsensitive) {
      continue;
    }
    const sim::BufferId buffer{index};
    const sim::BufferInfo& info = machine.info(buffer);
    if (info.freed) continue;

    const attr::AttrId attribute = prof::allocation_hint(state.committed);
    // Per-buffer ranking reuses the shared snapshot: there are only a couple
    // of distinct attributes across all tracked buffers, so this inner loop
    // is all cache hits.
    attr::RankingSnapshot ranked_snapshot =
        registry.targets_ranked_cached(attribute, query);
    const std::vector<attr::TargetValue>& ranked = ranked_snapshot->targets;
    if (ranked.empty()) {
      log(epoch_index, buffer, Verdict::kRejectedNoTarget, nullptr, 0.0,
          "no ranked targets for attribute " + std::to_string(attribute));
      continue;
    }

    const topo::Object* destination = nullptr;
    bool best_placed = false;
    for (const attr::TargetValue& target : ranked) {
      const unsigned node = target.target->logical_index();
      if (node == info.node) {
        best_placed = true;
        break;
      }
      if (machine.available_bytes(node) >= info.declared_bytes) {
        destination = target.target;
        break;
      }
      if (options_.allow_evictions) {
        std::uint64_t reclaimable = 0;
        for (std::uint32_t victim : eviction_candidates(node, buffer)) {
          reclaimable += machine.info(sim::BufferId{victim}).declared_bytes;
        }
        if (machine.available_bytes(node) + reclaimable >=
            info.declared_bytes) {
          destination = target.target;
          break;
        }
      }
    }
    if (best_placed) continue;
    if (destination == nullptr) {
      log(epoch_index, buffer, Verdict::kRejectedCapacity, nullptr, 0.0,
          "no ranked target has room (evictions insufficient)");
      continue;
    }

    Candidate candidate;
    candidate.buffer = buffer;
    candidate.to_node = destination->logical_index();
    candidate.sensitivity = state.committed;
    candidate.benefit_per_epoch_ns =
        node_traffic_cost_ns(info.node, info.declared_bytes, state.ema,
                             threads) -
        node_traffic_cost_ns(candidate.to_node, info.declared_bytes,
                             state.ema, threads);
    if (candidate.benefit_per_epoch_ns <= 0.0) {
      log(epoch_index, buffer, Verdict::kRejectedNoBenefit, &candidate, 0.0,
          "destination not faster for observed traffic");
      continue;
    }
    candidates.push_back(candidate);
  }

  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const Candidate& a, const Candidate& b) {
                     if (a.benefit_per_epoch_ns != b.benefit_per_epoch_ns) {
                       return a.benefit_per_epoch_ns > b.benefit_per_epoch_ns;
                     }
                     return a.buffer.index < b.buffer.index;
                   });

  // Phase 2: apply under the gates, biggest modeled benefit first. The
  // budget pool is the epoch-keyed member shared with the health Evacuator:
  // evacuation bytes spent earlier in this epoch shrink what optimization
  // moves may spend, and vice versa.
  ensure_epoch(epoch_index);
  std::uint64_t epoch_bytes = 0;
  double paid_ns = 0.0;
  for (const Candidate& candidate : candidates) {
    const sim::BufferInfo info = machine.info(candidate.buffer);
    if (info.freed || info.node == candidate.to_node) continue;

    // Plan evictions needed to fit, tracking room already promised away.
    std::vector<PlannedEviction> evictions;
    std::uint64_t room = machine.available_bytes(candidate.to_node);
    std::vector<std::uint64_t> promised(machine.topology().numa_nodes().size(),
                                        0);
    if (room < info.declared_bytes && options_.allow_evictions) {
      for (std::uint32_t victim_index :
           eviction_candidates(candidate.to_node, candidate.buffer)) {
        if (room >= info.declared_bytes) break;
        const sim::BufferId victim{victim_index};
        const sim::BufferInfo& victim_info = machine.info(victim);
        unsigned victim_dest = candidate.to_node;
        for (const attr::TargetValue& target : capacity_ranking) {
          const unsigned node = target.target->logical_index();
          if (node == candidate.to_node) continue;
          if (machine.available_bytes(node) >=
              promised[node] + victim_info.declared_bytes) {
            victim_dest = node;
            break;
          }
        }
        if (victim_dest == candidate.to_node) continue;  // nowhere to put it
        promised[victim_dest] += victim_info.declared_bytes;
        room += victim_info.declared_bytes;
        evictions.push_back(PlannedEviction{victim, victim_dest,
                                            victim_info.declared_bytes});
      }
    }
    if (room < info.declared_bytes) {
      log(epoch_index, candidate.buffer, Verdict::kRejectedCapacity,
          &candidate, 0.0, "destination full (evictions insufficient)");
      continue;
    }

    double cost_ns = allocator_->estimate_migration_cost_ns(candidate.buffer,
                                                            candidate.to_node);
    std::uint64_t move_bytes = info.declared_bytes;
    for (const PlannedEviction& eviction : evictions) {
      cost_ns +=
          allocator_->estimate_migration_cost_ns(eviction.buffer,
                                                 eviction.to_node);
      move_bytes += eviction.bytes;
    }

    const double breakeven = cost_ns / candidate.benefit_per_epoch_ns;
    if (breakeven > options_.expected_future_epochs) {
      log(epoch_index, candidate.buffer, Verdict::kRejectedBreakeven,
          &candidate, cost_ns,
          "breakeven " + support::format_fixed(breakeven, 1) +
              " epochs exceeds horizon " +
              support::format_fixed(options_.expected_future_epochs, 1));
      continue;
    }
    if (move_bytes > budget_left_) {
      log(epoch_index, candidate.buffer, Verdict::kRejectedBudget, &candidate,
          cost_ns,
          "needs " + support::format_bytes(move_bytes) + ", budget has " +
              support::format_bytes(budget_left_) + " left this epoch");
      continue;
    }
    // Arbiter gate: the whole move (promotion + its evictions) is charged to
    // the promoted buffer's tenant — evictions happen on its behalf.
    if (!tenant_draw(epoch_index, candidate.buffer, move_bytes)) {
      log(epoch_index, candidate.buffer, Verdict::kRejectedTenantShare,
          &candidate, cost_ns,
          "owning tenant's slice cannot cover " +
              support::format_bytes(move_bytes) + " this epoch");
      continue;
    }

    bool eviction_failed = false;
    for (const PlannedEviction& eviction : evictions) {
      Candidate as_candidate;
      as_candidate.buffer = eviction.buffer;
      as_candidate.to_node = eviction.to_node;
      as_candidate.sensitivity = prof::Sensitivity::kInsensitive;
      const unsigned victim_from = machine.info(eviction.buffer).node;
      auto result = allocator_->migrate(eviction.buffer, eviction.to_node);
      if (!result.ok()) {
        log(epoch_index, eviction.buffer, Verdict::kFailedMigrate,
            &as_candidate, 0.0, result.error().to_string());
        eviction_failed = true;
        break;
      }
      paid_ns += *result;
      (void)consume_budget(epoch_index, eviction.bytes);
      epoch_bytes += eviction.bytes;
      stats_.migrated_bytes += eviction.bytes;
      stats_.migration_cost_ns += *result;
      log(epoch_index, eviction.buffer, Verdict::kEvicted, &as_candidate,
          *result, "making room for " + info.label);
      // log() snapshots the buffer's node, which migrate() just changed;
      // the decision should show where the victim came from.
      decisions_.back().from_node = victim_from;
    }
    if (eviction_failed) {
      log(epoch_index, candidate.buffer, Verdict::kRejectedCapacity,
          &candidate, 0.0, "eviction failed; retrying next epoch");
      continue;
    }

    auto result = allocator_->migrate(candidate.buffer, candidate.to_node);
    if (!result.ok()) {
      log(epoch_index, candidate.buffer, Verdict::kFailedMigrate, &candidate,
          cost_ns, result.error().to_string());
      continue;
    }
    paid_ns += *result;
    (void)consume_budget(epoch_index, info.declared_bytes);
    epoch_bytes += info.declared_bytes;
    stats_.migrated_bytes += info.declared_bytes;
    stats_.migration_cost_ns += *result;
    log(epoch_index, candidate.buffer, Verdict::kAccepted, &candidate, *result,
        "breakeven " + support::format_fixed(breakeven, 1) + " epochs");
    decisions_.back().from_node = info.node;
  }

  max_epoch_bytes_ = std::max(max_epoch_bytes_, epoch_bytes);
  return paid_ns;
}

std::string MigrationEngine::render_decision_log() const {
  std::string out = log_prefix_;
  for (const Decision& decision : decisions_) {
    out += "epoch " + std::to_string(decision.epoch) + " " +
           verdict_name(decision.verdict) + " " + decision.label + " (buffer " +
           std::to_string(decision.buffer.index) + ", " +
           prof::sensitivity_name(decision.sensitivity) + ") node " +
           std::to_string(decision.from_node) + " -> " +
           std::to_string(decision.to_node) + " " +
           support::format_bytes(decision.bytes);
    if (decision.benefit_per_epoch_ns > 0.0) {
      out += " benefit/epoch " +
             support::format_fixed(decision.benefit_per_epoch_ns / 1e6, 3) +
             " ms, cost " + support::format_fixed(decision.cost_ns / 1e6, 3) +
             " ms";
    }
    if (!decision.reason.empty()) out += " — " + decision.reason;
    out += "\n";
  }
  return out;
}

}  // namespace hetmem::runtime
