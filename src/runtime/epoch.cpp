#include "hetmem/runtime/epoch.hpp"

#include <algorithm>
#include <cmath>

namespace hetmem::runtime {

EpochSampler::EpochSampler(SamplerOptions options)
    : options_(options), rng_(options.seed) {
  options_.phases_per_epoch = std::max(1u, options_.phases_per_epoch);
  options_.sample_period = std::max(1.0, options_.sample_period);
}

double EpochSampler::subsample(double value, double quantum) {
  if (value <= 0.0) return 0.0;
  const double scaled = value / quantum;
  const double floor = std::floor(scaled);
  const double fraction = scaled - floor;
  double estimate = floor;
  // Unbiased stochastic rounding; the draw is skipped for exact multiples so
  // already-quantized inputs never consume randomness.
  if (fraction > 0.0) estimate += rng_.next_double() < fraction ? 1.0 : 0.0;
  return estimate * quantum;
}

void EpochSampler::subsample_traffic(sim::BufferTraffic& delta) {
  // One sample per period: event counters are known to multiples of the
  // period, byte counters to multiples of period * cache-line bytes.
  const double event_quantum = options_.sample_period;
  const double byte_quantum = options_.sample_period * 64.0;
  delta.reads = subsample(delta.reads, event_quantum);
  delta.writes = subsample(delta.writes, event_quantum);
  delta.llc_misses = subsample(delta.llc_misses, event_quantum);
  delta.memory_bytes = subsample(delta.memory_bytes, byte_quantum);
  delta.random_accesses = subsample(delta.random_accesses, event_quantum);
  delta.random_misses = subsample(delta.random_misses, event_quantum);
  // Keep the ratio invariants the classifier divides by: misses cannot
  // exceed accesses-style counters after independent rounding.
  delta.random_misses = std::min(delta.random_misses, delta.llc_misses);
}

Epoch EpochSampler::make_epoch(const sim::ExecutionContext& exec) {
  std::vector<sim::BufferTraffic> merged = exec.merged_buffer_traffic();
  if (snapshot_.size() < merged.size()) snapshot_.resize(merged.size());

  Epoch epoch;
  epoch.index = epochs_;
  epoch.duration_ns = exec.clock_ns() - snapshot_clock_ns_;

  const bool exact = options_.sample_period <= 1.0;

  for (std::uint32_t index = 0; index < merged.size(); ++index) {
    const sim::BufferTraffic& now = merged[index];
    const sim::BufferTraffic& then = snapshot_[index];
    sim::BufferTraffic delta;
    delta.reads = now.reads - then.reads;
    delta.writes = now.writes - then.writes;
    delta.llc_misses = now.llc_misses - then.llc_misses;
    delta.memory_bytes = now.memory_bytes - then.memory_bytes;
    delta.random_accesses = now.random_accesses - then.random_accesses;
    delta.random_misses = now.random_misses - then.random_misses;
    const bool any = delta.reads > 0.0 || delta.writes > 0.0 ||
                     delta.memory_bytes > 0.0;
    if (!any) continue;
    if (!exact) subsample_traffic(delta);
    epoch.total_memory_bytes += delta.memory_bytes;
    epoch.samples.push_back(EpochSample{sim::BufferId{index}, delta});
  }

  snapshot_ = std::move(merged);
  snapshot_clock_ns_ = exec.clock_ns();
  phases_since_epoch_ = 0;
  ++epochs_;
  return epoch;
}

std::optional<Epoch> EpochSampler::on_phase(const sim::ExecutionContext& exec) {
  if (++phases_since_epoch_ < options_.phases_per_epoch) return std::nullopt;
  return make_epoch(exec);
}

Epoch EpochSampler::force_epoch(const sim::ExecutionContext& exec) {
  return make_epoch(exec);
}

Epoch EpochSampler::subsample_epoch(const Epoch& raw) {
  Epoch epoch;
  epoch.index = epochs_;
  epoch.duration_ns = raw.duration_ns;
  const bool exact = options_.sample_period <= 1.0;
  for (const EpochSample& sample : raw.samples) {
    sim::BufferTraffic delta = sample.traffic;
    // Same inclusion rule as make_epoch: a recorded sample with no raw
    // activity neither appears in the output nor consumes RNG draws, so the
    // rounding stream stays aligned with what a live sampler would have
    // drawn from the same deltas.
    const bool any = delta.reads > 0.0 || delta.writes > 0.0 ||
                     delta.memory_bytes > 0.0;
    if (!any) continue;
    if (!exact) subsample_traffic(delta);
    epoch.total_memory_bytes += delta.memory_bytes;
    epoch.samples.push_back(EpochSample{sample.buffer, delta});
  }
  phases_since_epoch_ = 0;
  ++epochs_;
  return epoch;
}

}  // namespace hetmem::runtime
