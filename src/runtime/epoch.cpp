#include "hetmem/runtime/epoch.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

namespace hetmem::runtime {

EpochSampler::EpochSampler(SamplerOptions options)
    : options_(std::move(options)), rng_(options_.seed) {
  options_.phases_per_epoch = std::max(1u, options_.phases_per_epoch);
  options_.sample_period = std::max(1.0, options_.sample_period);
  options_.max_sample_period =
      std::max(options_.sample_period, options_.max_sample_period);
  effective_period_ = options_.sample_period;
}

double EpochSampler::effective_period() const {
  return options_.adaptive ? effective_period_ : options_.sample_period;
}

EpochSampler::State EpochSampler::export_state() const {
  State state;
  state.rng = rng_.state();
  state.snapshot_clock_ns = snapshot_clock_ns_;
  state.phases_since_epoch = phases_since_epoch_;
  state.epochs = epochs_;
  state.effective_period = effective_period_;
  state.last_cost_ns = last_cost_ns_;
  state.period_log = period_log_;
  return state;
}

void EpochSampler::restore_state(const State& state) {
  rng_.set_state(state.rng);
  snapshot_clock_ns_ = state.snapshot_clock_ns;
  phases_since_epoch_ = state.phases_since_epoch;
  epochs_ = state.epochs;
  effective_period_ = state.effective_period;
  last_cost_ns_ = state.last_cost_ns;
  period_log_ = state.period_log;
}

double EpochSampler::subsample(double value, double quantum) {
  if (value <= 0.0) return 0.0;
  const double scaled = value / quantum;
  const double floor = std::floor(scaled);
  const double fraction = scaled - floor;
  double estimate = floor;
  // Unbiased stochastic rounding; the draw is skipped for exact multiples so
  // already-quantized inputs never consume randomness.
  if (fraction > 0.0) estimate += rng_.next_double() < fraction ? 1.0 : 0.0;
  return estimate * quantum;
}

void EpochSampler::subsample_traffic(sim::BufferTraffic& delta, double period) {
  // One sample per period: event counters are known to multiples of the
  // period, byte counters to multiples of period * cache-line bytes.
  const double event_quantum = period;
  const double byte_quantum = period * 64.0;
  delta.reads = subsample(delta.reads, event_quantum);
  delta.writes = subsample(delta.writes, event_quantum);
  delta.llc_misses = subsample(delta.llc_misses, event_quantum);
  delta.memory_bytes = subsample(delta.memory_bytes, byte_quantum);
  delta.random_accesses = subsample(delta.random_accesses, event_quantum);
  delta.random_misses = subsample(delta.random_misses, event_quantum);
  // Keep the ratio invariants the classifier divides by: misses cannot
  // exceed accesses-style counters after independent rounding.
  delta.random_misses = std::min(delta.random_misses, delta.llc_misses);
}

void EpochSampler::update_controller(double duration_ns) {
  if (!options_.adaptive || duration_ns <= 0.0) return;
  const double fraction = last_cost_ns_ / duration_ns;
  if (fraction > options_.overhead_budget_fraction) {
    effective_period_ =
        std::min(effective_period_ * 2.0, options_.max_sample_period);
  } else if (fraction < options_.overhead_budget_fraction * 0.25) {
    effective_period_ =
        std::max(effective_period_ * 0.5, options_.sample_period);
  }
}

Epoch EpochSampler::make_epoch(const sim::ExecutionContext& exec) {
  const auto start = std::chrono::steady_clock::now();

  Epoch epoch;
  epoch.index = epochs_;
  epoch.duration_ns = exec.clock_ns() - snapshot_clock_ns_;
  const double period = effective_period();
  epoch.sample_period = period;
  const bool exact = period <= 1.0;

  exec.read_traffic_deltas(
      reader_, [&](std::uint32_t index, const sim::BufferTraffic& raw) {
        sim::BufferTraffic delta = raw;
        if (!exact) subsample_traffic(delta, period);
        epoch.total_memory_bytes += delta.memory_bytes;
        epoch.samples.push_back(EpochSample{sim::BufferId{index}, delta});
      });

  snapshot_clock_ns_ = exec.clock_ns();
  phases_since_epoch_ = 0;
  ++epochs_;
  period_log_.push_back(period);

  if (options_.cost_model) {
    last_cost_ns_ = options_.cost_model(epoch);
  } else {
    last_cost_ns_ = std::chrono::duration<double, std::nano>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  }
  update_controller(epoch.duration_ns);
  return epoch;
}

std::optional<Epoch> EpochSampler::on_phase(const sim::ExecutionContext& exec) {
  if (++phases_since_epoch_ < options_.phases_per_epoch) return std::nullopt;
  return make_epoch(exec);
}

Epoch EpochSampler::force_epoch(const sim::ExecutionContext& exec) {
  return make_epoch(exec);
}

Epoch EpochSampler::subsample_epoch(const Epoch& raw) {
  Epoch epoch;
  epoch.index = epochs_;
  epoch.duration_ns = raw.duration_ns;
  // Recorded controller choices rule the replay: a trace/2 epoch carries
  // the period the live sampler used, so adaptive replays reproduce the
  // live run's quantization (and RNG draws) without re-running the
  // controller against replay-time costs.
  const double period = options_.adaptive && raw.sample_period > 0.0
                            ? raw.sample_period
                            : effective_period();
  epoch.sample_period = period;
  const bool exact = period <= 1.0;
  for (const EpochSample& sample : raw.samples) {
    sim::BufferTraffic delta = sample.traffic;
    // Same inclusion rule as the live read-deltas path: a recorded sample
    // with no raw activity neither appears in the output nor consumes RNG
    // draws, so the rounding stream stays aligned with what a live sampler
    // would have drawn from the same deltas.
    const bool any = delta.reads > 0.0 || delta.writes > 0.0 ||
                     delta.memory_bytes > 0.0;
    if (!any) continue;
    if (!exact) subsample_traffic(delta, period);
    epoch.total_memory_bytes += delta.memory_bytes;
    epoch.samples.push_back(EpochSample{sample.buffer, delta});
  }
  phases_since_epoch_ = 0;
  ++epochs_;
  period_log_.push_back(period);
  return epoch;
}

}  // namespace hetmem::runtime
