#include "hetmem/support/table.hpp"

#include <algorithm>
#include <cassert>

#include "hetmem/support/str.hpp"

namespace hetmem::support {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  assert(!headers_.empty());
}

void TextTable::add_row(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(Row{std::move(cells), pending_separator_});
  pending_separator_ = false;
}

void TextTable::add_separator() { pending_separator_ = true; }

std::string TextTable::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }

  auto rule = [&] {
    std::string line = "+";
    for (std::size_t w : widths) line += std::string(w + 2, '-') + "+";
    line += '\n';
    return line;
  };
  auto render_row = [&](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      const std::string padded = c == 0 ? pad_right(cells[c], widths[c])
                                        : pad_left(cells[c], widths[c]);
      line += " " + padded + " |";
    }
    line += '\n';
    return line;
  };

  std::string out = rule();
  out += render_row(headers_);
  out += rule();
  for (const auto& row : rows_) {
    if (row.separator_before) out += rule();
    out += render_row(row.cells);
  }
  out += rule();
  return out;
}

std::string banner(std::string_view title) {
  std::string out = "\n== ";
  out += title;
  out += " ==\n";
  return out;
}

}  // namespace hetmem::support
