#include "hetmem/support/str.hpp"

#include <cctype>

namespace hetmem::support {

std::vector<std::string_view> split(std::string_view text, char delimiter) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = text.find(delimiter, start);
    if (pos == std::string_view::npos) {
      out.push_back(text.substr(start));
      return out;
    }
    out.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view text) {
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.front()))) {
    text.remove_prefix(1);
  }
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.back()))) {
    text.remove_suffix(1);
  }
  return text;
}

std::string join(const std::vector<std::string>& parts, std::string_view separator) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += separator;
    out += parts[i];
  }
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

std::string pad_right(std::string_view text, std::size_t width) {
  std::string out(text);
  if (out.size() < width) out.append(width - out.size(), ' ');
  return out;
}

std::string pad_left(std::string_view text, std::size_t width) {
  std::string out(text);
  if (out.size() < width) out.insert(0, width - out.size(), ' ');
  return out;
}

}  // namespace hetmem::support
