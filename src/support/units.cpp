#include "hetmem/support/units.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace hetmem::support {

namespace {

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

}  // namespace

std::optional<std::uint64_t> parse_bytes(std::string_view text) {
  // Strip surrounding whitespace.
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.front()))) {
    text.remove_prefix(1);
  }
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.back()))) {
    text.remove_suffix(1);
  }
  if (text.empty()) return std::nullopt;

  std::size_t num_end = 0;
  while (num_end < text.size() &&
         (std::isdigit(static_cast<unsigned char>(text[num_end])) ||
          text[num_end] == '.')) {
    ++num_end;
  }
  if (num_end == 0) return std::nullopt;

  double value = 0.0;
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + num_end, value);
  if (ec != std::errc{} || ptr != text.data() + num_end) return std::nullopt;

  std::string_view suffix = text.substr(num_end);
  while (!suffix.empty() && std::isspace(static_cast<unsigned char>(suffix.front()))) {
    suffix.remove_prefix(1);
  }

  double multiplier = 1.0;
  if (suffix.empty() || iequals(suffix, "B")) {
    multiplier = 1.0;
  } else if (iequals(suffix, "KiB") || iequals(suffix, "K")) {
    multiplier = static_cast<double>(kKiB);
  } else if (iequals(suffix, "MiB") || iequals(suffix, "M")) {
    multiplier = static_cast<double>(kMiB);
  } else if (iequals(suffix, "GiB") || iequals(suffix, "G")) {
    multiplier = static_cast<double>(kGiB);
  } else if (iequals(suffix, "TiB") || iequals(suffix, "T")) {
    multiplier = static_cast<double>(kTiB);
  } else if (iequals(suffix, "KB")) {
    multiplier = kKB;
  } else if (iequals(suffix, "MB")) {
    multiplier = kMB;
  } else if (iequals(suffix, "GB")) {
    multiplier = kGB;
  } else if (iequals(suffix, "TB")) {
    multiplier = 1e12;
  } else {
    return std::nullopt;
  }
  double bytes = value * multiplier;
  if (bytes < 0 || bytes > 1.8e19) return std::nullopt;
  return static_cast<std::uint64_t>(std::llround(bytes));
}

std::string format_bytes(std::uint64_t bytes) {
  struct Scale {
    std::uint64_t unit;
    const char* suffix;
  };
  static constexpr Scale kScales[] = {
      {kTiB, "TiB"}, {kGiB, "GiB"}, {kMiB, "MiB"}, {kKiB, "KiB"}};
  for (const auto& s : kScales) {
    if (bytes >= s.unit) {
      return format_fixed(static_cast<double>(bytes) / static_cast<double>(s.unit), 1) +
             s.suffix;
    }
  }
  return std::to_string(bytes) + "B";
}

std::string format_bandwidth(double bytes_per_second) {
  return format_fixed(bytes_per_second / kGB, 2) + " GB/s";
}

std::string format_latency_ns(double nanoseconds) {
  if (nanoseconds >= 1000.0) {
    return format_fixed(nanoseconds / 1000.0, 2) + " us";
  }
  return format_fixed(nanoseconds, 0) + " ns";
}

std::string format_fixed(double value, int decimals) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", decimals, value);
  return buffer;
}

}  // namespace hetmem::support
