#include "hetmem/support/bitmap.hpp"

#include <algorithm>
#include <bit>
#include <charconv>

namespace hetmem::support {

Bitmap::Bitmap(std::initializer_list<unsigned> bits) {
  for (unsigned b : bits) set(b);
}

Bitmap Bitmap::range(unsigned first, unsigned last) {
  Bitmap b;
  b.set_range(first, last);
  return b;
}

std::optional<Bitmap> Bitmap::parse(std::string_view text) {
  Bitmap result;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t comma = text.find(',', pos);
    std::string_view token = text.substr(pos, comma == std::string_view::npos
                                                  ? std::string_view::npos
                                                  : comma - pos);
    pos = comma == std::string_view::npos ? text.size() : comma + 1;
    if (token.empty()) return std::nullopt;

    unsigned first = 0;
    unsigned last = 0;
    std::size_t dash = token.find('-');
    auto parse_uint = [](std::string_view s, unsigned& out) {
      auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
      return ec == std::errc{} && ptr == s.data() + s.size();
    };
    if (dash == std::string_view::npos) {
      if (!parse_uint(token, first)) return std::nullopt;
      last = first;
    } else {
      if (!parse_uint(token.substr(0, dash), first)) return std::nullopt;
      if (!parse_uint(token.substr(dash + 1), last)) return std::nullopt;
      if (last < first) return std::nullopt;
    }
    result.set_range(first, last);
  }
  return result;
}

void Bitmap::ensure_word(std::size_t index) {
  if (words_.size() <= index) words_.resize(index + 1, 0);
}

void Bitmap::trim() {
  while (!words_.empty() && words_.back() == 0) words_.pop_back();
}

void Bitmap::set(unsigned bit) {
  ensure_word(bit / kWordBits);
  words_[bit / kWordBits] |= std::uint64_t{1} << (bit % kWordBits);
}

void Bitmap::set_range(unsigned first, unsigned last) {
  for (unsigned b = first; b <= last; ++b) set(b);
}

void Bitmap::clear(unsigned bit) {
  std::size_t word = bit / kWordBits;
  if (word >= words_.size()) return;
  words_[word] &= ~(std::uint64_t{1} << (bit % kWordBits));
  trim();
}

bool Bitmap::test(unsigned bit) const {
  std::size_t word = bit / kWordBits;
  if (word >= words_.size()) return false;
  return (words_[word] >> (bit % kWordBits)) & 1u;
}

std::size_t Bitmap::count() const {
  std::size_t total = 0;
  for (std::uint64_t w : words_) total += static_cast<std::size_t>(std::popcount(w));
  return total;
}

bool Bitmap::empty() const {
  return std::all_of(words_.begin(), words_.end(),
                     [](std::uint64_t w) { return w == 0; });
}

std::size_t Bitmap::hash() const {
  // FNV-1a, 64-bit. words_ is kept trimmed (no trailing zero words), so
  // equal sets hash equal regardless of construction history.
  std::uint64_t h = 1469598103934665603ull;
  for (std::uint64_t w : words_) {
    h = (h ^ w) * 1099511628211ull;
  }
  return static_cast<std::size_t>(h);
}

std::optional<unsigned> Bitmap::first() const {
  for (std::size_t i = 0; i < words_.size(); ++i) {
    if (words_[i] != 0) {
      return static_cast<unsigned>(i * kWordBits +
                                   static_cast<unsigned>(std::countr_zero(words_[i])));
    }
  }
  return std::nullopt;
}

std::optional<unsigned> Bitmap::last() const {
  for (std::size_t i = words_.size(); i-- > 0;) {
    if (words_[i] != 0) {
      return static_cast<unsigned>(i * kWordBits + (kWordBits - 1 -
                                   static_cast<unsigned>(std::countl_zero(words_[i]))));
    }
  }
  return std::nullopt;
}

std::optional<unsigned> Bitmap::next(unsigned bit) const {
  unsigned start = bit + 1;
  std::size_t word = start / kWordBits;
  if (word >= words_.size()) return std::nullopt;
  std::uint64_t masked = words_[word] & (~std::uint64_t{0} << (start % kWordBits));
  if (masked != 0) {
    return static_cast<unsigned>(word * kWordBits +
                                 static_cast<unsigned>(std::countr_zero(masked)));
  }
  for (std::size_t i = word + 1; i < words_.size(); ++i) {
    if (words_[i] != 0) {
      return static_cast<unsigned>(i * kWordBits +
                                   static_cast<unsigned>(std::countr_zero(words_[i])));
    }
  }
  return std::nullopt;
}

Bitmap Bitmap::operator|(const Bitmap& other) const {
  Bitmap out = *this;
  out |= other;
  return out;
}

Bitmap& Bitmap::operator|=(const Bitmap& other) {
  ensure_word(other.words_.empty() ? 0 : other.words_.size() - 1);
  for (std::size_t i = 0; i < other.words_.size(); ++i) words_[i] |= other.words_[i];
  trim();
  return *this;
}

Bitmap Bitmap::operator&(const Bitmap& other) const {
  Bitmap out = *this;
  out &= other;
  return out;
}

Bitmap& Bitmap::operator&=(const Bitmap& other) {
  std::size_t n = std::min(words_.size(), other.words_.size());
  words_.resize(n);
  for (std::size_t i = 0; i < n; ++i) words_[i] &= other.words_[i];
  trim();
  return *this;
}

Bitmap Bitmap::operator^(const Bitmap& other) const {
  Bitmap out = *this;
  out.ensure_word(other.words_.empty() ? 0 : other.words_.size() - 1);
  for (std::size_t i = 0; i < other.words_.size(); ++i) out.words_[i] ^= other.words_[i];
  out.trim();
  return out;
}

Bitmap Bitmap::and_not(const Bitmap& other) const {
  Bitmap out = *this;
  std::size_t n = std::min(out.words_.size(), other.words_.size());
  for (std::size_t i = 0; i < n; ++i) out.words_[i] &= ~other.words_[i];
  out.trim();
  return out;
}

bool Bitmap::operator==(const Bitmap& other) const {
  const auto& a = words_;
  const auto& b = other.words_;
  std::size_t n = std::max(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t wa = i < a.size() ? a[i] : 0;
    std::uint64_t wb = i < b.size() ? b[i] : 0;
    if (wa != wb) return false;
  }
  return true;
}

bool Bitmap::intersects(const Bitmap& other) const {
  std::size_t n = std::min(words_.size(), other.words_.size());
  for (std::size_t i = 0; i < n; ++i) {
    if ((words_[i] & other.words_[i]) != 0) return true;
  }
  return false;
}

bool Bitmap::is_subset_of(const Bitmap& other) const {
  for (std::size_t i = 0; i < words_.size(); ++i) {
    std::uint64_t wb = i < other.words_.size() ? other.words_[i] : 0;
    if ((words_[i] & ~wb) != 0) return false;
  }
  return true;
}

std::vector<unsigned> Bitmap::to_vector() const {
  std::vector<unsigned> out;
  out.reserve(count());
  for (auto bit = first(); bit; bit = next(*bit)) out.push_back(*bit);
  return out;
}

std::string Bitmap::to_list_string() const {
  std::string out;
  auto bit = first();
  while (bit) {
    unsigned run_first = *bit;
    unsigned run_last = run_first;
    auto nxt = next(run_last);
    while (nxt && *nxt == run_last + 1) {
      run_last = *nxt;
      nxt = next(run_last);
    }
    if (!out.empty()) out += ',';
    out += std::to_string(run_first);
    if (run_last > run_first) {
      out += '-';
      out += std::to_string(run_last);
    }
    bit = nxt;
  }
  return out;
}

std::string Bitmap::to_hex_string() const {
  if (words_.empty()) return "0x0";
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  for (std::size_t i = words_.size(); i-- > 0;) {
    for (int shift = 60; shift >= 0; shift -= 4) {
      out += kDigits[(words_[i] >> shift) & 0xf];
    }
  }
  std::size_t nz = out.find_first_not_of('0');
  out = nz == std::string::npos ? "0" : out.substr(nz);
  return "0x" + out;
}

}  // namespace hetmem::support
