#include "hetmem/support/thread_pool.hpp"

#include <algorithm>

namespace hetmem::support {

ThreadPool::ThreadPool(std::size_t worker_count) {
  // A zero-worker pool would deadlock every dispatch; clamp instead of
  // asserting so a miscomputed "cores - N" in release builds still runs.
  worker_count = std::max<std::size_t>(1, worker_count);
  workers_.reserve(worker_count);
  for (std::size_t i = 0; i < worker_count; ++i) {
    workers_.emplace_back([this, i] { worker_main(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_ready_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_main(std::size_t index) {
  std::uint64_t seen_epoch = 0;
  while (true) {
    const std::function<void(std::size_t, std::size_t, std::size_t)>* body = nullptr;
    std::size_t item_count = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock, [&] {
        return shutting_down_ || current_.epoch != seen_epoch;
      });
      if (shutting_down_) return;
      seen_epoch = current_.epoch;
      body = current_.body;
      item_count = current_.item_count;
    }

    const std::size_t workers = workers_.size();
    const std::size_t base = item_count / workers;
    const std::size_t extra = item_count % workers;
    const std::size_t begin = index * base + std::min(index, extra);
    const std::size_t end = begin + base + (index < extra ? 1 : 0);
    (*body)(index, begin, end);

    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--pending_workers_ == 0) work_done_.notify_one();
    }
  }
}

void ThreadPool::dispatch(
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body,
    std::size_t item_count) {
  std::unique_lock<std::mutex> lock(mutex_);
  current_.body = &body;
  current_.item_count = item_count;
  ++current_.epoch;
  pending_workers_ = workers_.size();
  work_ready_.notify_all();
  work_done_.wait(lock, [&] { return pending_workers_ == 0; });
}

void ThreadPool::parallel_for(
    std::size_t item_count,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body) {
  dispatch(body, item_count);
}

void ThreadPool::run_on_all(const std::function<void(std::size_t)>& body) {
  const std::function<void(std::size_t, std::size_t, std::size_t)> wrapper =
      [&body](std::size_t worker, std::size_t, std::size_t) { body(worker); };
  dispatch(wrapper, 0);
}

}  // namespace hetmem::support
