#include "hetmem/cachesim/cachesim.hpp"

#include <cassert>

namespace hetmem::cachesim {

Cache::Cache(const CacheConfig& config) : config_(config) {
  assert(config.ways >= 1);
  assert(config.line_bytes >= 8);
  assert(config.set_sampling >= 1);
  const std::uint64_t sets = config.set_count();
  assert(sets >= 1);
  sets_simulated_ = (sets + config.set_sampling - 1) / config.set_sampling;
  lines_.resize(sets_simulated_ * config.ways);
}

void Cache::reset() {
  for (Line& line : lines_) line = Line{};
  tick_ = 0;
  total_ = CacheStats{};
  streams_.clear();
}

bool Cache::lookup(std::uint64_t address, bool* sampled) {
  const std::uint64_t line_address = address / config_.line_bytes;
  const std::uint64_t set = line_address % config_.set_count();
  if (set % config_.set_sampling != 0) {
    *sampled = false;
    return true;  // not simulated; callers count it as a statistical hit
  }
  *sampled = true;

  const std::uint64_t set_slot = set / config_.set_sampling;
  const std::uint64_t tag = line_address / config_.set_count();
  ++tick_;

  Line* victim = nullptr;  // first invalid way, else least-recently used
  for (unsigned way = 0; way < config_.ways; ++way) {
    Line& line = lines_[set_slot * config_.ways + way];
    if (line.valid && line.tag == tag) {
      line.last_use = tick_;
      return true;
    }
    if (!line.valid) {
      if (victim == nullptr || victim->valid) victim = &line;
    } else if (victim == nullptr ||
               (victim->valid && line.last_use < victim->last_use)) {
      victim = &line;
    }
  }
  if (victim->valid) ++total_.evictions;
  victim->valid = true;
  victim->tag = tag;
  victim->last_use = tick_;
  return false;
}

bool Cache::access(std::uint64_t address) {
  bool sampled = false;
  const bool hit = lookup(address, &sampled);
  // Scale sampled counts back to the full trace.
  total_.accesses += config_.set_sampling * (sampled ? 1 : 0);
  if (sampled && !hit) total_.misses += config_.set_sampling;
  return hit;
}

bool Cache::access(std::uint64_t address, std::uint32_t stream_id) {
  bool sampled = false;
  const bool hit = lookup(address, &sampled);
  if (sampled) {
    total_.accesses += config_.set_sampling;
    if (!hit) total_.misses += config_.set_sampling;
    if (streams_.size() <= stream_id) streams_.resize(stream_id + 1);
    streams_[stream_id].accesses += config_.set_sampling;
    if (!hit) streams_[stream_id].misses += config_.set_sampling;
  }
  return hit;
}

CacheStats Cache::stream_stats(std::uint32_t stream_id) const {
  if (stream_id >= streams_.size()) return {};
  return streams_[stream_id];
}

}  // namespace hetmem::cachesim
