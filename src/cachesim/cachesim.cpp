#include "hetmem/cachesim/cachesim.hpp"

#include <cassert>
#include <limits>

namespace hetmem::cachesim {

namespace {
constexpr std::size_t kNoSlot = std::numeric_limits<std::size_t>::max();
}  // namespace

Cache::Cache(const CacheConfig& config) : config_(config) {
  assert(config.ways >= 1);
  assert(config.line_bytes >= 8);
  assert(config.set_sampling >= 1);
  const std::uint64_t sets = config.set_count();
  assert(sets >= 1);
  sets_simulated_ = (sets + config.set_sampling - 1) / config.set_sampling;
  const std::size_t slots =
      static_cast<std::size_t>(sets_simulated_) * config.ways;
  tags_.resize(slots, 0);
  last_use_.resize(slots, 0);
  valid_.resize(slots, 0);
}

void Cache::reset() {
  tags_.assign(tags_.size(), 0);
  last_use_.assign(last_use_.size(), 0);
  valid_.assign(valid_.size(), 0);
  tick_ = 0;
  total_ = CacheStats{};
  streams_.clear();
}

bool Cache::probe(std::uint64_t set_slot, std::uint64_t tag, bool* evicted,
                  std::size_t* touched) {
  const std::size_t base = static_cast<std::size_t>(set_slot) * config_.ways;
  ++tick_;

  // Victim: first invalid way, else least-recently used (earliest index on
  // last_use ties) — same order the AoS scan picked.
  std::size_t victim = kNoSlot;
  for (unsigned way = 0; way < config_.ways; ++way) {
    const std::size_t slot = base + way;
    if (valid_[slot] != 0 && tags_[slot] == tag) {
      last_use_[slot] = tick_;
      *evicted = false;
      *touched = slot;
      return true;
    }
    if (valid_[slot] == 0) {
      if (victim == kNoSlot || valid_[victim] != 0) victim = slot;
    } else if (victim == kNoSlot ||
               (valid_[victim] != 0 && last_use_[slot] < last_use_[victim])) {
      victim = slot;
    }
  }
  *evicted = valid_[victim] != 0;
  valid_[victim] = 1;
  tags_[victim] = tag;
  last_use_[victim] = tick_;
  *touched = victim;
  return false;
}

bool Cache::lookup(std::uint64_t address, bool* sampled) {
  const std::uint64_t line_address = address / config_.line_bytes;
  const std::uint64_t set = line_address % config_.set_count();
  if (set % config_.set_sampling != 0) {
    *sampled = false;
    return true;  // not simulated; callers count it as a statistical hit
  }
  *sampled = true;

  bool evicted = false;
  std::size_t touched = kNoSlot;
  const bool hit = probe(set / config_.set_sampling,
                         line_address / config_.set_count(), &evicted,
                         &touched);
  if (evicted) ++total_.evictions;
  return hit;
}

BatchCounts Cache::lookup_batch(const std::uint64_t* line_addresses,
                                std::size_t count) {
  BatchCounts counts;
  const std::uint64_t set_count = config_.set_count();
  // Sorted input makes repeat touches of a line adjacent. Track the
  // previous line's outcome: if it was simulated, the line is resident and
  // MRU right now, so an equal successor is a guaranteed hit — advance its
  // recency without re-probing the set. If it was sampled out, an equal
  // successor maps to the same skipped set and is another statistical hit.
  std::uint64_t prev_line = 0;
  std::size_t prev_slot = kNoSlot;
  bool have_prev = false;
  bool prev_simulated = false;

  for (std::size_t index = 0; index < count; ++index) {
    const std::uint64_t line = line_addresses[index];
    if (have_prev && line == prev_line) {
      if (prev_simulated) {
        ++tick_;
        last_use_[prev_slot] = tick_;
        ++counts.simulated;
      }
      continue;
    }
    have_prev = true;
    prev_line = line;

    const std::uint64_t set = line % set_count;
    if (set % config_.set_sampling != 0) {
      prev_simulated = false;
      continue;  // statistical hit
    }
    prev_simulated = true;
    ++counts.simulated;

    bool evicted = false;
    const bool hit =
        probe(set / config_.set_sampling, line / set_count, &evicted,
              &prev_slot);
    if (!hit) ++counts.misses;
    if (evicted) ++counts.evictions;
  }
  return counts;
}

void Cache::access_batch(const std::uint64_t* addresses, std::size_t count) {
  batch_scratch_.resize(count);
  for (std::size_t index = 0; index < count; ++index) {
    batch_scratch_[index] = addresses[index] / config_.line_bytes;
  }
  const BatchCounts counts = lookup_batch(batch_scratch_.data(), count);
  total_.accesses += counts.simulated * config_.set_sampling;
  total_.misses += counts.misses * config_.set_sampling;
  total_.evictions += counts.evictions;
}

void Cache::access_batch(const std::uint64_t* addresses, std::size_t count,
                         std::uint32_t stream_id) {
  batch_scratch_.resize(count);
  for (std::size_t index = 0; index < count; ++index) {
    batch_scratch_[index] = addresses[index] / config_.line_bytes;
  }
  const BatchCounts counts = lookup_batch(batch_scratch_.data(), count);
  total_.accesses += counts.simulated * config_.set_sampling;
  total_.misses += counts.misses * config_.set_sampling;
  total_.evictions += counts.evictions;
  if (streams_.size() <= stream_id) streams_.resize(stream_id + 1);
  streams_[stream_id].accesses += counts.simulated * config_.set_sampling;
  streams_[stream_id].misses += counts.misses * config_.set_sampling;
}

bool Cache::access(std::uint64_t address) {
  bool sampled = false;
  const bool hit = lookup(address, &sampled);
  // Scale sampled counts back to the full trace.
  total_.accesses += config_.set_sampling * (sampled ? 1 : 0);
  if (sampled && !hit) total_.misses += config_.set_sampling;
  return hit;
}

bool Cache::access(std::uint64_t address, std::uint32_t stream_id) {
  bool sampled = false;
  const bool hit = lookup(address, &sampled);
  if (sampled) {
    total_.accesses += config_.set_sampling;
    if (!hit) total_.misses += config_.set_sampling;
    if (streams_.size() <= stream_id) streams_.resize(stream_id + 1);
    streams_[stream_id].accesses += config_.set_sampling;
    if (!hit) streams_[stream_id].misses += config_.set_sampling;
  }
  return hit;
}

CacheStats Cache::stream_stats(std::uint32_t stream_id) const {
  if (stream_id >= streams_.size()) return {};
  return streams_[stream_id];
}

}  // namespace hetmem::cachesim
