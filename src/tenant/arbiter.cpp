#include "hetmem/tenant/arbiter.hpp"

#include <algorithm>

#include "hetmem/support/units.hpp"

namespace hetmem::tenant {

GlobalArbiter::GlobalArbiter(const TenantRegistry& registry,
                             ArbiterOptions options)
    : registry_(&registry), options_(options) {}

void GlobalArbiter::begin_epoch(std::uint64_t epoch_index,
                                std::uint64_t pool_bytes) {
  if (epoch_ == epoch_index) return;
  epoch_ = epoch_index;
  pool_bytes_ = pool_bytes;
  ++stats_.epochs;

  // Previous epoch's denials become this epoch's deficit boosts.
  std::unordered_map<TenantId, std::uint64_t> denied;
  for (const ArbiterSlice& slice : slices_) {
    if (slice.denied_bytes > 0) denied[slice.id] = slice.denied_bytes;
  }
  last_denied_ = std::move(denied);
  slices_.clear();

  std::vector<TenantHandle> live = registry_->tenants();
  std::sort(live.begin(), live.end(),
            [](const TenantHandle& a, const TenantHandle& b) {
              return a->id() < b->id();
            });
  if (live.empty()) return;

  double total_weight = 0.0;
  std::vector<double> weights(live.size(), 0.0);
  for (std::size_t i = 0; i < live.size(); ++i) {
    double weight = priority_weight(options_, live[i]->priority()) *
                    live[i]->quota().share_weight;
    if (auto it = last_denied_.find(live[i]->id()); it != last_denied_.end()) {
      // Starvation recovery: weight the slice up by how badly the tenant
      // lost out last epoch, relative to the pool, capped so one enormous
      // denied drain cannot invert the priority order forever.
      const double deficit_fraction =
          pool_bytes_ == UINT64_MAX
              ? 0.0
              : static_cast<double>(it->second) /
                    static_cast<double>(std::max<std::uint64_t>(pool_bytes_, 1));
      weight *= std::min(1.0 + deficit_fraction, options_.deficit_boost_cap);
    }
    weights[i] = weight;
    total_weight += weight;
  }

  for (std::size_t i = 0; i < live.size(); ++i) {
    ArbiterSlice slice;
    slice.id = live[i]->id();
    slice.name = live[i]->name();
    slice.slice_bytes =
        pool_bytes_ == UINT64_MAX || total_weight <= 0.0
            ? UINT64_MAX
            : static_cast<std::uint64_t>(static_cast<double>(pool_bytes_) *
                                         (weights[i] / total_weight));
    slices_.push_back(std::move(slice));
  }
}

bool GlobalArbiter::try_draw(std::uint64_t epoch_index, TenantId id,
                             std::uint64_t bytes) {
  if (epoch_ != epoch_index) begin_epoch(epoch_index, pool_bytes_);
  if (id == kNoTenant) {
    ++stats_.draws_granted;
    stats_.bytes_granted += bytes;
    return true;
  }
  for (ArbiterSlice& slice : slices_) {
    if (slice.id != id) continue;
    const std::uint64_t spent = slice.granted_bytes;
    if (slice.slice_bytes != UINT64_MAX &&
        spent + bytes > slice.slice_bytes) {
      slice.denied_bytes += bytes;
      ++stats_.draws_denied;
      stats_.bytes_denied += bytes;
      return false;
    }
    slice.granted_bytes += bytes;
    ++stats_.draws_granted;
    stats_.bytes_granted += bytes;
    return true;
  }
  // Registered after the epoch opened: no slice to protect yet.
  ++stats_.draws_granted;
  stats_.bytes_granted += bytes;
  return true;
}

std::uint64_t GlobalArbiter::slice_remaining(TenantId id) const {
  for (const ArbiterSlice& slice : slices_) {
    if (slice.id != id) continue;
    if (slice.slice_bytes == UINT64_MAX) return UINT64_MAX;
    return slice.slice_bytes > slice.granted_bytes
               ? slice.slice_bytes - slice.granted_bytes
               : 0;
  }
  return UINT64_MAX;
}

std::string GlobalArbiter::render_log() const {
  std::string out = "epoch " + std::to_string(epoch_) + " pool " +
                    (pool_bytes_ == UINT64_MAX
                         ? std::string("unlimited")
                         : support::format_bytes(pool_bytes_)) +
                    "\n";
  for (const ArbiterSlice& slice : slices_) {
    out += "  tenant " + std::to_string(slice.id) + " (" + slice.name +
           ") slice " +
           (slice.slice_bytes == UINT64_MAX
                ? std::string("unlimited")
                : support::format_bytes(slice.slice_bytes)) +
           " granted " + support::format_bytes(slice.granted_bytes) +
           " denied " + support::format_bytes(slice.denied_bytes) + "\n";
  }
  return out;
}

}  // namespace hetmem::tenant
