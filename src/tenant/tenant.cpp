#include "hetmem/tenant/tenant.hpp"

#include <mutex>

namespace hetmem::tenant {

using support::Errc;
using support::make_error;
using support::Result;
using support::Status;

Result<TenantHandle> TenantRegistry::register_tenant(std::string name,
                                                     Priority priority,
                                                     TenantQuota quota) {
  if (name.empty()) {
    return make_error(Errc::kInvalidArgument, "tenant name must be non-empty");
  }
  if (quota.share_weight <= 0.0) {
    return make_error(Errc::kInvalidArgument,
                      "tenant share_weight must be positive");
  }
  std::unique_lock<std::shared_mutex> lock(mutex_);
  for (const TenantHandle& existing : tenants_) {
    if (existing->name() == name) {
      return make_error(Errc::kAlreadyExists,
                        "tenant '" + name + "' is already registered");
    }
  }
  auto handle =
      std::make_shared<Tenant>(next_id_++, std::move(name), priority, quota);
  tenants_.push_back(handle);
  return handle;
}

Result<TenantHandle> TenantRegistry::restore_tenant(TenantId id,
                                                    std::string name,
                                                    Priority priority,
                                                    TenantQuota quota) {
  if (id == 0) {
    return make_error(Errc::kInvalidArgument, "tenant id 0 is reserved");
  }
  if (name.empty()) {
    return make_error(Errc::kInvalidArgument, "tenant name must be non-empty");
  }
  if (quota.share_weight <= 0.0) {
    return make_error(Errc::kInvalidArgument,
                      "tenant share_weight must be positive");
  }
  std::unique_lock<std::shared_mutex> lock(mutex_);
  for (const TenantHandle& existing : tenants_) {
    if (existing->id() == id || existing->name() == name) {
      return make_error(Errc::kAlreadyExists,
                        "tenant '" + name + "' (id " + std::to_string(id) +
                            ") collides with a registered tenant");
    }
  }
  // Keep the never-reused-id invariant: future register_tenant calls mint
  // ids strictly past every restored one.
  if (id >= next_id_) next_id_ = id + 1;
  auto handle = std::make_shared<Tenant>(id, std::move(name), priority, quota);
  tenants_.push_back(handle);
  return handle;
}

Status TenantRegistry::deregister_tenant(const TenantHandle& handle) {
  if (handle == nullptr) {
    return make_error(Errc::kInvalidArgument, "null tenant handle");
  }
  std::unique_lock<std::shared_mutex> lock(mutex_);
  for (auto it = tenants_.begin(); it != tenants_.end(); ++it) {
    if ((*it)->id() == handle->id()) {
      // Erase-then-mark under the exclusive lock: the removal happens at
      // most once, so the tenant leaves the live share weights exactly once
      // no matter how many racing deregister calls arrive.
      tenants_.erase(it);
      handle->live_.store(false, std::memory_order_release);
      return {};
    }
  }
  return make_error(Errc::kNotFound,
                    "tenant '" + handle->name() + "' is not registered");
}

TenantHandle TenantRegistry::find(std::string_view name) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  for (const TenantHandle& handle : tenants_) {
    if (handle->name() == name) return handle;
  }
  return nullptr;
}

TenantHandle TenantRegistry::find(TenantId id) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  for (const TenantHandle& handle : tenants_) {
    if (handle->id() == id) return handle;
  }
  return nullptr;
}

std::vector<TenantHandle> TenantRegistry::tenants() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return tenants_;
}

std::size_t TenantRegistry::live_count() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return tenants_.size();
}

double TenantRegistry::share_fraction(const TenantHandle& handle) const {
  if (handle == nullptr) return 0.0;
  std::shared_lock<std::shared_mutex> lock(mutex_);
  double total = 0.0;
  bool live = false;
  for (const TenantHandle& tenant : tenants_) {
    total += tenant->quota().share_weight;
    live |= tenant->id() == handle->id();
  }
  if (!live || total <= 0.0) return 0.0;
  return handle->quota().share_weight / total;
}

}  // namespace hetmem::tenant
