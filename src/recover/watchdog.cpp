#include "hetmem/recover/watchdog.hpp"

namespace hetmem::recover {

Watchdog::Watchdog(fault::FaultInjector* injector, WatchdogOptions options)
    : injector_(injector), options_(options) {}

WatchdogVerdict Watchdog::observe_epoch(std::uint64_t epoch_index,
                                        double duration_ns,
                                        const runtime::EngineStats& engine,
                                        std::uint64_t evac_failed,
                                        std::uint64_t evac_moved) {
  (void)epoch_index;
  ++stats_.epochs_observed;
  WatchdogVerdict verdict;

  // Deadline: measured (simulated duration) or injected. The injector is
  // consulted exactly once per observed epoch so its per-site stream stays
  // aligned across crash+restore.
  const bool injected_overrun =
      injector_ != nullptr &&
      injector_->should_fail(fault::site::kRuntimeEpochOverrun);
  if (injected_overrun || (options_.epoch_deadline_ns > 0.0 &&
                           duration_ns > options_.epoch_deadline_ns)) {
    verdict.epoch_overrun = true;
    ++stats_.overruns;
  }

  // Migration stall: failures grew, progress (accepted + evicted) did not.
  const std::uint64_t failed_delta = engine.failed - prev_engine_.failed;
  const std::uint64_t progress_delta =
      (engine.accepted + engine.evicted) -
      (prev_engine_.accepted + prev_engine_.evicted);
  verdict.migration_active = failed_delta > 0 || progress_delta > 0;
  if (failed_delta > 0 && progress_delta == 0) {
    verdict.migration_failing = true;
    ++migration_stall_streak_;
    if (migration_stall_streak_ >= options_.stall_epochs_to_trip) {
      verdict.migration_stalled = true;
      ++stats_.migration_stall_trips;
    }
  } else {
    migration_stall_streak_ = 0;
  }
  prev_engine_ = engine;

  // Evacuation stall: same delta signature on the evacuator's counters.
  const std::uint64_t evac_failed_delta = evac_failed - prev_evac_failed_;
  const std::uint64_t evac_moved_delta = evac_moved - prev_evac_moved_;
  if (evac_failed_delta > 0 && evac_moved_delta == 0) {
    verdict.evacuation_failing = true;
    ++evacuation_stall_streak_;
    if (evacuation_stall_streak_ >= options_.stall_epochs_to_trip) {
      verdict.evacuation_stalled = true;
      ++stats_.evacuation_stall_trips;
    }
  } else {
    evacuation_stall_streak_ = 0;
  }
  prev_evac_failed_ = evac_failed;
  prev_evac_moved_ = evac_moved;

  return verdict;
}

Watchdog::State Watchdog::export_state() const {
  State out;
  out.prev_engine = prev_engine_;
  out.prev_evac_failed = prev_evac_failed_;
  out.prev_evac_moved = prev_evac_moved_;
  out.migration_stall_streak = migration_stall_streak_;
  out.evacuation_stall_streak = evacuation_stall_streak_;
  out.stats = stats_;
  return out;
}

void Watchdog::restore_state(const State& state) {
  prev_engine_ = state.prev_engine;
  prev_evac_failed_ = state.prev_evac_failed;
  prev_evac_moved_ = state.prev_evac_moved;
  migration_stall_streak_ = state.migration_stall_streak;
  evacuation_stall_streak_ = state.evacuation_stall_streak;
  stats_ = state.stats;
}

}  // namespace hetmem::recover
