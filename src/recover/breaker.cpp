#include "hetmem/recover/breaker.hpp"

namespace hetmem::recover {

CircuitBreaker::CircuitBreaker(std::string name, BreakerOptions options)
    : name_(std::move(name)), options_(options), backoff_(options.backoff) {}

void CircuitBreaker::transition(std::uint64_t epoch, BreakerState to,
                                std::string reason) {
  if (state_ == to) return;
  transitions_.push_back(
      BreakerTransition{epoch, state_, to, std::move(reason)});
  state_ = to;
}

void CircuitBreaker::trip(std::uint64_t epoch, std::string reason) {
  // The cooldown rides the shared jitter engine; delays are epochs here.
  // Consecutive reopens grow the window (the backoff only resets on a clean
  // reclose), so a persistently wedged path is probed ever less eagerly.
  const std::uint64_t cooldown =
      backoff_.next_delay_ms(options_.cooldown_epochs);
  reopen_at_epoch_ = epoch + cooldown;
  ++stats_.opens;
  consecutive_failures_ = 0;
  consecutive_successes_ = 0;
  transition(epoch, BreakerState::kOpen,
             std::move(reason) + "; probing at epoch " +
                 std::to_string(reopen_at_epoch_));
}

bool CircuitBreaker::allow(std::uint64_t epoch_index) {
  switch (state_) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kHalfOpen:
      ++stats_.probes;
      return true;
    case BreakerState::kOpen:
      if (epoch_index < reopen_at_epoch_) {
        ++stats_.skipped;
        return false;
      }
      transition(epoch_index, BreakerState::kHalfOpen, "cooldown elapsed");
      ++stats_.probes;
      return true;
  }
  return true;
}

void CircuitBreaker::on_success(std::uint64_t epoch_index) {
  switch (state_) {
    case BreakerState::kClosed:
      consecutive_failures_ = 0;
      return;
    case BreakerState::kHalfOpen:
      ++consecutive_successes_;
      if (consecutive_successes_ >= options_.successes_to_close) {
        consecutive_successes_ = 0;
        ++stats_.recloses;
        backoff_.reset();  // a clean reclose starts a fresh cooldown window
        transition(epoch_index, BreakerState::kClosed,
                   std::to_string(options_.successes_to_close) +
                       " clean probe(s)");
      }
      return;
    case BreakerState::kOpen:
      return;  // nothing ran; no evidence either way
  }
}

void CircuitBreaker::on_failure(std::uint64_t epoch_index) {
  switch (state_) {
    case BreakerState::kClosed:
      ++consecutive_failures_;
      if (consecutive_failures_ >= options_.failures_to_open) {
        trip(epoch_index, std::to_string(options_.failures_to_open) +
                              " consecutive failure(s)");
      }
      return;
    case BreakerState::kHalfOpen:
      trip(epoch_index, "probe failed");
      return;
    case BreakerState::kOpen:
      return;
  }
}

std::string CircuitBreaker::render_log() const {
  std::string out;
  for (const BreakerTransition& t : transitions_) {
    out += "epoch " + std::to_string(t.epoch) + " " + name_ + " " +
           breaker_state_name(t.from) + " -> " + breaker_state_name(t.to) +
           " — " + t.reason + "\n";
  }
  return out;
}

CircuitBreaker::State CircuitBreaker::export_state() const {
  State out;
  out.state = state_;
  out.consecutive_failures = consecutive_failures_;
  out.consecutive_successes = consecutive_successes_;
  out.reopen_at_epoch = reopen_at_epoch_;
  out.stats = stats_;
  out.backoff = backoff_.export_state();
  return out;
}

void CircuitBreaker::restore_state(const State& state) {
  state_ = state.state;
  consecutive_failures_ = state.consecutive_failures;
  consecutive_successes_ = state.consecutive_successes;
  reopen_at_epoch_ = state.reopen_at_epoch;
  stats_ = state.stats;
  backoff_.restore_state(state.backoff);
}

}  // namespace hetmem::recover
