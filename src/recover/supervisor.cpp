#include "hetmem/recover/supervisor.hpp"

namespace hetmem::recover {

namespace {
// Distinct deterministic jitter streams for the two breakers, derived from
// the shared options seed so two supervisors with the same options draw the
// same cooldown schedules.
BreakerOptions derive(BreakerOptions options, std::uint64_t salt) {
  options.backoff.seed ^= 0x9e3779b97f4a7c15ull * salt;
  return options;
}
}  // namespace

Supervisor::Supervisor(fault::FaultInjector* injector,
                       SupervisorOptions options)
    : injector_(injector),
      options_(options),
      migration_("migration", derive(options.migration_breaker, 1)),
      evacuation_("evacuation", derive(options.evacuation_breaker, 2)),
      watchdog_(injector, options.watchdog) {}

void Supervisor::attach(runtime::RuntimePolicy& policy) {
  policy.set_migration_gate(
      [this](std::uint64_t epoch_index) { return migration_.allow(epoch_index); });
  policy.add_epoch_hook(
      [this, &policy](std::uint64_t epoch_index, unsigned threads) {
        return on_epoch(policy, epoch_index, threads);
      });
}

double Supervisor::on_epoch(runtime::RuntimePolicy& policy,
                            std::uint64_t epoch_index, unsigned threads) {
  (void)threads;
  std::uint64_t evac_failed = 0;
  std::uint64_t evac_moved = 0;
  if (evac_stats_) {
    const auto [failed, moved] = evac_stats_();
    evac_failed = failed;
    evac_moved = moved;
  }
  const WatchdogVerdict verdict = watchdog_.observe_epoch(
      epoch_index, /*duration_ns=*/0.0, policy.engine().stats(), evac_failed,
      evac_moved);

  // Feedback for the migration breaker. Only epochs with evidence count:
  // while the breaker is open the engine never ran, so neither success nor
  // failure is recorded and the half-open probe decides on real outcomes.
  if (migration_.state() != BreakerState::kOpen) {
    if (verdict.migration_failing || verdict.epoch_overrun) {
      migration_.on_failure(epoch_index);
    } else {
      migration_.on_success(epoch_index);
    }
  }

  // The evacuation breaker is observational: record verdicts, gate nothing.
  if (evac_stats_) {
    if (verdict.evacuation_failing) {
      evacuation_.on_failure(epoch_index);
    } else {
      evacuation_.allow(epoch_index);  // advances open -> half-open probes
      evacuation_.on_success(epoch_index);
    }
  }
  return 0.0;  // supervision charges no simulated cost
}

const CircuitBreaker* Supervisor::breaker(const std::string& name) const {
  if (name == migration_.name()) return &migration_;
  if (name == evacuation_.name()) return &evacuation_;
  return nullptr;
}

CircuitBreaker* Supervisor::breaker(const std::string& name) {
  if (name == migration_.name()) return &migration_;
  if (name == evacuation_.name()) return &evacuation_;
  return nullptr;
}

std::string Supervisor::render_log() const {
  return migration_.render_log() + evacuation_.render_log();
}

}  // namespace hetmem::recover
