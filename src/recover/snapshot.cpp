#include "hetmem/recover/snapshot.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>

namespace hetmem::recover {

using support::Errc;
using support::make_error;
using support::Result;
using support::Status;

namespace {

constexpr const char* kHeader = "hetmem-snap/1";

// Hexfloat ("%a") is the one printf format that round-trips every finite
// double exactly through strtod — the same lossless-serialization property
// the trace replay gate rests on (src/trace/trace.cpp).
void append_double(std::string& out, double value) {
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), "%a", value);
  out += buffer;
}

void append_u64(std::string& out, std::uint64_t value) {
  out += std::to_string(value);
}

/// FNV-1a 64-bit over the payload bytes — the corruption tripwire a
/// bit-flipped snapshot fails before any field is applied.
std::uint64_t fnv1a(std::string_view text) {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

struct Cursor {
  const char* pos;
  const char* end;
  std::size_t line = 1;

  [[nodiscard]] bool done() const { return pos >= end; }

  /// Consumes one line, returning it without the trailing newline.
  std::string_view next_line() {
    const char* start = pos;
    while (pos < end && *pos != '\n') ++pos;
    std::string_view result(start, static_cast<std::size_t>(pos - start));
    if (pos < end) ++pos;  // swallow '\n'
    ++line;
    return result;
  }
};

support::Error parse_error(const Cursor& cursor, const std::string& what) {
  return make_error(Errc::kInvalidArgument,
                    "snapshot parse error at line " +
                        std::to_string(cursor.line - 1) + ": " + what);
}

/// Splits `text` at the first space; returns the head, advances `text`.
std::string_view take_word(std::string_view& text) {
  const std::size_t space = text.find(' ');
  std::string_view word = text.substr(0, space);
  text.remove_prefix(space == std::string_view::npos ? text.size() : space + 1);
  return word;
}

bool parse_u64(std::string_view word, std::uint64_t& out) {
  if (word.empty()) return false;
  char* parse_end = nullptr;
  const std::string owned(word);
  out = std::strtoull(owned.c_str(), &parse_end, 10);
  return parse_end == owned.c_str() + owned.size();
}

bool parse_f64(std::string_view word, double& out) {
  if (word.empty()) return false;
  char* parse_end = nullptr;
  const std::string owned(word);
  out = std::strtod(owned.c_str(), &parse_end);
  return parse_end == owned.c_str() + owned.size();
}

/// take_word + parse_u64 in one step; false on any failure.
bool next_u64(std::string_view& text, std::uint64_t& out) {
  return parse_u64(take_word(text), out);
}

bool next_f64(std::string_view& text, double& out) {
  return parse_f64(take_word(text), out);
}

void append_rng(std::string& out, const std::array<std::uint64_t, 4>& rng) {
  for (const std::uint64_t word : rng) {
    append_u64(out, word);
    out += ' ';
  }
}

bool next_rng(std::string_view& text, std::array<std::uint64_t, 4>& rng) {
  for (std::uint64_t& word : rng) {
    if (!next_u64(text, word)) return false;
  }
  return true;
}

void append_breaker(std::string& out, unsigned which,
                    const CircuitBreaker::State& state) {
  out += "breaker ";
  append_u64(out, which);
  out += ' ';
  append_u64(out, static_cast<std::uint64_t>(state.state));
  out += ' ';
  append_u64(out, state.consecutive_failures);
  out += ' ';
  append_u64(out, state.consecutive_successes);
  out += ' ';
  append_u64(out, state.reopen_at_epoch);
  out += ' ';
  append_u64(out, state.stats.opens);
  out += ' ';
  append_u64(out, state.stats.recloses);
  out += ' ';
  append_u64(out, state.stats.probes);
  out += ' ';
  append_u64(out, state.stats.skipped);
  out += ' ';
  append_rng(out, state.backoff.rng);
  append_u64(out, state.backoff.attempt);
  out += '\n';
}

}  // namespace

Snapshot capture(const CaptureSources& sources) {
  Snapshot snap;
  snap.machine_preset = sources.machine_preset;
  snap.probed = sources.probed;

  const sim::SimMachine& machine = *sources.machine;
  const std::size_t nodes = machine.topology().numa_nodes().size();
  snap.node_count = nodes;
  snap.power_cap_watts = machine.power_cap_watts();
  snap.node_telemetry.reserve(nodes);
  snap.node_power.reserve(nodes);
  for (unsigned n = 0; n < nodes; ++n) {
    snap.node_telemetry.push_back(machine.node_telemetry(n));
    snap.node_power.push_back(machine.node_power_state(n));
  }

  snap.buffers_total = machine.total_buffer_count();
  snap.buffers.reserve(snap.buffers_total);
  const alloc::HeterogeneousAllocator& allocator = *sources.allocator;
  for (std::uint32_t i = 0; i < snap.buffers_total; ++i) {
    const sim::BufferId id{i};
    const sim::BufferInfo info = machine.info(id);
    Snapshot::BufferRecord record;
    record.index = i;
    record.node = info.node;
    record.declared_bytes = info.declared_bytes;
    record.backing_bytes = info.backing_bytes;
    record.freed = info.freed;
    record.label = info.label;
    if (!info.freed) {
      const tenant::TenantHandle owner = allocator.tenant_of(id);
      if (owner != nullptr) record.tenant_id = owner->id();
    }
    snap.buffers.push_back(std::move(record));
  }

  if (sources.tenants != nullptr) {
    for (const tenant::TenantHandle& handle : sources.tenants->tenants()) {
      Snapshot::TenantRecord record;
      record.id = handle->id();
      record.priority = handle->priority();
      record.quota = handle->quota();
      record.stats = handle->stats();
      record.live = handle->live();
      record.name = handle->name();
      snap.tenants.push_back(std::move(record));
    }
    // Deregistered tenants vanish from the registry but their outstanding
    // charges survive through the allocator's handles; synthesize records
    // for them so restore can rebuild those charges (marked dead).
    for (const Snapshot::BufferRecord& buffer : snap.buffers) {
      if (buffer.freed || buffer.tenant_id == tenant::kNoTenant) continue;
      bool known = false;
      for (const Snapshot::TenantRecord& t : snap.tenants) {
        known = known || t.id == buffer.tenant_id;
      }
      if (known) continue;
      const tenant::TenantHandle dead =
          allocator.tenant_of(sim::BufferId{buffer.index});
      if (dead == nullptr) continue;
      Snapshot::TenantRecord record;
      record.id = dead->id();
      record.priority = dead->priority();
      record.quota = dead->quota();
      record.stats = dead->stats();
      record.live = false;
      record.name = dead->name();
      snap.tenants.push_back(std::move(record));
    }
    snap.tenants_next_id = sources.tenants->next_id();
  }

  snap.alloc_stats = allocator.stats();
  snap.reserved_bytes.reserve(nodes);
  for (unsigned n = 0; n < nodes; ++n) {
    snap.reserved_bytes.push_back(allocator.reserved_bytes(n));
  }

  if (sources.policy != nullptr) {
    snap.has_policy = true;
    snap.sampler = sources.policy->sampler().export_state();
    snap.classifier_states = sources.policy->classifier().states();
    snap.classifier_ema_total_bytes =
        sources.policy->classifier().ema_total_bytes();
    snap.engine_stats = sources.policy->engine().stats();
    snap.engine_max_epoch_bytes =
        sources.policy->engine().max_epoch_migrated_bytes();
    snap.decision_log = sources.policy->engine().render_decision_log();
  }

  if (sources.health != nullptr) {
    snap.has_health = true;
    snap.health_poll_count = sources.health->poll_count();
    snap.health_nodes.reserve(nodes);
    for (unsigned n = 0; n < nodes; ++n) {
      snap.health_nodes.push_back(sources.health->node_state(n));
    }
  }

  if (sources.governor != nullptr) {
    snap.has_governor = true;
    snap.governor_stats = sources.governor->stats();
    snap.governor_streaks = sources.governor->over_streaks();
  }

  if (sources.faults != nullptr) {
    snap.has_faults = true;
    snap.fault_seed = sources.faults->seed();
    snap.fault_sites = sources.faults->export_sites();
  }

  if (sources.supervisor != nullptr) {
    snap.has_supervisor = true;
    snap.migration_breaker =
        sources.supervisor->migration_breaker().export_state();
    snap.evacuation_breaker =
        sources.supervisor->evacuation_breaker().export_state();
    snap.watchdog = sources.supervisor->watchdog().export_state();
  }
  return snap;
}

std::string serialize(const Snapshot& snap) {
  std::string p;  // payload (checksummed)
  p += "preset ";
  append_u64(p, snap.probed ? 1 : 0);
  p += ' ';
  p += snap.machine_preset;
  p += '\n';

  p += "machine ";
  append_u64(p, snap.node_count);
  p += ' ';
  append_double(p, snap.power_cap_watts);
  p += '\n';
  for (std::size_t n = 0; n < snap.node_telemetry.size(); ++n) {
    const sim::NodeTelemetry& t = snap.node_telemetry[n];
    p += "node ";
    append_u64(p, n);
    p += ' ';
    append_u64(p, t.capacity_rejections);
    p += ' ';
    append_u64(p, t.offline_rejections);
    p += ' ';
    append_u64(p, t.transient_faults);
    p += ' ';
    append_u64(p, t.ecc_errors);
    p += ' ';
    append_u64(p, t.degraded_events);
    p += ' ';
    append_u64(p, t.thermal_throttle_events);
    p += ' ';
    append_u64(p, t.degraded ? 1 : 0);
    p += ' ';
    append_u64(p, t.online ? 1 : 0);
    p += '\n';
  }
  for (std::size_t n = 0; n < snap.node_power.size(); ++n) {
    p += "npower ";
    append_u64(p, n);
    p += ' ';
    append_double(p, snap.node_power[n].dynamic_watts_ema);
    p += ' ';
    append_u64(p, snap.node_power[n].seeded ? 1 : 0);
    p += '\n';
  }

  p += "buffers ";
  append_u64(p, snap.buffers_total);
  p += '\n';
  for (const Snapshot::BufferRecord& b : snap.buffers) {
    p += "buffer ";
    append_u64(p, b.index);
    p += ' ';
    append_u64(p, b.node);
    p += ' ';
    append_u64(p, b.declared_bytes);
    p += ' ';
    append_u64(p, b.backing_bytes);
    p += ' ';
    append_u64(p, b.freed ? 1 : 0);
    p += ' ';
    append_u64(p, b.tenant_id);
    p += ' ';
    p += b.label;  // last: labels may contain spaces
    p += '\n';
  }

  for (const Snapshot::TenantRecord& t : snap.tenants) {
    p += "tenant ";
    append_u64(p, t.id);
    p += ' ';
    append_u64(p, static_cast<std::uint64_t>(t.priority));
    p += ' ';
    append_double(p, t.quota.share_weight);
    p += ' ';
    append_u64(p, t.quota.total_cap_bytes);
    for (const std::uint64_t cap : t.quota.tier_cap_bytes) {
      p += ' ';
      append_u64(p, cap);
    }
    p += ' ';
    append_u64(p, t.stats.admitted);
    p += ' ';
    append_u64(p, t.stats.spilled);
    p += ' ';
    append_u64(p, t.stats.shed);
    p += ' ';
    append_u64(p, t.stats.quota_rejections);
    p += ' ';
    append_u64(p, t.live ? 1 : 0);
    p += ' ';
    p += t.name;  // last: names may contain spaces
    p += '\n';
  }
  if (snap.tenants_next_id > 1 || !snap.tenants.empty()) {
    p += "tnext ";
    append_u64(p, snap.tenants_next_id);
    p += '\n';
  }

  {
    const alloc::AllocatorStats& s = snap.alloc_stats;
    const std::uint64_t fields[] = {s.allocations,
                                    s.fallbacks,
                                    s.failures,
                                    s.frees,
                                    s.migrations,
                                    s.bytes_allocated,
                                    s.bytes_migrated,
                                    s.transient_retries,
                                    s.attribute_rescues,
                                    s.backpressure_rejections,
                                    s.backpressure_health,
                                    s.backpressure_quota,
                                    s.backpressure_shed,
                                    s.tenant_spills,
                                    s.retry_backoff_ms};
    p += "astats";
    for (const std::uint64_t field : fields) {
      p += ' ';
      append_u64(p, field);
    }
    p += '\n';
  }
  for (std::size_t n = 0; n < snap.reserved_bytes.size(); ++n) {
    if (snap.reserved_bytes[n] == 0) continue;
    p += "reserved ";
    append_u64(p, n);
    p += ' ';
    append_u64(p, snap.reserved_bytes[n]);
    p += '\n';
  }

  if (snap.has_policy) {
    p += "sampler ";
    append_rng(p, snap.sampler.rng);
    append_double(p, snap.sampler.snapshot_clock_ns);
    p += ' ';
    append_u64(p, snap.sampler.phases_since_epoch);
    p += ' ';
    append_u64(p, snap.sampler.epochs);
    p += ' ';
    append_double(p, snap.sampler.effective_period);
    p += ' ';
    append_double(p, snap.sampler.last_cost_ns);
    p += '\n';
    for (std::size_t i = 0; i < snap.sampler.period_log.size(); ++i) {
      p += "period ";
      append_u64(p, i);
      p += ' ';
      append_double(p, snap.sampler.period_log[i]);
      p += '\n';
    }

    p += "classifier ";
    append_double(p, snap.classifier_ema_total_bytes);
    p += ' ';
    append_u64(p, snap.classifier_states.size());
    p += '\n';
    for (std::size_t i = 0; i < snap.classifier_states.size(); ++i) {
      const runtime::OnlineClassifier::BufferState& s =
          snap.classifier_states[i];
      p += "cstate ";
      append_u64(p, i);
      p += ' ';
      append_u64(p, s.tracked ? 1 : 0);
      p += ' ';
      append_double(p, s.ema.reads);
      p += ' ';
      append_double(p, s.ema.writes);
      p += ' ';
      append_double(p, s.ema.llc_misses);
      p += ' ';
      append_double(p, s.ema.memory_bytes);
      p += ' ';
      append_double(p, s.ema.random_accesses);
      p += ' ';
      append_double(p, s.ema.random_misses);
      p += ' ';
      append_u64(p, static_cast<std::uint64_t>(s.committed));
      p += ' ';
      append_u64(p, static_cast<std::uint64_t>(s.pending));
      p += ' ';
      append_u64(p, s.disagreement_streak);
      p += '\n';
    }

    p += "engine ";
    append_u64(p, snap.engine_stats.considered);
    p += ' ';
    append_u64(p, snap.engine_stats.accepted);
    p += ' ';
    append_u64(p, snap.engine_stats.evicted);
    p += ' ';
    append_u64(p, snap.engine_stats.rejected);
    p += ' ';
    append_u64(p, snap.engine_stats.failed);
    p += ' ';
    append_u64(p, snap.engine_stats.migrated_bytes);
    p += ' ';
    append_double(p, snap.engine_stats.migration_cost_ns);
    p += ' ';
    append_u64(p, snap.engine_max_epoch_bytes);
    p += '\n';
    // The rendered narrative, one "dlog " line per log line (log lines are
    // never empty and always newline-terminated).
    std::string_view log = snap.decision_log;
    while (!log.empty()) {
      const std::size_t nl = log.find('\n');
      p += "dlog ";
      p += log.substr(0, nl);
      p += '\n';
      log.remove_prefix(nl == std::string_view::npos ? log.size() : nl + 1);
    }
  }

  if (snap.has_health) {
    p += "health ";
    append_u64(p, snap.health_poll_count);
    p += ' ';
    append_u64(p, snap.health_nodes.size());
    p += '\n';
    for (std::size_t n = 0; n < snap.health_nodes.size(); ++n) {
      const health::HealthMonitor::NodeState& s = snap.health_nodes[n];
      p += "hnode ";
      append_u64(p, n);
      p += ' ';
      append_u64(p, static_cast<std::uint64_t>(s.state));
      p += ' ';
      append_u64(p, s.last_errors);
      p += ' ';
      append_u64(p, s.faulty_streak);
      p += ' ';
      append_u64(p, s.clean_streak);
      p += '\n';
    }
  }

  if (snap.has_governor) {
    p += "governor ";
    append_u64(p, snap.governor_stats.epochs);
    p += ' ';
    append_u64(p, snap.governor_stats.over_cap_epochs);
    p += ' ';
    append_u64(p, snap.governor_stats.throttle_events);
    p += ' ';
    append_u64(p, snap.governor_stats.drained_buffers);
    p += ' ';
    append_u64(p, snap.governor_stats.drained_bytes);
    p += ' ';
    append_double(p, snap.governor_stats.drain_cost_ns);
    p += '\n';
    for (std::size_t n = 0; n < snap.governor_streaks.size(); ++n) {
      p += "gstreak ";
      append_u64(p, n);
      p += ' ';
      append_u64(p, snap.governor_streaks[n]);
      p += '\n';
    }
  }

  if (snap.has_faults) {
    p += "faults ";
    append_u64(p, snap.fault_seed);
    p += ' ';
    append_u64(p, snap.fault_sites.size());
    p += '\n';
    for (const fault::FaultInjector::SiteState& s : snap.fault_sites) {
      p += "fsite ";
      append_double(p, s.spec.probability);
      p += ' ';
      append_u64(p, s.spec.max_count);
      p += ' ';
      append_u64(p, s.spec.burst);
      p += ' ';
      append_double(p, s.spec.noise_sigma);
      p += ' ';
      append_rng(p, s.rng);
      append_u64(p, s.consultations);
      p += ' ';
      append_u64(p, s.injected);
      p += ' ';
      append_u64(p, s.burst_remaining);
      p += ' ';
      append_u64(p, s.armed ? 1 : 0);
      p += ' ';
      p += s.name;  // last: site names are open-ended strings
      p += '\n';
    }
  }

  if (snap.has_supervisor) {
    append_breaker(p, 0, snap.migration_breaker);
    append_breaker(p, 1, snap.evacuation_breaker);
    p += "watchdog ";
    append_u64(p, snap.watchdog.prev_engine.considered);
    p += ' ';
    append_u64(p, snap.watchdog.prev_engine.accepted);
    p += ' ';
    append_u64(p, snap.watchdog.prev_engine.evicted);
    p += ' ';
    append_u64(p, snap.watchdog.prev_engine.rejected);
    p += ' ';
    append_u64(p, snap.watchdog.prev_engine.failed);
    p += ' ';
    append_u64(p, snap.watchdog.prev_engine.migrated_bytes);
    p += ' ';
    append_double(p, snap.watchdog.prev_engine.migration_cost_ns);
    p += ' ';
    append_u64(p, snap.watchdog.prev_evac_failed);
    p += ' ';
    append_u64(p, snap.watchdog.prev_evac_moved);
    p += ' ';
    append_u64(p, snap.watchdog.migration_stall_streak);
    p += ' ';
    append_u64(p, snap.watchdog.evacuation_stall_streak);
    p += ' ';
    append_u64(p, snap.watchdog.stats.epochs_observed);
    p += ' ';
    append_u64(p, snap.watchdog.stats.overruns);
    p += ' ';
    append_u64(p, snap.watchdog.stats.migration_stall_trips);
    p += ' ';
    append_u64(p, snap.watchdog.stats.evacuation_stall_trips);
    p += '\n';
  }

  std::string out = kHeader;
  out += '\n';
  out += p;
  char checksum[32];
  std::snprintf(checksum, sizeof(checksum), "%016llx",
                static_cast<unsigned long long>(fnv1a(p)));
  out += "checksum ";
  out += checksum;
  out += "\nend\n";
  return out;
}

namespace {

bool parse_breaker_line(std::string_view rest, std::uint64_t& which,
                        CircuitBreaker::State& out) {
  std::uint64_t state = 0;
  std::uint64_t cfail = 0;
  std::uint64_t csucc = 0;
  std::uint64_t attempt = 0;
  const bool ok = next_u64(rest, which) && next_u64(rest, state) &&
                  next_u64(rest, cfail) && next_u64(rest, csucc) &&
                  next_u64(rest, out.reopen_at_epoch) &&
                  next_u64(rest, out.stats.opens) &&
                  next_u64(rest, out.stats.recloses) &&
                  next_u64(rest, out.stats.probes) &&
                  next_u64(rest, out.stats.skipped) &&
                  next_rng(rest, out.backoff.rng) && next_u64(rest, attempt);
  if (!ok || state > 2 || which > 1) return false;
  out.state = static_cast<BreakerState>(state);
  out.consecutive_failures = static_cast<unsigned>(cfail);
  out.consecutive_successes = static_cast<unsigned>(csucc);
  out.backoff.attempt = static_cast<unsigned>(attempt);
  return true;
}

}  // namespace

Result<Snapshot> parse(std::string_view text) {
  Cursor cursor{text.data(), text.data() + text.size()};
  if (cursor.done()) {
    return parse_error(cursor, "empty snapshot");
  }
  const char* payload_start = nullptr;
  {
    const std::string_view header = cursor.next_line();
    if (header != kHeader) {
      return parse_error(cursor, "unsupported snapshot header '" +
                                     std::string(header) + "' (expected " +
                                     kHeader + ")");
    }
    payload_start = cursor.pos;
  }

  Snapshot snap;
  bool saw_machine = false;
  bool saw_checksum = false;
  bool saw_end = false;
  std::uint64_t declared_checksum = 0;
  const char* payload_end = nullptr;

  while (!cursor.done()) {
    const char* line_start = cursor.pos;
    std::string_view rest = cursor.next_line();
    if (rest.empty()) {
      return parse_error(cursor, "empty line");
    }
    const std::string_view tag = take_word(rest);

    if (tag == "checksum") {
      payload_end = line_start;
      char* parse_end = nullptr;
      const std::string owned(rest);
      declared_checksum = std::strtoull(owned.c_str(), &parse_end, 16);
      if (parse_end != owned.c_str() + owned.size() || owned.empty()) {
        return parse_error(cursor, "malformed checksum");
      }
      saw_checksum = true;
      continue;
    }
    if (tag == "end") {
      if (!saw_checksum) {
        return parse_error(cursor, "'end' before checksum");
      }
      saw_end = true;
      break;
    }
    if (saw_checksum) {
      return parse_error(cursor, "record after checksum");
    }

    if (tag == "preset") {
      std::uint64_t probed = 0;
      if (!next_u64(rest, probed) || probed > 1 || rest.empty()) {
        return parse_error(cursor, "malformed preset record");
      }
      snap.probed = probed == 1;
      snap.machine_preset = std::string(rest);
    } else if (tag == "machine") {
      if (!next_u64(rest, snap.node_count) ||
          !next_f64(rest, snap.power_cap_watts)) {
        return parse_error(cursor, "malformed machine record");
      }
      saw_machine = true;
    } else if (tag == "node") {
      std::uint64_t index = 0;
      sim::NodeTelemetry t;
      std::uint64_t degraded = 0;
      std::uint64_t online = 0;
      if (!next_u64(rest, index) || !next_u64(rest, t.capacity_rejections) ||
          !next_u64(rest, t.offline_rejections) ||
          !next_u64(rest, t.transient_faults) ||
          !next_u64(rest, t.ecc_errors) ||
          !next_u64(rest, t.degraded_events) ||
          !next_u64(rest, t.thermal_throttle_events) ||
          !next_u64(rest, degraded) || !next_u64(rest, online) ||
          index != snap.node_telemetry.size()) {
        return parse_error(cursor, "malformed node record");
      }
      t.degraded = degraded == 1;
      t.online = online == 1;
      snap.node_telemetry.push_back(t);
    } else if (tag == "npower") {
      std::uint64_t index = 0;
      sim::SimMachine::NodePowerState s;
      std::uint64_t seeded = 0;
      if (!next_u64(rest, index) || !next_f64(rest, s.dynamic_watts_ema) ||
          !next_u64(rest, seeded) || index != snap.node_power.size()) {
        return parse_error(cursor, "malformed npower record");
      }
      s.seeded = seeded == 1;
      snap.node_power.push_back(s);
    } else if (tag == "buffers") {
      if (!next_u64(rest, snap.buffers_total)) {
        return parse_error(cursor, "malformed buffers record");
      }
    } else if (tag == "buffer") {
      Snapshot::BufferRecord b;
      std::uint64_t index = 0;
      std::uint64_t node = 0;
      std::uint64_t freed = 0;
      std::uint64_t tenant_id = 0;
      if (!next_u64(rest, index) || !next_u64(rest, node) ||
          !next_u64(rest, b.declared_bytes) ||
          !next_u64(rest, b.backing_bytes) || !next_u64(rest, freed) ||
          !next_u64(rest, tenant_id) || index != snap.buffers.size()) {
        return parse_error(cursor, "malformed buffer record");
      }
      b.index = static_cast<std::uint32_t>(index);
      b.node = static_cast<unsigned>(node);
      b.freed = freed == 1;
      b.tenant_id = static_cast<std::uint32_t>(tenant_id);
      b.label = std::string(rest);
      snap.buffers.push_back(std::move(b));
    } else if (tag == "tenant") {
      Snapshot::TenantRecord t;
      std::uint64_t id = 0;
      std::uint64_t priority = 0;
      std::uint64_t live = 0;
      bool ok = next_u64(rest, id) && next_u64(rest, priority) &&
                next_f64(rest, t.quota.share_weight) &&
                next_u64(rest, t.quota.total_cap_bytes);
      for (std::uint64_t& cap : t.quota.tier_cap_bytes) {
        ok = ok && next_u64(rest, cap);
      }
      ok = ok && next_u64(rest, t.stats.admitted) &&
           next_u64(rest, t.stats.spilled) && next_u64(rest, t.stats.shed) &&
           next_u64(rest, t.stats.quota_rejections) && next_u64(rest, live);
      if (!ok || priority > 2 || rest.empty()) {
        return parse_error(cursor, "malformed tenant record");
      }
      t.id = static_cast<std::uint32_t>(id);
      t.priority = static_cast<tenant::Priority>(priority);
      t.live = live == 1;
      t.name = std::string(rest);
      snap.tenants.push_back(std::move(t));
    } else if (tag == "tnext") {
      std::uint64_t next = 0;
      if (!next_u64(rest, next) || next == 0) {
        return parse_error(cursor, "malformed tnext record");
      }
      snap.tenants_next_id = static_cast<tenant::TenantId>(next);
    } else if (tag == "astats") {
      alloc::AllocatorStats& s = snap.alloc_stats;
      std::uint64_t* fields[] = {&s.allocations,
                                 &s.fallbacks,
                                 &s.failures,
                                 &s.frees,
                                 &s.migrations,
                                 &s.bytes_allocated,
                                 &s.bytes_migrated,
                                 &s.transient_retries,
                                 &s.attribute_rescues,
                                 &s.backpressure_rejections,
                                 &s.backpressure_health,
                                 &s.backpressure_quota,
                                 &s.backpressure_shed,
                                 &s.tenant_spills,
                                 &s.retry_backoff_ms};
      for (std::uint64_t* field : fields) {
        if (!next_u64(rest, *field)) {
          return parse_error(cursor, "malformed astats record");
        }
      }
    } else if (tag == "reserved") {
      std::uint64_t node = 0;
      std::uint64_t bytes = 0;
      if (!next_u64(rest, node) || !next_u64(rest, bytes)) {
        return parse_error(cursor, "malformed reserved record");
      }
      if (node >= snap.reserved_bytes.size()) {
        snap.reserved_bytes.resize(node + 1, 0);
      }
      snap.reserved_bytes[node] = bytes;
    } else if (tag == "sampler") {
      snap.has_policy = true;
      std::uint64_t phases = 0;
      if (!next_rng(rest, snap.sampler.rng) ||
          !next_f64(rest, snap.sampler.snapshot_clock_ns) ||
          !next_u64(rest, phases) || !next_u64(rest, snap.sampler.epochs) ||
          !next_f64(rest, snap.sampler.effective_period) ||
          !next_f64(rest, snap.sampler.last_cost_ns)) {
        return parse_error(cursor, "malformed sampler record");
      }
      snap.sampler.phases_since_epoch = static_cast<unsigned>(phases);
    } else if (tag == "period") {
      std::uint64_t index = 0;
      double period = 0.0;
      if (!next_u64(rest, index) || !next_f64(rest, period) ||
          index != snap.sampler.period_log.size()) {
        return parse_error(cursor, "malformed period record");
      }
      snap.sampler.period_log.push_back(period);
    } else if (tag == "classifier") {
      std::uint64_t count = 0;
      if (!next_f64(rest, snap.classifier_ema_total_bytes) ||
          !next_u64(rest, count)) {
        return parse_error(cursor, "malformed classifier record");
      }
      snap.classifier_states.reserve(count);
    } else if (tag == "cstate") {
      runtime::OnlineClassifier::BufferState s;
      std::uint64_t index = 0;
      std::uint64_t tracked = 0;
      std::uint64_t committed = 0;
      std::uint64_t pending = 0;
      std::uint64_t streak = 0;
      if (!next_u64(rest, index) || !next_u64(rest, tracked) ||
          !next_f64(rest, s.ema.reads) || !next_f64(rest, s.ema.writes) ||
          !next_f64(rest, s.ema.llc_misses) ||
          !next_f64(rest, s.ema.memory_bytes) ||
          !next_f64(rest, s.ema.random_accesses) ||
          !next_f64(rest, s.ema.random_misses) ||
          !next_u64(rest, committed) || !next_u64(rest, pending) ||
          !next_u64(rest, streak) || committed > 2 || pending > 2 ||
          index != snap.classifier_states.size()) {
        return parse_error(cursor, "malformed cstate record");
      }
      s.tracked = tracked == 1;
      s.committed = static_cast<prof::Sensitivity>(committed);
      s.pending = static_cast<prof::Sensitivity>(pending);
      s.disagreement_streak = static_cast<unsigned>(streak);
      snap.classifier_states.push_back(s);
    } else if (tag == "engine") {
      runtime::EngineStats& s = snap.engine_stats;
      if (!next_u64(rest, s.considered) || !next_u64(rest, s.accepted) ||
          !next_u64(rest, s.evicted) || !next_u64(rest, s.rejected) ||
          !next_u64(rest, s.failed) || !next_u64(rest, s.migrated_bytes) ||
          !next_f64(rest, s.migration_cost_ns) ||
          !next_u64(rest, snap.engine_max_epoch_bytes)) {
        return parse_error(cursor, "malformed engine record");
      }
    } else if (tag == "dlog") {
      snap.decision_log += rest;
      snap.decision_log += '\n';
    } else if (tag == "health") {
      snap.has_health = true;
      std::uint64_t count = 0;
      if (!next_u64(rest, snap.health_poll_count) || !next_u64(rest, count)) {
        return parse_error(cursor, "malformed health record");
      }
      snap.health_nodes.reserve(count);
    } else if (tag == "hnode") {
      health::HealthMonitor::NodeState s;
      std::uint64_t index = 0;
      std::uint64_t state = 0;
      std::uint64_t faulty = 0;
      std::uint64_t clean = 0;
      if (!next_u64(rest, index) || !next_u64(rest, state) ||
          !next_u64(rest, s.last_errors) || !next_u64(rest, faulty) ||
          !next_u64(rest, clean) || state > 3 ||
          index != snap.health_nodes.size()) {
        return parse_error(cursor, "malformed hnode record");
      }
      s.state = static_cast<health::HealthState>(state);
      s.faulty_streak = static_cast<unsigned>(faulty);
      s.clean_streak = static_cast<unsigned>(clean);
      snap.health_nodes.push_back(s);
    } else if (tag == "governor") {
      snap.has_governor = true;
      power::GovernorStats& s = snap.governor_stats;
      if (!next_u64(rest, s.epochs) || !next_u64(rest, s.over_cap_epochs) ||
          !next_u64(rest, s.throttle_events) ||
          !next_u64(rest, s.drained_buffers) ||
          !next_u64(rest, s.drained_bytes) ||
          !next_f64(rest, s.drain_cost_ns)) {
        return parse_error(cursor, "malformed governor record");
      }
    } else if (tag == "gstreak") {
      std::uint64_t index = 0;
      std::uint64_t streak = 0;
      if (!next_u64(rest, index) || !next_u64(rest, streak) ||
          index != snap.governor_streaks.size()) {
        return parse_error(cursor, "malformed gstreak record");
      }
      snap.governor_streaks.push_back(static_cast<unsigned>(streak));
    } else if (tag == "faults") {
      snap.has_faults = true;
      std::uint64_t count = 0;
      if (!next_u64(rest, snap.fault_seed) || !next_u64(rest, count)) {
        return parse_error(cursor, "malformed faults record");
      }
      snap.fault_sites.reserve(count);
    } else if (tag == "fsite") {
      fault::FaultInjector::SiteState s;
      std::uint64_t burst = 0;
      std::uint64_t burst_remaining = 0;
      std::uint64_t armed = 0;
      if (!next_f64(rest, s.spec.probability) ||
          !next_u64(rest, s.spec.max_count) || !next_u64(rest, burst) ||
          !next_f64(rest, s.spec.noise_sigma) || !next_rng(rest, s.rng) ||
          !next_u64(rest, s.consultations) || !next_u64(rest, s.injected) ||
          !next_u64(rest, burst_remaining) || !next_u64(rest, armed) ||
          rest.empty()) {
        return parse_error(cursor, "malformed fsite record");
      }
      s.spec.burst = static_cast<unsigned>(burst);
      s.burst_remaining = static_cast<unsigned>(burst_remaining);
      s.armed = armed == 1;
      s.name = std::string(rest);
      snap.fault_sites.push_back(std::move(s));
    } else if (tag == "breaker") {
      snap.has_supervisor = true;
      std::uint64_t which = 0;
      CircuitBreaker::State s;
      if (!parse_breaker_line(rest, which, s)) {
        return parse_error(cursor, "malformed breaker record");
      }
      (which == 0 ? snap.migration_breaker : snap.evacuation_breaker) = s;
    } else if (tag == "watchdog") {
      snap.has_supervisor = true;
      Watchdog::State& w = snap.watchdog;
      std::uint64_t mstreak = 0;
      std::uint64_t estreak = 0;
      if (!next_u64(rest, w.prev_engine.considered) ||
          !next_u64(rest, w.prev_engine.accepted) ||
          !next_u64(rest, w.prev_engine.evicted) ||
          !next_u64(rest, w.prev_engine.rejected) ||
          !next_u64(rest, w.prev_engine.failed) ||
          !next_u64(rest, w.prev_engine.migrated_bytes) ||
          !next_f64(rest, w.prev_engine.migration_cost_ns) ||
          !next_u64(rest, w.prev_evac_failed) ||
          !next_u64(rest, w.prev_evac_moved) || !next_u64(rest, mstreak) ||
          !next_u64(rest, estreak) ||
          !next_u64(rest, w.stats.epochs_observed) ||
          !next_u64(rest, w.stats.overruns) ||
          !next_u64(rest, w.stats.migration_stall_trips) ||
          !next_u64(rest, w.stats.evacuation_stall_trips)) {
        return parse_error(cursor, "malformed watchdog record");
      }
      w.migration_stall_streak = static_cast<unsigned>(mstreak);
      w.evacuation_stall_streak = static_cast<unsigned>(estreak);
    } else {
      return parse_error(cursor, "unknown record '" + std::string(tag) + "'");
    }
  }

  if (!saw_end) {
    return parse_error(cursor,
                       "truncated snapshot (missing 'end' sentinel)");
  }
  if (!saw_machine) {
    return parse_error(cursor, "snapshot has no machine record");
  }
  const std::string_view payload(
      payload_start, static_cast<std::size_t>(payload_end - payload_start));
  if (fnv1a(payload) != declared_checksum) {
    return make_error(Errc::kInvalidArgument,
                      "snapshot checksum mismatch (corrupt or bit-flipped "
                      "file; refusing to restore)");
  }
  if (snap.node_telemetry.size() != snap.node_count ||
      snap.node_power.size() != snap.node_count) {
    return make_error(Errc::kInvalidArgument,
                      "snapshot node records do not match its node count");
  }
  if (snap.buffers.size() != snap.buffers_total) {
    return make_error(
        Errc::kInvalidArgument,
        "snapshot buffer records do not match its buffer count");
  }
  return snap;
}

Status save_atomic(const Snapshot& snapshot, const std::string& path) {
  const std::string text = serialize(snapshot);
  const std::string tmp = path + ".tmp";
  std::FILE* file = std::fopen(tmp.c_str(), "wb");
  if (file == nullptr) {
    return make_error(Errc::kInternal,
                      "cannot open '" + tmp + "' for writing");
  }
  const std::size_t written = std::fwrite(text.data(), 1, text.size(), file);
  const bool flushed = std::fflush(file) == 0;
  const bool closed = std::fclose(file) == 0;
  if (written != text.size() || !flushed || !closed) {
    std::remove(tmp.c_str());
    return make_error(Errc::kInternal, "short write to '" + tmp + "'");
  }
  // The rename is the commit point: a crash before it leaves any previous
  // snapshot at `path` intact, a crash after it leaves the new one.
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return make_error(Errc::kInternal,
                      "cannot rename '" + tmp + "' over '" + path + "'");
  }
  return {};
}

Result<Snapshot> load(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return make_error(Errc::kNotFound, "cannot open snapshot '" + path + "'");
  }
  std::string text;
  char buffer[1 << 16];
  std::size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    text.append(buffer, got);
  }
  std::fclose(file);
  return parse(text);
}

namespace {

/// Rebuild-from-empty: re-allocates every recorded slot in ascending index
/// order so BufferIds line up exactly. Freed slots become allocate-then-free
/// tombstones (zero-byte allocations are rejected, so tombstones claim one
/// byte — transiently, on whichever node has room).
Status rebuild_buffers(const Snapshot& snap, sim::SimMachine& machine) {
  const std::size_t nodes = machine.topology().numa_nodes().size();
  for (const Snapshot::BufferRecord& record : snap.buffers) {
    if (!record.freed) {
      auto id = machine.allocate(record.declared_bytes, record.node,
                                 record.label, record.backing_bytes);
      if (!id.ok()) {
        return make_error(Errc::kInternal,
                          "restore cannot re-allocate buffer '" +
                              record.label + "': " + id.error().to_string());
      }
      if (id->index != record.index) {
        return make_error(Errc::kInternal,
                          "restore buffer index drifted (machine not empty?)");
      }
      continue;
    }
    // Tombstone for a freed slot: the placement is irrelevant (freed
    // immediately), only the index matters.
    support::Result<sim::BufferId> id =
        make_error(Errc::kOutOfCapacity, "no node tried");
    for (unsigned n = 0; n < nodes && !id.ok(); ++n) {
      id = machine.allocate(1, n, record.label, 0);
    }
    if (!id.ok()) {
      return make_error(Errc::kInternal,
                        "restore cannot place tombstone for freed buffer '" +
                            record.label + "'");
    }
    if (id->index != record.index) {
      return make_error(Errc::kInternal,
                        "restore buffer index drifted (machine not empty?)");
    }
    const Status freed = machine.free(*id);
    if (!freed.ok()) return freed;
  }
  return {};
}

/// Re-place: the machine already holds identically-prepared buffers; verify
/// identity and migrate each live one to its recorded node.
Status replace_buffers(const Snapshot& snap, sim::SimMachine& machine) {
  if (machine.total_buffer_count() != snap.buffers_total) {
    return make_error(Errc::kInvalidArgument,
                      "restore target machine has " +
                          std::to_string(machine.total_buffer_count()) +
                          " buffer slot(s), snapshot has " +
                          std::to_string(snap.buffers_total));
  }
  for (const Snapshot::BufferRecord& record : snap.buffers) {
    const sim::BufferId id{record.index};
    const sim::BufferInfo info = machine.info(id);
    if (info.freed != record.freed || (!record.freed &&
                                       info.label != record.label)) {
      return make_error(Errc::kInvalidArgument,
                        "restore target buffer " +
                            std::to_string(record.index) +
                            " does not match the snapshot ('" + info.label +
                            "' vs '" + record.label + "')");
    }
    if (record.freed || info.node == record.node) continue;
    const Status moved = machine.migrate(id, record.node);
    if (!moved.ok()) {
      return make_error(Errc::kInternal,
                        "restore cannot re-place buffer '" + record.label +
                            "': " + moved.error().to_string());
    }
  }
  return {};
}

}  // namespace

Status restore(const Snapshot& snap, const RestoreTargets& targets) {
  if (targets.machine == nullptr || targets.allocator == nullptr) {
    return make_error(Errc::kInvalidArgument,
                      "restore requires a machine and an allocator");
  }
  sim::SimMachine& machine = *targets.machine;
  const std::size_t nodes = machine.topology().numa_nodes().size();
  if (nodes != snap.node_count) {
    return make_error(Errc::kInvalidArgument,
                      "restore target has " + std::to_string(nodes) +
                          " node(s), snapshot has " +
                          std::to_string(snap.node_count) +
                          " (topology mismatch)");
  }
  if (snap.has_faults && targets.faults != nullptr &&
      targets.faults->seed() != snap.fault_seed) {
    return make_error(Errc::kInvalidArgument,
                      "restore target fault injector seed differs from the "
                      "snapshot (schedules would diverge)");
  }

  // 1. Buffers — while every node is still online (rebuild allocations on a
  //    node the snapshot later marks offline must succeed first).
  if (machine.total_buffer_count() == 0 && snap.buffers_total > 0) {
    const Status rebuilt = rebuild_buffers(snap, machine);
    if (!rebuilt.ok()) return rebuilt;
  } else {
    const Status replaced = replace_buffers(snap, machine);
    if (!replaced.ok()) return replaced;
  }

  // 2. Tenants: re-register under original ids (restore_tenant keeps the
  //    never-reused-id invariant), overlay stats, re-adopt charges, and only
  //    then deregister the ones that died before the snapshot — their
  //    outstanding charges survive through the handles, as in the live run.
  if (targets.tenants != nullptr && !snap.tenants.empty()) {
    std::vector<tenant::TenantHandle> dead;
    for (const Snapshot::TenantRecord& record : snap.tenants) {
      tenant::TenantHandle handle = targets.tenants->find(record.id);
      if (handle == nullptr) {
        auto restored = targets.tenants->restore_tenant(
            record.id, record.name, record.priority, record.quota);
        if (!restored.ok()) return restored.error();
        handle = *restored;
      } else if (handle->name() != record.name) {
        return make_error(Errc::kInvalidArgument,
                          "restore target tenant id " +
                              std::to_string(record.id) +
                              " is '" + handle->name() +
                              "', snapshot says '" + record.name + "'");
      }
      handle->restore_stats(record.stats);
      if (!record.live) dead.push_back(std::move(handle));
    }
    for (const Snapshot::BufferRecord& record : snap.buffers) {
      if (record.freed || record.tenant_id == tenant::kNoTenant) continue;
      const sim::BufferId id{record.index};
      if (targets.allocator->tenant_of(id) != nullptr) continue;  // re-place
      tenant::TenantHandle owner = targets.tenants->find(record.tenant_id);
      if (owner == nullptr) {
        return make_error(Errc::kInvalidArgument,
                          "snapshot buffer '" + record.label +
                              "' charges unknown tenant id " +
                              std::to_string(record.tenant_id));
      }
      const Status adopted = targets.allocator->adopt_tenant_charge(
          id, std::move(owner), record.declared_bytes);
      if (!adopted.ok()) return adopted;
    }
    for (const tenant::TenantHandle& handle : dead) {
      const Status gone = targets.tenants->deregister_tenant(handle);
      if (!gone.ok()) return gone;
    }
  }
  if (targets.tenants != nullptr) {
    targets.tenants->restore_next_id(snap.tenants_next_id);
  }

  // 3. Allocator: reservations to their absolute recorded values, then the
  //    statistics overlay.
  for (unsigned n = 0; n < nodes; ++n) {
    const std::uint64_t want =
        n < snap.reserved_bytes.size() ? snap.reserved_bytes[n] : 0;
    const std::uint64_t have = targets.allocator->reserved_bytes(n);
    if (want > have) {
      const Status reserved = targets.allocator->reserve(n, want - have);
      if (!reserved.ok()) return reserved;
    } else if (have > want) {
      targets.allocator->release_reservation(n, have - want);
    }
  }
  targets.allocator->restore_stats(snap.alloc_stats);

  // 4. Machine telemetry, power state, cap (this may take nodes offline —
  //    after the buffer pass, by design).
  for (unsigned n = 0; n < nodes; ++n) {
    machine.restore_node_telemetry(n, snap.node_telemetry[n]);
    machine.restore_node_power_state(n, snap.node_power[n]);
  }
  machine.set_power_cap_watts(snap.power_cap_watts);

  // 5. Policy pipeline: sampler RNG/periods, classifier EMAs/streaks,
  //    engine stats + the rendered pre-crash narrative.
  if (snap.has_policy && targets.policy != nullptr) {
    targets.policy->mutable_sampler().restore_state(snap.sampler);
    targets.policy->mutable_classifier().restore_state(
        snap.classifier_states, snap.classifier_ema_total_bytes);
    targets.policy->mutable_engine().restore_stats(snap.engine_stats,
                                                   snap.engine_max_epoch_bytes);
    targets.policy->mutable_engine().restore_log_prefix(snap.decision_log);
  }

  // 6. Health — after telemetry, so last_errors and the counters it will be
  //    differenced against come from the same snapshot.
  if (snap.has_health && targets.health != nullptr) {
    targets.health->restore_state(snap.health_poll_count, snap.health_nodes);
  }

  if (snap.has_governor && targets.governor != nullptr) {
    targets.governor->restore_state(snap.governor_stats,
                                    snap.governor_streaks);
  }

  if (snap.has_supervisor && targets.supervisor != nullptr) {
    targets.supervisor->migration_breaker().restore_state(
        snap.migration_breaker);
    targets.supervisor->evacuation_breaker().restore_state(
        snap.evacuation_breaker);
    targets.supervisor->watchdog().restore_state(snap.watchdog);
  }

  // 7. Fault sites LAST: restore_site overwrites each stream absolutely, so
  //    any consultations the rebuild itself made are erased and the restored
  //    schedule continues exactly where the snapshot stopped.
  if (snap.has_faults && targets.faults != nullptr) {
    for (const fault::FaultInjector::SiteState& site : snap.fault_sites) {
      targets.faults->restore_site(site);
    }
  }
  return {};
}

}  // namespace hetmem::recover
