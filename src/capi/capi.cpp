#include "hetmem/capi.h"

#include <atomic>
#include <cstring>
#include <memory>
#include <string>

#include "hetmem/alloc/allocator.hpp"
#include "hetmem/hmat/hmat.hpp"
#include "hetmem/memattr/memattr.hpp"
#include "hetmem/power/power.hpp"
#include "hetmem/probe/probe.hpp"
#include "hetmem/recover/snapshot.hpp"
#include "hetmem/recover/supervisor.hpp"
#include "hetmem/simmem/machine.hpp"
#include "hetmem/tenant/tenant.hpp"
#include "hetmem/topo/presets.hpp"

struct hetmem_context {
  std::unique_ptr<hetmem::sim::SimMachine> machine;
  std::unique_ptr<hetmem::attr::MemAttrRegistry> registry;
  std::unique_ptr<hetmem::tenant::TenantRegistry> tenants;
  std::unique_ptr<hetmem::alloc::HeterogeneousAllocator> allocator;
  std::unique_ptr<hetmem::recover::Supervisor> supervisor;
  std::string preset_name;  /* snapshot provenance (hetmem_snapshot_save) */
  bool probed = false;
  std::atomic<uint64_t> last_retry_after_ms{0};
};

namespace {

using namespace hetmem;

int map_errc(support::Errc code) {
  switch (code) {
    case support::Errc::kInvalidArgument: return HETMEM_ERR_INVALID;
    case support::Errc::kNotFound: return HETMEM_ERR_NOENT;
    case support::Errc::kOutOfCapacity: return HETMEM_ERR_NOMEM;
    case support::Errc::kUnsupported: return HETMEM_ERR_UNSUPPORTED;
    case support::Errc::kParseError: return HETMEM_ERR_PARSE;
    case support::Errc::kAlreadyExists: return HETMEM_ERR_INVALID;
    case support::Errc::kInternal: return HETMEM_ERR_INTERNAL;
    case support::Errc::kTransient: return HETMEM_ERR_AGAIN;
    case support::Errc::kBackpressure: return HETMEM_ERR_AGAIN;
  }
  return HETMEM_ERR_INTERNAL;
}

hetmem_context* create_context(const char* preset_name, bool probed) {
  if (preset_name == nullptr) return nullptr;
  const topo::NamedTopology* preset = nullptr;
  for (const topo::NamedTopology& candidate : topo::all_presets()) {
    if (std::strcmp(candidate.name, preset_name) == 0) preset = &candidate;
  }
  if (preset == nullptr) return nullptr;

  auto ctx = std::make_unique<hetmem_context>();
  ctx->machine = std::make_unique<sim::SimMachine>(preset->factory());
  ctx->registry =
      std::make_unique<attr::MemAttrRegistry>(ctx->machine->topology());
  if (probed) {
    probe::ProbeOptions options;
    options.backing_bytes = 64 * 1024;
    options.chase_accesses = 2000;
    options.buffer_bytes = 128ull * 1024 * 1024;
    auto report = probe::discover(*ctx->machine, options);
    if (!report.ok() ||
        !probe::feed_registry(*ctx->registry, *report).ok()) {
      return nullptr;
    }
  } else {
    hmat::GenerateOptions options;
    options.local_only = false;
    if (!hmat::load_into(*ctx->registry,
                         hmat::generate(ctx->machine->topology(), options))
             .ok()) {
      return nullptr;
    }
  }
  if (!power::feed_registry(*ctx->registry, *ctx->machine).ok()) {
    return nullptr;
  }
  ctx->tenants = std::make_unique<tenant::TenantRegistry>();
  ctx->allocator = std::make_unique<alloc::HeterogeneousAllocator>(
      *ctx->machine, *ctx->registry);
  ctx->allocator->set_tenant_registry(ctx->tenants.get());
  ctx->supervisor = std::make_unique<recover::Supervisor>();
  ctx->preset_name = preset_name;
  ctx->probed = probed;
  return ctx.release();
}

/// Parses a list-syntax cpuset; empty optional on failure.
std::optional<support::Bitmap> parse_cpuset(const char* text) {
  if (text == nullptr) return std::nullopt;
  return support::Bitmap::parse(text);
}

const topo::Object* node_at(const hetmem_context* ctx, unsigned node) {
  if (ctx == nullptr) return nullptr;
  return ctx->machine->topology().numa_node(node);
}

int write_string(const std::string& value, char* buf, size_t buflen) {
  if (buf != nullptr && buflen > 0) {
    const size_t n = std::min(buflen - 1, value.size());
    std::memcpy(buf, value.data(), n);
    buf[n] = '\0';
  }
  return static_cast<int>(value.size());
}

}  // namespace

extern "C" {

hetmem_context* hetmem_context_create(const char* preset_name) {
  return create_context(preset_name, /*probed=*/false);
}

hetmem_context* hetmem_context_create_probed(const char* preset_name) {
  return create_context(preset_name, /*probed=*/true);
}

void hetmem_context_destroy(hetmem_context* ctx) { delete ctx; }

int hetmem_list_presets(const char** names, size_t capacity) {
  const auto& presets = topo::all_presets();
  if (names != nullptr) {
    for (size_t i = 0; i < std::min(capacity, presets.size()); ++i) {
      names[i] = presets[i].name;
    }
  }
  return static_cast<int>(presets.size());
}

int hetmem_numa_count(const hetmem_context* ctx) {
  if (ctx == nullptr) return HETMEM_ERR_INVALID;
  return static_cast<int>(ctx->machine->topology().numa_nodes().size());
}

int hetmem_pu_count(const hetmem_context* ctx) {
  if (ctx == nullptr) return HETMEM_ERR_INVALID;
  return static_cast<int>(ctx->machine->topology().pus().size());
}

uint64_t hetmem_node_capacity(const hetmem_context* ctx, unsigned node) {
  const topo::Object* object = node_at(ctx, node);
  return object == nullptr ? 0 : object->capacity_bytes();
}

int hetmem_node_cpuset(const hetmem_context* ctx, unsigned node, char* buf,
                       size_t buflen) {
  const topo::Object* object = node_at(ctx, node);
  if (object == nullptr) return HETMEM_ERR_INVALID;
  return write_string(object->cpuset().to_list_string(), buf, buflen);
}

const char* hetmem_node_kind_debug(const hetmem_context* ctx, unsigned node) {
  const topo::Object* object = node_at(ctx, node);
  return object == nullptr ? nullptr
                           : topo::memory_kind_name(object->memory_kind());
}

int hetmem_local_nodes(const hetmem_context* ctx, const char* initiator,
                       unsigned* nodes, size_t capacity) {
  if (ctx == nullptr) return HETMEM_ERR_INVALID;
  auto cpuset = parse_cpuset(initiator);
  if (!cpuset.has_value()) return HETMEM_ERR_PARSE;
  auto local = ctx->machine->topology().local_numa_nodes(*cpuset);
  if (nodes != nullptr) {
    for (size_t i = 0; i < std::min(capacity, local.size()); ++i) {
      nodes[i] = local[i]->logical_index();
    }
  }
  return static_cast<int>(local.size());
}

int hetmem_memattr_get_value(const hetmem_context* ctx, int attr,
                             unsigned node, const char* initiator,
                             double* value) {
  if (ctx == nullptr || attr < 0 || value == nullptr) return HETMEM_ERR_INVALID;
  const topo::Object* object = node_at(ctx, node);
  if (object == nullptr) return HETMEM_ERR_INVALID;
  std::optional<attr::Initiator> query;
  if (initiator != nullptr) {
    auto cpuset = parse_cpuset(initiator);
    if (!cpuset.has_value()) return HETMEM_ERR_PARSE;
    query = attr::Initiator::from_cpuset(*cpuset);
  }
  auto result = ctx->registry->value(static_cast<attr::AttrId>(attr), *object,
                                     query);
  if (!result.ok()) return map_errc(result.error().code);
  *value = *result;
  return HETMEM_SUCCESS;
}

int hetmem_memattr_get_best_target(const hetmem_context* ctx, int attr,
                                   const char* initiator, unsigned* node,
                                   double* value) {
  if (ctx == nullptr || attr < 0 || node == nullptr) return HETMEM_ERR_INVALID;
  auto cpuset = parse_cpuset(initiator);
  if (!cpuset.has_value()) return HETMEM_ERR_PARSE;
  auto best = ctx->registry->best_target(static_cast<attr::AttrId>(attr),
                                         attr::Initiator::from_cpuset(*cpuset));
  if (!best.ok()) return map_errc(best.error().code);
  *node = best->target->logical_index();
  if (value != nullptr) *value = best->value;
  return HETMEM_SUCCESS;
}

int hetmem_memattr_get_best_initiator(const hetmem_context* ctx, int attr,
                                      unsigned node, char* buf, size_t buflen,
                                      double* value) {
  if (ctx == nullptr || attr < 0) return HETMEM_ERR_INVALID;
  const topo::Object* object = node_at(ctx, node);
  if (object == nullptr) return HETMEM_ERR_INVALID;
  auto best =
      ctx->registry->best_initiator(static_cast<attr::AttrId>(attr), *object);
  if (!best.ok()) return map_errc(best.error().code);
  if (value != nullptr) *value = best->value;
  return write_string(best->initiator.to_list_string(), buf, buflen);
}

int hetmem_memattr_register(hetmem_context* ctx, const char* name,
                            int higher_is_better, int need_initiator) {
  if (ctx == nullptr || name == nullptr) return HETMEM_ERR_INVALID;
  auto id = ctx->registry->register_attribute(
      name,
      higher_is_better != 0 ? attr::Polarity::kHigherFirst
                            : attr::Polarity::kLowerFirst,
      need_initiator != 0);
  if (!id.ok()) return map_errc(id.error().code);
  return static_cast<int>(*id);
}

int hetmem_memattr_find(const hetmem_context* ctx, const char* name) {
  if (ctx == nullptr || name == nullptr) return HETMEM_ERR_INVALID;
  auto id = ctx->registry->find_attribute(name);
  if (!id.ok()) return map_errc(id.error().code);
  return static_cast<int>(*id);
}

int hetmem_memattr_set_value(hetmem_context* ctx, int attr, unsigned node,
                             const char* initiator, double value) {
  if (ctx == nullptr || attr < 0) return HETMEM_ERR_INVALID;
  const topo::Object* object = node_at(ctx, node);
  if (object == nullptr) return HETMEM_ERR_INVALID;
  std::optional<attr::Initiator> query;
  if (initiator != nullptr) {
    auto cpuset = parse_cpuset(initiator);
    if (!cpuset.has_value()) return HETMEM_ERR_PARSE;
    query = attr::Initiator::from_cpuset(*cpuset);
  }
  auto status = ctx->registry->set_value(static_cast<attr::AttrId>(attr),
                                         *object, query, value);
  if (!status.ok()) return map_errc(status.error().code);
  return HETMEM_SUCCESS;
}

static int64_t alloc_impl(hetmem_context* ctx, uint64_t bytes, int attr,
                          const char* initiator, int policy, const char* label,
                          hetmem::tenant::TenantHandle tenant) {
  if (ctx == nullptr || attr < 0) return HETMEM_ERR_INVALID;
  auto cpuset = parse_cpuset(initiator);
  if (!cpuset.has_value()) return HETMEM_ERR_PARSE;

  alloc::AllocRequest request;
  request.bytes = bytes;
  request.attribute = static_cast<attr::AttrId>(attr);
  request.initiator = *cpuset;
  request.label = label != nullptr ? label : "capi";
  request.tenant = std::move(tenant);
  switch (policy) {
    case HETMEM_POLICY_STRICT: request.policy = alloc::Policy::kStrict; break;
    case HETMEM_POLICY_RANKED_FALLBACK:
      request.policy = alloc::Policy::kRankedFallback;
      break;
    case HETMEM_POLICY_PREFERRED:
      request.policy = alloc::Policy::kPreferredThenDefault;
      break;
    default:
      return HETMEM_ERR_INVALID;
  }
  auto allocation = ctx->allocator->mem_alloc(request);
  if (!allocation.ok()) {
    if (allocation.error().code == support::Errc::kBackpressure) {
      ctx->last_retry_after_ms.store(allocation.error().retry_after_ms,
                                     std::memory_order_relaxed);
    }
    return map_errc(allocation.error().code);
  }
  return static_cast<int64_t>(allocation->buffer.index);
}

int64_t hetmem_alloc(hetmem_context* ctx, uint64_t bytes, int attr,
                     const char* initiator, int policy, const char* label) {
  return alloc_impl(ctx, bytes, attr, initiator, policy, label, nullptr);
}

int hetmem_free(hetmem_context* ctx, int64_t buffer) {
  if (ctx == nullptr || buffer < 0) return HETMEM_ERR_INVALID;
  auto status = ctx->allocator->mem_free(
      sim::BufferId{static_cast<std::uint32_t>(buffer)});
  return status.ok() ? HETMEM_SUCCESS : map_errc(status.error().code);
}

int hetmem_buffer_node(const hetmem_context* ctx, int64_t buffer) {
  if (ctx == nullptr || buffer < 0) return HETMEM_ERR_INVALID;
  const auto id = sim::BufferId{static_cast<std::uint32_t>(buffer)};
  if (static_cast<std::size_t>(buffer) >= ctx->machine->total_buffer_count()) {
    return HETMEM_ERR_INVALID;
  }
  const sim::BufferInfo info = ctx->machine->info(id);
  if (info.freed) return HETMEM_ERR_INVALID;
  return static_cast<int>(info.node);
}

int hetmem_migrate(hetmem_context* ctx, int64_t buffer, unsigned node,
                   double* cost_ns) {
  if (ctx == nullptr || buffer < 0) return HETMEM_ERR_INVALID;
  auto cost = ctx->allocator->migrate(
      sim::BufferId{static_cast<std::uint32_t>(buffer)}, node);
  if (!cost.ok()) return map_errc(cost.error().code);
  if (cost_ns != nullptr) *cost_ns = *cost;
  return HETMEM_SUCCESS;
}

uint64_t hetmem_node_available(const hetmem_context* ctx, unsigned node) {
  if (ctx == nullptr ||
      node >= ctx->machine->topology().numa_nodes().size()) {
    return 0;
  }
  return ctx->machine->available_bytes(node);
}

int64_t hetmem_tenant_register(hetmem_context* ctx, const char* name,
                               int priority, uint64_t total_cap_bytes,
                               double share_weight) {
  if (ctx == nullptr || name == nullptr || priority < 0 ||
      priority > HETMEM_PRIORITY_BEST_EFFORT) {
    return HETMEM_ERR_INVALID;
  }
  tenant::TenantQuota quota;
  if (total_cap_bytes != 0) quota.total_cap_bytes = total_cap_bytes;
  quota.share_weight = share_weight;
  auto handle = ctx->tenants->register_tenant(
      name, static_cast<tenant::Priority>(priority), quota);
  if (!handle.ok()) return map_errc(handle.error().code);
  return static_cast<int64_t>((*handle)->id());
}

int hetmem_tenant_deregister(hetmem_context* ctx, int64_t tenant) {
  if (ctx == nullptr || tenant <= 0) return HETMEM_ERR_INVALID;
  tenant::TenantHandle handle =
      ctx->tenants->find(static_cast<tenant::TenantId>(tenant));
  if (handle == nullptr) return HETMEM_ERR_NOENT;
  auto status = ctx->tenants->deregister_tenant(handle);
  return status.ok() ? HETMEM_SUCCESS : map_errc(status.error().code);
}

int64_t hetmem_alloc_tenant(hetmem_context* ctx, uint64_t bytes, int attr,
                            const char* initiator, int policy,
                            const char* label, int64_t tenant) {
  if (ctx == nullptr || tenant <= 0) return HETMEM_ERR_INVALID;
  tenant::TenantHandle handle =
      ctx->tenants->find(static_cast<tenant::TenantId>(tenant));
  if (handle == nullptr) return HETMEM_ERR_NOENT;
  return alloc_impl(ctx, bytes, attr, initiator, policy, label,
                    std::move(handle));
}

uint64_t hetmem_tenant_used_bytes(const hetmem_context* ctx, int64_t tenant) {
  if (ctx == nullptr || tenant <= 0) return 0;
  tenant::TenantHandle handle =
      ctx->tenants->find(static_cast<tenant::TenantId>(tenant));
  return handle == nullptr ? 0 : handle->used_bytes();
}

uint64_t hetmem_backpressure_rejections(const hetmem_context* ctx,
                                        int reason) {
  if (ctx == nullptr) return 0;
  const alloc::AllocatorStats stats = ctx->allocator->stats();
  switch (reason) {
    case HETMEM_BACKPRESSURE_TOTAL: return stats.backpressure_rejections;
    case HETMEM_BACKPRESSURE_HEALTH: return stats.backpressure_health;
    case HETMEM_BACKPRESSURE_QUOTA: return stats.backpressure_quota;
    case HETMEM_BACKPRESSURE_SHED: return stats.backpressure_shed;
    default: return 0;
  }
}

uint64_t hetmem_last_retry_after_ms(const hetmem_context* ctx) {
  return ctx == nullptr
             ? 0
             : ctx->last_retry_after_ms.load(std::memory_order_relaxed);
}

double hetmem_power_draw_watts(const hetmem_context* ctx, unsigned node) {
  if (node_at(ctx, node) == nullptr) return HETMEM_ERR_INVALID;
  return ctx->machine->power_draw_watts(node);
}

int hetmem_set_power_cap_watts(hetmem_context* ctx, double watts) {
  if (ctx == nullptr || watts < 0.0) return HETMEM_ERR_INVALID;
  ctx->machine->set_power_cap_watts(watts);
  return HETMEM_SUCCESS;
}

double hetmem_power_cap_watts(const hetmem_context* ctx) {
  if (ctx == nullptr) return HETMEM_ERR_INVALID;
  return ctx->machine->power_cap_watts();
}

uint64_t hetmem_throttle_events(const hetmem_context* ctx, unsigned node) {
  if (node_at(ctx, node) == nullptr) return 0;
  return ctx->machine->node_telemetry(node).thermal_throttle_events;
}

int hetmem_snapshot_save(const hetmem_context* ctx, const char* path) {
  if (ctx == nullptr || path == nullptr) return HETMEM_ERR_INVALID;
  recover::CaptureSources sources;
  sources.machine = ctx->machine.get();
  sources.allocator = ctx->allocator.get();
  sources.tenants = ctx->tenants.get();
  sources.supervisor = ctx->supervisor.get();
  sources.machine_preset = ctx->preset_name;
  sources.probed = ctx->probed;
  const support::Status saved =
      recover::save_atomic(recover::capture(sources), path);
  return saved.ok() ? HETMEM_SUCCESS : map_errc(saved.error().code);
}

hetmem_context* hetmem_snapshot_restore(const char* path) {
  if (path == nullptr) return nullptr;
  auto snapshot = recover::load(path);
  if (!snapshot.ok()) return nullptr;
  std::unique_ptr<hetmem_context> ctx(
      create_context(snapshot->machine_preset.c_str(), snapshot->probed));
  if (ctx == nullptr) return nullptr;
  recover::RestoreTargets targets;
  targets.machine = ctx->machine.get();
  targets.allocator = ctx->allocator.get();
  targets.tenants = ctx->tenants.get();
  targets.supervisor = ctx->supervisor.get();
  if (!recover::restore(*snapshot, targets).ok()) return nullptr;
  return ctx.release();
}

int hetmem_breaker_state(const hetmem_context* ctx, const char* breaker) {
  if (ctx == nullptr || breaker == nullptr) return HETMEM_ERR_INVALID;
  const recover::CircuitBreaker* found = ctx->supervisor->breaker(breaker);
  if (found == nullptr) return HETMEM_ERR_NOENT;
  return static_cast<int>(found->state());
}

}  // extern "C"
