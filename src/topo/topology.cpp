#include "hetmem/topo/topology.hpp"

#include <functional>

namespace hetmem::topo {

using support::Bitmap;
using support::Errc;
using support::make_error;
using support::Status;

const Object* Topology::numa_node(unsigned logical_index) const {
  if (logical_index >= numa_nodes_.size()) return nullptr;
  return numa_nodes_[logical_index];
}

const Object* Topology::numa_node_by_os_index(unsigned os_index) const {
  for (const Object* node : numa_nodes_) {
    if (node->os_index() == os_index) return node;
  }
  return nullptr;
}

const Bitmap& Topology::complete_cpuset() const { return root_->cpuset(); }

std::vector<const Object*> Topology::local_numa_nodes(const Bitmap& initiator,
                                                      LocalityFlags flags) const {
  std::vector<const Object*> out;
  for (const Object* node : numa_nodes_) {
    if (has_flag(flags, LocalityFlags::kAll)) {
      out.push_back(node);
      continue;
    }
    if (initiator.empty()) continue;
    const Bitmap& locality = node->cpuset();
    const bool exact = locality == initiator;
    const bool larger = initiator.is_subset_of(locality);
    const bool smaller = locality.is_subset_of(initiator) && !locality.empty();
    bool match = exact;
    if (has_flag(flags, LocalityFlags::kLargerLocality)) match = match || larger;
    if (has_flag(flags, LocalityFlags::kSmallerLocality)) match = match || smaller;
    if (has_flag(flags, LocalityFlags::kIntersecting)) {
      match = match || locality.intersects(initiator);
    }
    if (match) out.push_back(node);
  }
  return out;
}

const Object* Topology::covering_object(const Bitmap& cpuset) const {
  if (cpuset.empty() || !cpuset.is_subset_of(root_->cpuset())) return nullptr;
  const Object* current = root_.get();
  while (true) {
    const Object* next = nullptr;
    for (const auto& child : current->children()) {
      if (cpuset.is_subset_of(child->cpuset())) {
        next = child.get();
        break;
      }
    }
    if (next == nullptr) return current;
    current = next;
  }
}

std::vector<const Object*> Topology::objects_of_type(ObjType type) const {
  std::vector<const Object*> out;
  std::function<void(const Object*)> visit = [&](const Object* obj) {
    if (obj->type() == type) out.push_back(obj);
    for (const auto& mem : obj->memory_children()) {
      if (mem->type() == type) out.push_back(mem.get());
    }
    for (const auto& child : obj->children()) visit(child.get());
  };
  visit(root_.get());
  return out;
}

std::uint64_t Topology::total_memory_bytes() const {
  std::uint64_t total = 0;
  for (const Object* node : numa_nodes_) total += node->capacity_bytes();
  return total;
}

Status Topology::validate() const {
  Status failure;
  std::function<bool(const Object*)> check = [&](const Object* obj) -> bool {
    if (!obj->children().empty()) {
      Bitmap child_union;
      std::size_t child_bits = 0;
      for (const auto& child : obj->children()) {
        child_union |= child->cpuset();
        child_bits += child->cpuset().count();
      }
      if (!(child_union == obj->cpuset())) {
        failure = make_error(Errc::kInternal,
                             std::string(obj_type_name(obj->type())) +
                                 " cpuset is not the union of its children");
        return false;
      }
      if (child_bits != child_union.count()) {
        failure = make_error(Errc::kInternal,
                             std::string(obj_type_name(obj->type())) +
                                 " children cpusets overlap");
        return false;
      }
    }
    for (const auto& mem : obj->memory_children()) {
      if (mem->type() != ObjType::kNUMANode) {
        failure = make_error(Errc::kInternal, "non-NUMANode memory child");
        return false;
      }
      if (!(mem->cpuset() == obj->cpuset())) {
        failure = make_error(Errc::kInternal,
                             "memory child locality differs from attach point");
        return false;
      }
      if (mem->capacity_bytes() == 0) {
        failure = make_error(Errc::kInternal, "NUMA node with zero capacity");
        return false;
      }
    }
    for (const auto& child : obj->children()) {
      if (!check(child.get())) return false;
    }
    return true;
  };
  if (!check(root_.get())) return failure;

  for (std::size_t i = 0; i < numa_nodes_.size(); ++i) {
    if (numa_nodes_[i]->logical_index() != i) {
      return make_error(Errc::kInternal, "NUMA logical indices not dense");
    }
  }
  for (std::size_t i = 0; i < pus_.size(); ++i) {
    if (pus_[i]->logical_index() != i) {
      return make_error(Errc::kInternal, "PU logical indices not dense");
    }
  }
  return {};
}

}  // namespace hetmem::topo
