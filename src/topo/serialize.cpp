#include "hetmem/topo/serialize.hpp"

#include <algorithm>
#include <charconv>
#include <functional>
#include <vector>

#include "hetmem/support/str.hpp"
#include "hetmem/topo/builder.hpp"

namespace hetmem::topo {

using support::Errc;
using support::make_error;
using support::Result;

std::string serialize(const Topology& topology) {
  std::string out = "# hetmem-topology v1 \"" + topology.platform_name() + "\"\n";

  std::function<void(const Object&, unsigned)> visit = [&](const Object& obj,
                                                           unsigned depth) {
    const std::string indent(static_cast<std::size_t>(depth) * 2, ' ');

    // Memory children first (matches the render and keeps attachment points
    // explicit); their machine-wide order is preserved via os=.
    for (const auto& mem : obj.memory_children()) {
      out += indent + "numa os=" + std::to_string(mem->os_index()) +
             " kind=" + memory_kind_name(mem->memory_kind()) +
             " capacity=" + std::to_string(mem->capacity_bytes());
      if (mem->memory_side_cache().has_value()) {
        const MemorySideCache& cache = *mem->memory_side_cache();
        out += " mscache=" + std::to_string(cache.size_bytes) + "," +
               std::to_string(cache.associativity) + "," +
               std::to_string(cache.line_bytes);
      }
      out += "\n";
    }

    const auto& children = obj.children();
    for (std::size_t i = 0; i < children.size(); ++i) {
      const Object& child = *children[i];
      switch (child.type()) {
        case ObjType::kPackage:
          out += indent + "package\n";
          visit(child, depth + 1);
          break;
        case ObjType::kGroup:
          out += indent + "group";
          if (!child.subtype().empty()) out += " subtype=" + child.subtype();
          out += "\n";
          visit(child, depth + 1);
          break;
        case ObjType::kL3Cache:
          out += indent + "l3\n";
          visit(child, depth + 1);
          break;
        case ObjType::kCore: {
          // Collapse a run of cores with identical PU counts.
          const std::size_t pus = child.children().size();
          std::size_t j = i;
          while (j + 1 < children.size() &&
                 children[j + 1]->type() == ObjType::kCore &&
                 children[j + 1]->children().size() == pus) {
            ++j;
          }
          out += indent + "cores count=" + std::to_string(j - i + 1) +
                 " pus=" + std::to_string(pus) + "\n";
          i = j;
          break;
        }
        case ObjType::kPU:
        case ObjType::kMachine:
        case ObjType::kNUMANode:
          break;  // PUs are implied by cores; others cannot be children here
      }
    }
  };
  visit(topology.root(), 0);
  return out;
}

namespace {

struct PendingNuma {
  TopologyBuilder::Node attach_point;
  unsigned os_index = 0;
  MemoryKind kind = MemoryKind::kDRAM;
  std::uint64_t capacity = 0;
  std::optional<MemorySideCache> ms_cache;
};

Result<std::uint64_t> parse_u64(std::string_view text) {
  std::uint64_t value = 0;
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    return make_error(Errc::kParseError, "bad number '" + std::string(text) + "'");
  }
  return value;
}

Result<std::string_view> field(const std::vector<std::string_view>& tokens,
                               std::string_view key) {
  const std::string prefix = std::string(key) + "=";
  for (std::string_view token : tokens) {
    if (support::starts_with(token, prefix)) return token.substr(prefix.size());
  }
  return make_error(Errc::kParseError, "missing field '" + std::string(key) + "'");
}

Result<MemoryKind> parse_kind(std::string_view name) {
  for (MemoryKind kind : {MemoryKind::kDRAM, MemoryKind::kHBM,
                          MemoryKind::kNVDIMM, MemoryKind::kNAM,
                          MemoryKind::kGPU}) {
    if (name == memory_kind_name(kind)) return kind;
  }
  return make_error(Errc::kParseError,
                    "unknown memory kind '" + std::string(name) + "'");
}

}  // namespace

Result<Topology> parse_topology(std::string_view text) {
  const auto lines = support::split(text, '\n');
  if (lines.empty() || !support::starts_with(support::trim(lines[0]),
                                             "# hetmem-topology v1")) {
    return make_error(Errc::kParseError, "missing hetmem-topology v1 header");
  }
  std::string platform_name = "imported";
  {
    const std::string_view header = lines[0];
    const std::size_t open = header.find('"');
    const std::size_t close = header.rfind('"');
    if (open != std::string_view::npos && close > open) {
      platform_name = std::string(header.substr(open + 1, close - open - 1));
    }
  }

  TopologyBuilder builder(platform_name);
  std::vector<TopologyBuilder::Node> stack = {builder.machine()};
  std::vector<PendingNuma> pending;

  for (std::size_t line_number = 1; line_number < lines.size(); ++line_number) {
    const std::string_view raw_line = lines[line_number];
    std::string_view line = support::trim(raw_line);
    if (line.empty() || line.front() == '#') continue;

    // Depth from indentation (2 spaces per level).
    std::size_t spaces = 0;
    while (spaces < raw_line.size() && raw_line[spaces] == ' ') ++spaces;
    const std::size_t depth = spaces / 2 + 1;  // +1: machine is stack[0]
    if (depth > stack.size()) {
      return make_error(Errc::kParseError,
                        "line " + std::to_string(line_number + 1) +
                            ": indentation jumps a level");
    }
    stack.erase(stack.begin() + static_cast<std::ptrdiff_t>(depth), stack.end());
    TopologyBuilder::Node parent = stack.back();

    std::vector<std::string_view> tokens;
    for (std::string_view token : support::split(line, ' ')) {
      if (!token.empty()) tokens.push_back(token);
    }
    auto fail = [&](const std::string& message) -> Result<Topology> {
      return make_error(Errc::kParseError,
                        "line " + std::to_string(line_number + 1) + ": " + message);
    };

    if (tokens[0] == "package") {
      stack.push_back(parent.add_package());
    } else if (tokens[0] == "group") {
      std::string subtype = "Group";
      if (auto value = field(tokens, "subtype"); value.ok()) {
        subtype = std::string(*value);
      }
      stack.push_back(parent.add_group(subtype));
    } else if (tokens[0] == "l3") {
      stack.push_back(parent.add_l3());
    } else if (tokens[0] == "cores") {
      auto count = field(tokens, "count");
      auto pus = field(tokens, "pus");
      if (!count.ok() || !pus.ok()) return fail("cores needs count= and pus=");
      auto count_value = parse_u64(*count);
      auto pus_value = parse_u64(*pus);
      if (!count_value.ok() || !pus_value.ok() || *count_value == 0 ||
          *pus_value == 0) {
        return fail("bad cores count/pus");
      }
      parent.add_cores(static_cast<unsigned>(*count_value),
                       static_cast<unsigned>(*pus_value));
    } else if (tokens[0] == "numa") {
      auto os = field(tokens, "os");
      auto kind = field(tokens, "kind");
      auto capacity = field(tokens, "capacity");
      if (!os.ok() || !kind.ok() || !capacity.ok()) {
        return fail("numa needs os=, kind=, capacity=");
      }
      auto os_value = parse_u64(*os);
      if (!os_value.ok()) return fail(os_value.error().message);
      auto kind_value = parse_kind(*kind);
      if (!kind_value.ok()) return fail(kind_value.error().message);
      auto capacity_value = parse_u64(*capacity);
      if (!capacity_value.ok()) return fail(capacity_value.error().message);
      std::optional<MemorySideCache> ms_cache;
      if (auto cache = field(tokens, "mscache"); cache.ok()) {
        const auto parts = support::split(*cache, ',');
        if (parts.size() != 3) return fail("mscache needs size,assoc,line");
        auto size = parse_u64(parts[0]);
        auto assoc = parse_u64(parts[1]);
        auto cache_line = parse_u64(parts[2]);
        if (!size.ok() || !assoc.ok() || !cache_line.ok()) {
          return fail("bad mscache numbers");
        }
        ms_cache = MemorySideCache{*size, static_cast<unsigned>(*assoc),
                                   static_cast<unsigned>(*cache_line)};
      }
      pending.push_back(PendingNuma{parent, static_cast<unsigned>(*os_value),
                                    *kind_value, *capacity_value, ms_cache});
    } else {
      return fail("unknown record '" + std::string(tokens[0]) + "'");
    }
  }

  // Attach NUMA nodes in their original machine-wide (OS index) order so
  // numbering round-trips.
  std::stable_sort(pending.begin(), pending.end(),
                   [](const PendingNuma& a, const PendingNuma& b) {
                     return a.os_index < b.os_index;
                   });
  for (std::size_t i = 0; i < pending.size(); ++i) {
    if (pending[i].os_index != i) {
      return make_error(Errc::kParseError, "numa os= indices are not dense");
    }
    pending[i].attach_point.attach_numa(pending[i].kind, pending[i].capacity,
                                        pending[i].ms_cache);
  }
  return std::move(builder).finalize();
}

}  // namespace hetmem::topo
