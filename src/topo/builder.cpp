#include "hetmem/topo/builder.hpp"

#include <algorithm>
#include <cassert>
#include <functional>
#include <vector>

namespace hetmem::topo {

using support::Errc;
using support::make_error;
using support::Result;
using support::Status;

TopologyBuilder::TopologyBuilder(std::string platform_name)
    : root_(std::make_unique<Object>(ObjType::kMachine, 0)),
      platform_name_(std::move(platform_name)) {
  root_->name_ = "Machine";
}

TopologyBuilder::Node TopologyBuilder::machine() {
  assert(!finalized_);
  return Node(this, root_.get());
}

Object* TopologyBuilder::new_child(Object* parent, ObjType type) {
  unsigned os_index = 0;
  switch (type) {
    case ObjType::kPackage: os_index = next_package_os_index_++; break;
    case ObjType::kGroup: os_index = next_group_os_index_++; break;
    case ObjType::kL3Cache: os_index = next_l3_os_index_++; break;
    case ObjType::kCore: os_index = next_core_os_index_++; break;
    case ObjType::kPU: os_index = next_pu_os_index_++; break;
    case ObjType::kNUMANode: os_index = next_numa_os_index_++; break;
    case ObjType::kMachine: assert(false); break;
  }
  auto child = std::make_unique<Object>(type, os_index);
  child->parent_ = parent;
  Object* raw = child.get();
  if (type == ObjType::kNUMANode) {
    parent->memory_children_.push_back(std::move(child));
  } else {
    parent->children_.push_back(std::move(child));
  }
  return raw;
}

TopologyBuilder::Node TopologyBuilder::Node::add_package() {
  return Node(builder_, builder_->new_child(object_, ObjType::kPackage));
}

TopologyBuilder::Node TopologyBuilder::Node::add_group(std::string subtype) {
  Object* group = builder_->new_child(object_, ObjType::kGroup);
  group->subtype_ = std::move(subtype);
  return Node(builder_, group);
}

TopologyBuilder::Node TopologyBuilder::Node::add_l3() {
  return Node(builder_, builder_->new_child(object_, ObjType::kL3Cache));
}

TopologyBuilder::Node TopologyBuilder::Node::add_core(unsigned pu_count) {
  Object* core = builder_->new_child(object_, ObjType::kCore);
  for (unsigned i = 0; i < pu_count; ++i) {
    Object* pu = builder_->new_child(core, ObjType::kPU);
    pu->cpuset_.set(pu->os_index());
  }
  return Node(builder_, core);
}

void TopologyBuilder::Node::add_cores(unsigned count, unsigned pu_count) {
  for (unsigned i = 0; i < count; ++i) add_core(pu_count);
}

TopologyBuilder::Node TopologyBuilder::Node::attach_numa(
    MemoryKind kind, std::uint64_t capacity_bytes,
    std::optional<MemorySideCache> ms_cache) {
  Object* node = builder_->new_child(object_, ObjType::kNUMANode);
  node->memory_kind_ = kind;
  node->capacity_bytes_ = capacity_bytes;
  node->ms_cache_ = ms_cache;
  node->nodeset_.set(node->os_index());
  return Node(builder_, node);
}

Result<Topology> TopologyBuilder::finalize() && {
  assert(!finalized_);
  finalized_ = true;

  Topology topology;
  topology.platform_name_ = std::move(platform_name_);

  // Bottom-up cpuset/nodeset aggregation. Memory children inherit the cpuset
  // of their attach point (their locality).
  std::function<void(Object*)> aggregate = [&](Object* obj) {
    for (auto& child : obj->children_) {
      aggregate(child.get());
      obj->cpuset_ |= child->cpuset_;
      obj->nodeset_ |= child->nodeset_;
    }
    for (auto& mem : obj->memory_children_) {
      obj->nodeset_ |= mem->nodeset_;
    }
  };
  aggregate(root_.get());

  std::function<void(Object*)> propagate_locality = [&](Object* obj) {
    for (auto& mem : obj->memory_children_) mem->cpuset_ = obj->cpuset_;
    for (auto& child : obj->children_) propagate_locality(child.get());
  };
  propagate_locality(root_.get());

  // Logical indices: depth-first order per type for normal objects. NUMA
  // nodes are numbered by OS index (= attachment order), matching how Linux
  // numbers nodes on the paper's platforms (Fig. 5: group DRAMs L#0-1, then
  // the package NVDIMM L#2). Presets attach nodes in that observed order.
  unsigned counters[8] = {};
  std::vector<Object*> numa_nodes;
  std::function<void(Object*)> number = [&](Object* obj) {
    obj->logical_index_ = counters[static_cast<unsigned>(obj->type_)]++;
    obj->name_ = std::string(obj_type_name(obj->type_));
    for (auto& mem : obj->memory_children_) {
      mem->name_ = "NUMANode";
      numa_nodes.push_back(mem.get());
    }
    for (auto& child : obj->children_) number(child.get());
    if (obj->type_ == ObjType::kPU) topology.pus_.push_back(obj);
  };
  number(root_.get());

  std::sort(numa_nodes.begin(), numa_nodes.end(),
            [](const Object* a, const Object* b) { return a->os_index() < b->os_index(); });
  for (std::size_t i = 0; i < numa_nodes.size(); ++i) {
    numa_nodes[i]->logical_index_ = static_cast<unsigned>(i);
    topology.numa_nodes_.push_back(numa_nodes[i]);
  }

  if (topology.pus_.empty()) {
    return make_error(Errc::kInvalidArgument, "topology has no PUs");
  }
  if (topology.numa_nodes_.empty()) {
    return make_error(Errc::kInvalidArgument, "topology has no NUMA nodes");
  }

  topology.root_ = std::move(root_);
  if (Status status = topology.validate(); !status.ok()) {
    return status.error();
  }
  return topology;
}

}  // namespace hetmem::topo
