#include "hetmem/topo/distrib.hpp"

namespace hetmem::topo {

using support::Bitmap;

namespace {

/// Splits `count` ranks over `object`'s subtree: shares are proportional to
/// PU counts, remainders spread over the earliest children (hwloc_distrib's
/// behavior for non-dividing counts).
void distrib_recurse(const Object& object, unsigned count,
                     std::vector<Bitmap>& out) {
  if (count == 0) return;
  const auto& children = object.children();
  if (children.empty() || count == 1) {
    // Leaf (PU) or a single rank for this whole subtree.
    for (unsigned i = 0; i < count; ++i) out.push_back(object.cpuset());
    return;
  }
  const std::size_t total_pus = object.cpuset().count();
  unsigned assigned = 0;
  double carry = 0.0;
  for (std::size_t c = 0; c < children.size(); ++c) {
    const double exact =
        static_cast<double>(count) *
            static_cast<double>(children[c]->cpuset().count()) /
            static_cast<double>(total_pus) +
        carry;
    unsigned share = static_cast<unsigned>(exact);
    carry = exact - share;
    if (c + 1 == children.size()) share = count - assigned;  // absorb rounding
    assigned += share;
    distrib_recurse(*children[c], share, out);
  }
}

}  // namespace

std::vector<Bitmap> distribute(const Topology& topology, unsigned count) {
  std::vector<Bitmap> out;
  out.reserve(count);
  const unsigned pus = static_cast<unsigned>(topology.pus().size());
  if (count <= pus) {
    distrib_recurse(topology.root(), count, out);
    return out;
  }
  // More ranks than PUs: distribute in full rounds, then the remainder.
  while (out.size() + pus <= count) {
    distrib_recurse(topology.root(), pus, out);
  }
  distrib_recurse(topology.root(), count - static_cast<unsigned>(out.size()),
                  out);
  return out;
}

}  // namespace hetmem::topo
