#include "hetmem/topo/presets.hpp"

#include <cassert>
#include <utility>
#include <vector>

#include "hetmem/support/units.hpp"
#include "hetmem/topo/builder.hpp"

namespace hetmem::topo {

using support::kGiB;
using support::kTiB;

namespace {

Topology must_build(TopologyBuilder&& builder) {
  auto result = std::move(builder).finalize();
  assert(result.ok() && "preset topology failed validation");
  return std::move(result).take();
}

}  // namespace

Topology knl_snc4_flat() {
  TopologyBuilder builder("KNL 7230 SNC-4 Flat");
  auto package = builder.machine().add_package();
  std::vector<TopologyBuilder::Node> clusters;
  for (unsigned i = 0; i < 4; ++i) {
    auto group = package.add_group("SubNUMACluster");
    group.add_cores(/*count=*/16, /*pu_count=*/4);
    clusters.push_back(group);
  }
  // DRAM nodes get OS indices 0-3, MCDRAM 4-7: KNL numbers MCDRAM higher so
  // default (lowest-index) allocations do not consume it (paper footnote 21).
  for (auto& cluster : clusters) cluster.attach_numa(MemoryKind::kDRAM, 24 * kGiB);
  for (auto& cluster : clusters) cluster.attach_numa(MemoryKind::kHBM, 4 * kGiB);
  return must_build(std::move(builder));
}

Topology knl_snc4_hybrid50() {
  TopologyBuilder builder("KNL SNC4 Hybrid50");
  auto package = builder.machine().add_package();
  std::vector<TopologyBuilder::Node> clusters;
  for (unsigned i = 0; i < 4; ++i) {
    auto group = package.add_group("SubNUMACluster");
    group.add_cores(/*count=*/18, /*pu_count=*/4);
    clusters.push_back(group);
  }
  for (auto& cluster : clusters) {
    cluster.attach_numa(MemoryKind::kDRAM, 12 * kGiB,
                        MemorySideCache{.size_bytes = 2 * kGiB,
                                        .associativity = 1,
                                        .line_bytes = 64});
  }
  for (auto& cluster : clusters) cluster.attach_numa(MemoryKind::kHBM, 2 * kGiB);
  return must_build(std::move(builder));
}

Topology knl_quadrant_cache() {
  TopologyBuilder builder("KNL 7230 Quadrant Cache");
  auto package = builder.machine().add_package();
  package.add_cores(/*count=*/64, /*pu_count=*/4);
  package.attach_numa(MemoryKind::kDRAM, 96 * kGiB,
                      MemorySideCache{.size_bytes = 16 * kGiB,
                                      .associativity = 1,
                                      .line_bytes = 64});
  return must_build(std::move(builder));
}

Topology xeon_clx_snc_1lm() {
  TopologyBuilder builder("2x Xeon 6230 SNC 1LM");
  auto machine = builder.machine();
  for (unsigned p = 0; p < 2; ++p) {
    auto package = machine.add_package();
    std::vector<TopologyBuilder::Node> groups;
    for (unsigned g = 0; g < 2; ++g) {
      auto group = package.add_group("SubNUMACluster");
      group.add_cores(/*count=*/10, /*pu_count=*/2);
      groups.push_back(group);
    }
    // Linux numbering on this machine (Fig. 5): per package, the two group
    // DRAMs then the package NVDIMM.
    for (auto& group : groups) group.attach_numa(MemoryKind::kDRAM, 96 * kGiB);
    package.attach_numa(MemoryKind::kNVDIMM, 768 * kGiB);
  }
  return must_build(std::move(builder));
}

Topology xeon_clx_1lm() {
  TopologyBuilder builder("2x Xeon 6230 1LM");
  auto machine = builder.machine();
  std::vector<TopologyBuilder::Node> packages;
  for (unsigned p = 0; p < 2; ++p) {
    auto package = machine.add_package();
    package.add_cores(/*count=*/20, /*pu_count=*/2);
    packages.push_back(package);
  }
  // Linux numbers this machine 0=DRAM0 1=DRAM1 2=PMEM0 3=PMEM1.
  for (auto& package : packages) package.attach_numa(MemoryKind::kDRAM, 192 * kGiB);
  for (auto& package : packages) package.attach_numa(MemoryKind::kNVDIMM, 768 * kGiB);
  return must_build(std::move(builder));
}

Topology xeon_clx_2lm() {
  TopologyBuilder builder("2x Xeon 6230 2LM");
  auto machine = builder.machine();
  for (unsigned p = 0; p < 2; ++p) {
    auto package = machine.add_package();
    package.add_cores(/*count=*/20, /*pu_count=*/2);
    package.attach_numa(MemoryKind::kNVDIMM, 768 * kGiB,
                        MemorySideCache{.size_bytes = 192 * kGiB,
                                        .associativity = 1,
                                        .line_bytes = 64});
  }
  return must_build(std::move(builder));
}

Topology fictitious_fig3() {
  TopologyBuilder builder("Fictitious Fig.3 platform");
  auto machine = builder.machine();
  std::vector<TopologyBuilder::Node> packages;
  std::vector<TopologyBuilder::Node> groups;
  for (unsigned p = 0; p < 2; ++p) {
    auto package = machine.add_package();
    packages.push_back(package);
    for (unsigned g = 0; g < 2; ++g) {
      auto group = package.add_group("SubNUMACluster");
      group.add_cores(/*count=*/8, /*pu_count=*/2);
      groups.push_back(group);
    }
  }
  // DRAM first (default allocation targets), then HBM per cluster, then
  // NVDIMMs, then the machine-wide network-attached memory.
  for (auto& package : packages) package.attach_numa(MemoryKind::kDRAM, 64 * kGiB);
  for (auto& group : groups) group.attach_numa(MemoryKind::kHBM, 16 * kGiB);
  for (auto& package : packages) package.attach_numa(MemoryKind::kNVDIMM, 512 * kGiB);
  machine.attach_numa(MemoryKind::kNAM, 4 * kTiB);
  return must_build(std::move(builder));
}

Topology fugaku_like() {
  TopologyBuilder builder("Fugaku-like A64FX node");
  auto package = builder.machine().add_package();
  std::vector<TopologyBuilder::Node> cmgs;
  for (unsigned i = 0; i < 4; ++i) {
    auto cmg = package.add_group("CMG");
    cmg.add_cores(/*count=*/12, /*pu_count=*/1);
    cmgs.push_back(cmg);
  }
  for (auto& cmg : cmgs) cmg.attach_numa(MemoryKind::kHBM, 8 * kGiB);
  return must_build(std::move(builder));
}

Topology power9_v100() {
  TopologyBuilder builder("POWER9 + V100");
  auto machine = builder.machine();
  std::vector<TopologyBuilder::Node> packages;
  for (unsigned p = 0; p < 2; ++p) {
    auto package = machine.add_package();
    package.add_cores(/*count=*/16, /*pu_count=*/4);
    packages.push_back(package);
  }
  for (auto& package : packages) package.attach_numa(MemoryKind::kDRAM, 256 * kGiB);
  for (auto& package : packages) package.attach_numa(MemoryKind::kGPU, 16 * kGiB);
  return must_build(std::move(builder));
}

const std::vector<NamedTopology>& all_presets() {
  static const std::vector<NamedTopology> presets = {
      {"knl_snc4_flat", &knl_snc4_flat},
      {"knl_snc4_hybrid50", &knl_snc4_hybrid50},
      {"knl_quadrant_cache", &knl_quadrant_cache},
      {"xeon_clx_snc_1lm", &xeon_clx_snc_1lm},
      {"xeon_clx_1lm", &xeon_clx_1lm},
      {"xeon_clx_2lm", &xeon_clx_2lm},
      {"fictitious_fig3", &fictitious_fig3},
      {"fugaku_like", &fugaku_like},
      {"power9_v100", &power9_v100},
  };
  return presets;
}

}  // namespace hetmem::topo
