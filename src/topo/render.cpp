#include "hetmem/topo/render.hpp"

#include <functional>

#include "hetmem/support/units.hpp"

namespace hetmem::topo {

std::string describe_numa_node(const Object& node) {
  std::string out = "NUMANode L#" + std::to_string(node.logical_index()) + " P#" +
                    std::to_string(node.os_index()) + " (" +
                    memory_kind_name(node.memory_kind()) + ", " +
                    support::format_bytes(node.capacity_bytes()) + ")";
  return out;
}

std::string render_tree(const Topology& topology, const RenderOptions& options) {
  std::string out = topology.platform_name() + "\n";

  std::function<void(const Object&, unsigned)> visit = [&](const Object& obj,
                                                           unsigned depth) {
    const std::string indent(static_cast<std::size_t>(depth) * 2, ' ');

    if (obj.type() != ObjType::kMachine) {
      out += indent;
      if (obj.type() == ObjType::kGroup && !obj.subtype().empty()) {
        out += obj.subtype();
      } else {
        out += obj_type_name(obj.type());
      }
      out += " L#" + std::to_string(obj.logical_index());
      if (obj.type() == ObjType::kPU || obj.type() == ObjType::kCore) {
        out += " P#" + std::to_string(obj.os_index());
      }
      if (options.show_cpusets && !obj.cpuset().empty()) {
        out += " cpuset=" + obj.cpuset().to_list_string();
      }
      out += '\n';
    } else {
      out += indent + "Machine (" +
             support::format_bytes(topology.total_memory_bytes()) + " total)\n";
    }

    const unsigned child_depth = depth + 1;
    const std::string child_indent(static_cast<std::size_t>(child_depth) * 2, ' ');
    for (const auto& mem : obj.memory_children()) {
      out += child_indent + describe_numa_node(*mem);
      if (options.show_memory_side_caches && mem->memory_side_cache()) {
        out += " [behind " +
               support::format_bytes(mem->memory_side_cache()->size_bytes) +
               " memory-side cache]";
      }
      out += '\n';
    }

    // Collapse uniform runs of cores to keep big machines readable.
    const auto& children = obj.children();
    for (std::size_t i = 0; i < children.size(); ++i) {
      const Object& child = *children[i];
      if (options.collapse_cores && child.type() == ObjType::kCore) {
        std::size_t j = i;
        while (j + 1 < children.size() && children[j + 1]->type() == ObjType::kCore &&
               children[j + 1]->children().size() == child.children().size()) {
          ++j;
        }
        if (j > i) {
          out += child_indent + "Core L#" + std::to_string(child.logical_index()) +
                 "-" + std::to_string(children[j]->logical_index()) + " (x" +
                 std::to_string(j - i + 1) + ", " +
                 std::to_string(child.children().size()) + " PU each)\n";
          i = j;
          continue;
        }
      }
      visit(child, child_depth);
    }
  };

  visit(topology.root(), 0);
  return out;
}

}  // namespace hetmem::topo
