#include "hetmem/topo/object.hpp"

#include <cassert>

namespace hetmem::topo {

const char* obj_type_name(ObjType type) {
  switch (type) {
    case ObjType::kMachine: return "Machine";
    case ObjType::kPackage: return "Package";
    case ObjType::kGroup: return "Group";
    case ObjType::kL3Cache: return "L3";
    case ObjType::kCore: return "Core";
    case ObjType::kPU: return "PU";
    case ObjType::kNUMANode: return "NUMANode";
  }
  return "?";
}

const char* memory_kind_name(MemoryKind kind) {
  switch (kind) {
    case MemoryKind::kDRAM: return "DRAM";
    case MemoryKind::kHBM: return "HBM";
    case MemoryKind::kNVDIMM: return "NVDIMM";
    case MemoryKind::kNAM: return "NAM";
    case MemoryKind::kGPU: return "GPU";
  }
  return "?";
}

MemoryKind Object::memory_kind() const {
  assert(type_ == ObjType::kNUMANode);
  return memory_kind_;
}

std::uint64_t Object::capacity_bytes() const {
  assert(type_ == ObjType::kNUMANode);
  return capacity_bytes_;
}

const std::optional<MemorySideCache>& Object::memory_side_cache() const {
  assert(type_ == ObjType::kNUMANode);
  return ms_cache_;
}

}  // namespace hetmem::topo
