#include "hetmem/simmem/telemetry.hpp"

namespace hetmem::sim {

namespace {

std::size_t round_up_pow2(std::size_t value) {
  std::size_t pow2 = 1;
  while (pow2 < value) pow2 <<= 1;
  return pow2;
}

}  // namespace

TelemetryRing::TelemetryRing(std::size_t capacity)
    : slots_(round_up_pow2(capacity < 2 ? 2 : capacity)),
      mask_(slots_.size() - 1) {}

bool TelemetryRing::try_push(const TelemetryRecord& record) {
  const std::uint64_t head = head_.load(std::memory_order_relaxed);
  const std::uint64_t tail = tail_.load(std::memory_order_acquire);
  if (head - tail >= slots_.size()) return false;
  slots_[head & mask_] = record;
  head_.store(head + 1, std::memory_order_release);
  return true;
}

bool TelemetryRing::try_pop(TelemetryRecord& out) {
  const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  if (tail == head) return false;
  out = slots_[tail & mask_];
  tail_.store(tail + 1, std::memory_order_release);
  return true;
}

std::size_t TelemetryRing::pop_batch(TelemetryRecord* out, std::size_t max) {
  const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  std::size_t count = static_cast<std::size_t>(head - tail);
  if (count > max) count = max;
  for (std::size_t index = 0; index < count; ++index) {
    out[index] = slots_[(tail + index) & mask_];
  }
  if (count > 0) tail_.store(tail + count, std::memory_order_release);
  return count;
}

SharedTrafficTable::SharedTrafficTable(std::size_t buffer_count)
    : slots_(buffer_count * kFields) {
  for (auto& slot : slots_) slot.store(0.0, std::memory_order_relaxed);
}

void SharedTrafficTable::atomic_add(std::atomic<double>& slot, double delta) {
  double current = slot.load(std::memory_order_relaxed);
  while (!slot.compare_exchange_weak(current, current + delta,
                                     std::memory_order_relaxed)) {
  }
}

void SharedTrafficTable::record(std::uint32_t buffer,
                                const BufferTraffic& delta) {
  std::atomic<double>* base = &slots_[buffer * kFields];
  atomic_add(base[0], delta.reads);
  atomic_add(base[1], delta.writes);
  atomic_add(base[2], delta.llc_misses);
  atomic_add(base[3], delta.memory_bytes);
  atomic_add(base[4], delta.random_accesses);
  atomic_add(base[5], delta.random_misses);
}

BufferTraffic SharedTrafficTable::read(std::uint32_t buffer) const {
  const std::atomic<double>* base = &slots_[buffer * kFields];
  BufferTraffic traffic;
  traffic.reads = base[0].load(std::memory_order_relaxed);
  traffic.writes = base[1].load(std::memory_order_relaxed);
  traffic.llc_misses = base[2].load(std::memory_order_relaxed);
  traffic.memory_bytes = base[3].load(std::memory_order_relaxed);
  traffic.random_accesses = base[4].load(std::memory_order_relaxed);
  traffic.random_misses = base[5].load(std::memory_order_relaxed);
  return traffic;
}

}  // namespace hetmem::sim
