#include "hetmem/simmem/exec.hpp"

#include <algorithm>
#include <cassert>
#include <thread>
#include <unordered_set>

namespace hetmem::sim {

PhaseResult resolve_phase(const SimMachine& machine,
                          const support::Bitmap& initiator,
                          std::vector<ThreadCtx*> contexts, std::string name) {
  const std::size_t node_count = machine.topology().numa_nodes().size();
  PhaseResult result;
  result.name = std::move(name);
  result.nodes.resize(node_count);

  // Per-node working set: unique touched buffers, grouped by current node.
  std::unordered_set<std::uint32_t> touched;
  for (const ThreadCtx* ctx : contexts) {
    for (std::uint32_t index : ctx->touched_buffers()) touched.insert(index);
  }
  for (std::uint32_t index : touched) {
    const BufferInfo& info = machine.info(BufferId{index});
    if (!info.freed) {
      result.nodes[info.node].working_set_bytes += info.declared_bytes;
    }
  }

  // Whether a given worker is local to a node: its own binding when set
  // (multi-socket runs bind ranks to different localities), else the
  // context-wide initiator.
  auto thread_local_to = [&](const ThreadCtx* ctx, std::size_t n) {
    const support::Bitmap& binding =
        ctx->locality().empty() ? initiator : ctx->locality();
    const topo::Object* node = machine.topology().numa_nodes()[n];
    return !binding.empty() && binding.is_subset_of(node->cpuset());
  };

  // Aggregate traffic (split local/remote per node) and count active
  // threads per node.
  std::vector<unsigned> active_threads(node_count, 0);
  std::vector<double> remote_read_bytes(node_count, 0.0);
  std::vector<double> remote_write_bytes(node_count, 0.0);
  for (const ThreadCtx* ctx : contexts) {
    const auto& per_node = ctx->node_traffic();
    for (std::size_t n = 0; n < node_count; ++n) {
      if (!per_node[n].any()) continue;
      ++active_threads[n];
      result.nodes[n].read_bytes += per_node[n].total_read_bytes();
      result.nodes[n].write_bytes += per_node[n].total_write_bytes();
      result.nodes[n].rand_accesses +=
          per_node[n].rand_read_accesses + per_node[n].rand_write_accesses;
      if (!thread_local_to(ctx, n)) {
        remote_read_bytes[n] += per_node[n].total_read_bytes();
        remote_write_bytes[n] += per_node[n].total_write_bytes();
      }
    }
  }

  // Effective node constants for this phase, both locality classes.
  std::vector<EffectiveNodePerf> eff_local(node_count);
  std::vector<EffectiveNodePerf> eff_remote(node_count);
  for (std::size_t n = 0; n < node_count; ++n) {
    const std::uint64_t ws = result.nodes[n].working_set_bytes;
    eff_local[n] =
        machine.perf_model().effective(static_cast<unsigned>(n), ws, true);
    eff_remote[n] =
        machine.perf_model().effective(static_cast<unsigned>(n), ws, false);
  }

  // Pass 1: bandwidth times and provisional phase length with idle latency.
  // Local and remote shares each move at their class's rate (serialized —
  // the controller serves both streams).
  auto node_bandwidth_time = [&](std::size_t n) {
    const NodePhaseStats& stats = result.nodes[n];
    if (stats.read_bytes + stats.write_bytes <= 0.0) return 0.0;
    const double threads = std::max(1u, active_threads[n]);
    auto class_time = [&](double bytes, double peak, double per_thread) {
      if (bytes <= 0.0) return 0.0;
      return bytes / std::min(peak, threads * per_thread) * 1e9;
    };
    double t = 0.0;
    t += class_time(stats.read_bytes - remote_read_bytes[n],
                    eff_local[n].read_bw, eff_local[n].per_thread_read_bw);
    t += class_time(remote_read_bytes[n], eff_remote[n].read_bw,
                    eff_remote[n].per_thread_read_bw);
    t += class_time(stats.write_bytes - remote_write_bytes[n],
                    eff_local[n].write_bw, eff_local[n].per_thread_write_bw);
    t += class_time(remote_write_bytes[n], eff_remote[n].write_bw,
                    eff_remote[n].per_thread_write_bw);
    return t;
  };

  // Latency per node with a load multiplier applied to both classes.
  std::vector<double> load_multiplier(node_count, 1.0);
  auto thread_time = [&](const ThreadCtx* ctx) {
    double t = ctx->compute_ns();
    const auto& per_node = ctx->node_traffic();
    for (std::size_t n = 0; n < node_count; ++n) {
      const double accesses =
          per_node[n].rand_read_accesses + per_node[n].rand_write_accesses;
      if (accesses > 0.0) {
        const double base = thread_local_to(ctx, n) ? eff_local[n].latency_ns
                                                    : eff_remote[n].latency_ns;
        t += accesses * base * load_multiplier[n] / ctx->mlp();
      }
    }
    return t;
  };

  double bw_max = 0.0;
  for (std::size_t n = 0; n < node_count; ++n) {
    result.nodes[n].bandwidth_time_ns = node_bandwidth_time(n);
    bw_max = std::max(bw_max, result.nodes[n].bandwidth_time_ns);
  }
  double lat_max = 0.0;
  double compute_max = 0.0;
  for (const ThreadCtx* ctx : contexts) {
    lat_max = std::max(lat_max, thread_time(ctx));
    compute_max = std::max(compute_max, ctx->compute_ns());
  }
  double provisional = std::max(bw_max, lat_max);

  // Pass 2: loaded-latency refinement from utilization over the provisional
  // phase length (single fixed iteration; keeps the resolver deterministic).
  if (provisional > 0.0) {
    for (std::size_t n = 0; n < node_count; ++n) {
      const NodePhaseStats& stats = result.nodes[n];
      if (stats.read_bytes + stats.write_bytes <= 0.0) continue;
      // Fraction of the phase this node's bandwidth was busy.
      const double utilization =
          std::min(1.0, stats.bandwidth_time_ns / provisional);
      result.nodes[n].utilization = utilization;
      const double k = machine.perf_model().node(static_cast<unsigned>(n)).loaded_latency_k;
      load_multiplier[n] = 1.0 + k * utilization * utilization;
    }
    lat_max = 0.0;
    for (const ThreadCtx* ctx : contexts) {
      lat_max = std::max(lat_max, thread_time(ctx));
    }
  }

  // Per-node stall attribution for the profiler (thread-ns summed).
  for (const ThreadCtx* ctx : contexts) {
    const auto& per_node = ctx->node_traffic();
    for (std::size_t n = 0; n < node_count; ++n) {
      const double accesses =
          per_node[n].rand_read_accesses + per_node[n].rand_write_accesses;
      if (accesses > 0.0) {
        const double base = thread_local_to(ctx, n) ? eff_local[n].latency_ns
                                                    : eff_remote[n].latency_ns;
        result.nodes[n].latency_stall_ns +=
            accesses * base * load_multiplier[n] / ctx->mlp();
      }
    }
  }

  result.bandwidth_time_ns_max = bw_max;
  result.latency_time_ns_max = lat_max;
  result.compute_ns_max = compute_max;
  result.sim_ns = std::max(bw_max, lat_max);
  return result;
}

ExecutionContext::ExecutionContext(SimMachine& machine, support::Bitmap initiator,
                                   unsigned thread_count)
    : machine_(&machine), initiator_(std::move(initiator)) {
  assert(thread_count >= 1);
  const std::size_t node_count = machine.topology().numa_nodes().size();
  contexts_.reserve(thread_count);
  rings_.reserve(thread_count);
  latest_.resize(thread_count);
  for (unsigned i = 0; i < thread_count; ++i) {
    contexts_.push_back(std::make_unique<ThreadCtx>(node_count));
    rings_.push_back(std::make_unique<TelemetryRing>());
  }
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  pool_ = std::make_unique<support::ThreadPool>(std::min(thread_count, hw));
}

void ExecutionContext::set_telemetry_mode(TelemetryMode mode) {
  assert(history_.empty() && "telemetry mode must be set before any phase");
  telemetry_mode_ = mode;
}

void ExecutionContext::set_mlp(double mlp) {
  for (auto& ctx : contexts_) ctx->set_mlp(mlp);
}

support::Status ExecutionContext::set_thread_localities(
    const std::vector<support::Bitmap>& localities) {
  if (localities.size() != contexts_.size()) {
    return support::make_error(support::Errc::kInvalidArgument,
                               "need one locality per simulated thread");
  }
  for (std::size_t i = 0; i < localities.size(); ++i) {
    contexts_[i]->set_locality(localities[i]);
  }
  return {};
}

const PhaseResult& ExecutionContext::run_phase(std::string name, std::size_t items,
                                               const PhaseBody& body) {
  for (auto& ctx : contexts_) ctx->reset_phase();

  // Simulated threads are distributed over the (possibly smaller) pool:
  // each pool worker runs a contiguous range of simulated threads, each
  // simulated thread a contiguous slice of the items.
  const unsigned sim_threads = thread_count();
  const bool publish_rings = telemetry_mode_ == TelemetryMode::kRings;
  pool_->parallel_for(
      sim_threads, [&](std::size_t, std::size_t first_sim, std::size_t last_sim) {
        for (std::size_t sim = first_sim; sim < last_sim; ++sim) {
          const std::size_t base = items / sim_threads;
          const std::size_t extra = items % sim_threads;
          const std::size_t begin = sim * base + std::min(sim, static_cast<std::size_t>(extra));
          const std::size_t end = begin + base + (sim < extra ? 1 : 0);
          body(*contexts_[sim], static_cast<unsigned>(sim), begin, end);
          if (publish_rings) {
            // Publish this thread's updated cumulative counters for every
            // buffer it touched this phase — the only telemetry hand-off;
            // nothing here is shared with other producers. On a full ring,
            // stop and flag: the drain recovers the rest from the thread's
            // counters directly.
            ThreadCtx& ctx = *contexts_[sim];
            TelemetryRing& ring = *rings_[sim];
            const auto& cumulative = ctx.buffer_traffic();
            for (std::uint32_t buffer : ctx.touched_buffers()) {
              if (!ring.try_push({buffer, cumulative[buffer]})) {
                ring.note_overflow();
                break;
              }
            }
          }
        }
      });

  std::vector<ThreadCtx*> raw;
  raw.reserve(contexts_.size());
  for (auto& ctx : contexts_) raw.push_back(ctx.get());
  history_.push_back(resolve_phase(*machine_, initiator_, std::move(raw),
                                   std::move(name)));
  clock_ns_ += history_.back().sim_ns;
  // Fold the phase's traffic into the machine's power telemetry before the
  // observer runs, so an epoch hook firing from the observer sees draw that
  // already includes this phase (docs/POWER.md).
  {
    const PhaseResult& phase = history_.back();
    if (phase.sim_ns > 0.0) {
      node_bytes_scratch_.resize(phase.nodes.size() * 2);
      std::uint64_t* reads = node_bytes_scratch_.data();
      std::uint64_t* writes = reads + phase.nodes.size();
      for (std::size_t n = 0; n < phase.nodes.size(); ++n) {
        reads[n] = static_cast<std::uint64_t>(phase.nodes[n].read_bytes);
        writes[n] = static_cast<std::uint64_t>(phase.nodes[n].write_bytes);
      }
      machine_->record_node_traffic_batch(reads, writes, phase.nodes.size(),
                                          phase.sim_ns);
    }
  }
  // The observer runs after the clock advance so it sees a consistent view;
  // it may migrate buffers and charge_overhead_ns(), but must not recurse
  // into run_phase. Index-based access: the observer must not grow history_.
  const std::size_t resolved = history_.size() - 1;
  if (phase_observer_) phase_observer_(history_[resolved]);
  return history_[resolved];
}

std::vector<BufferTraffic> ExecutionContext::merged_buffer_traffic() const {
  if (telemetry_mode_ == TelemetryMode::kRings) {
    drain_telemetry();
    return merged_;
  }
  std::vector<BufferTraffic> merged;
  for (const auto& ctx : contexts_) {
    const auto& per_buffer = ctx->buffer_traffic();
    if (merged.size() < per_buffer.size()) merged.resize(per_buffer.size());
    for (std::size_t i = 0; i < per_buffer.size(); ++i) {
      merged[i].reads += per_buffer[i].reads;
      merged[i].writes += per_buffer[i].writes;
      merged[i].llc_misses += per_buffer[i].llc_misses;
      merged[i].memory_bytes += per_buffer[i].memory_bytes;
      merged[i].random_accesses += per_buffer[i].random_accesses;
      merged[i].random_misses += per_buffer[i].random_misses;
    }
  }
  return merged;
}

namespace {

/// The six-field add every merge path uses; starting from zero-initialized
/// accumulators and adding in ascending thread order keeps the result
/// bit-identical across the ring and legacy paths (adding 0.0 to a
/// non-negative counter preserves its bits).
void add_traffic(BufferTraffic& into, const BufferTraffic& from) {
  into.reads += from.reads;
  into.writes += from.writes;
  into.llc_misses += from.llc_misses;
  into.memory_bytes += from.memory_bytes;
  into.random_accesses += from.random_accesses;
  into.random_misses += from.random_misses;
}

bool traffic_equal_bits(const BufferTraffic& a, const BufferTraffic& b) {
  return a.reads == b.reads && a.writes == b.writes &&
         a.llc_misses == b.llc_misses && a.memory_bytes == b.memory_bytes &&
         a.random_accesses == b.random_accesses &&
         a.random_misses == b.random_misses;
}

}  // namespace

void ExecutionContext::drain_telemetry() const {
  drain_scratch_.clear();
  auto mark_dirty = [&](std::uint32_t buffer) {
    if (dirty_mark_.size() <= buffer) dirty_mark_.resize(buffer + 1, 0);
    if (dirty_mark_[buffer]) return;
    dirty_mark_[buffer] = 1;
    drain_scratch_.push_back(buffer);
  };

  for (std::size_t t = 0; t < contexts_.size(); ++t) {
    TelemetryRing& ring = *rings_[t];
    std::vector<BufferTraffic>& shadow = latest_[t];
    TelemetryRecord chunk[128];
    for (std::size_t popped = ring.pop_batch(chunk, 128); popped > 0;
         popped = ring.pop_batch(chunk, 128)) {
      for (std::size_t index = 0; index < popped; ++index) {
        const TelemetryRecord& record = chunk[index];
        if (shadow.size() <= record.buffer) shadow.resize(record.buffer + 1);
        shadow[record.buffer] = record.cumulative;
        mark_dirty(record.buffer);
      }
    }
    if (ring.consume_overflow()) {
      // The ring filled mid-phase; the workers are quiescent now, so read
      // the thread's cumulative counters directly and dirty whatever moved.
      const auto& full = contexts_[t]->buffer_traffic();
      if (shadow.size() < full.size()) shadow.resize(full.size());
      for (std::uint32_t b = 0; b < full.size(); ++b) {
        if (!traffic_equal_bits(shadow[b], full[b])) {
          shadow[b] = full[b];
          mark_dirty(b);
        }
      }
    }
  }

  for (std::uint32_t buffer : drain_scratch_) {
    BufferTraffic sum;
    for (const std::vector<BufferTraffic>& shadow : latest_) {
      if (buffer < shadow.size()) add_traffic(sum, shadow[buffer]);
    }
    if (merged_.size() <= buffer) merged_.resize(buffer + 1);
    merged_[buffer] = sum;
    dirty_journal_.push_back(buffer);
    dirty_mark_[buffer] = 0;
  }
}

void ExecutionContext::read_traffic_deltas(TelemetryReader& reader,
                                           const DeltaFn& fn) const {
  if (telemetry_mode_ == TelemetryMode::kLegacyMerge) {
    // Baseline path: full merge, full-range diff — exactly what the
    // pre-ring sampler did every epoch.
    const std::vector<BufferTraffic> merged = merged_buffer_traffic();
    if (reader.snapshot_.size() < merged.size()) {
      reader.snapshot_.resize(merged.size());
    }
    for (std::uint32_t index = 0; index < merged.size(); ++index) {
      const BufferTraffic& now = merged[index];
      const BufferTraffic& then = reader.snapshot_[index];
      BufferTraffic delta;
      delta.reads = now.reads - then.reads;
      delta.writes = now.writes - then.writes;
      delta.llc_misses = now.llc_misses - then.llc_misses;
      delta.memory_bytes = now.memory_bytes - then.memory_bytes;
      delta.random_accesses = now.random_accesses - then.random_accesses;
      delta.random_misses = now.random_misses - then.random_misses;
      const bool any = delta.reads > 0.0 || delta.writes > 0.0 ||
                       delta.memory_bytes > 0.0;
      if (!any) continue;
      reader.snapshot_[index] = now;
      fn(index, delta);
    }
    return;
  }

  drain_telemetry();
  // Journal entries since this reader's cursor, ascending and unique: the
  // sampler emits samples in ascending buffer order, so the sparse path
  // must too.
  read_scratch_.assign(dirty_journal_.begin() +
                           static_cast<std::ptrdiff_t>(reader.journal_cursor_),
                       dirty_journal_.end());
  reader.journal_cursor_ = dirty_journal_.size();
  std::sort(read_scratch_.begin(), read_scratch_.end());
  read_scratch_.erase(std::unique(read_scratch_.begin(), read_scratch_.end()),
                      read_scratch_.end());
  for (std::uint32_t index : read_scratch_) {
    if (reader.snapshot_.size() <= index) reader.snapshot_.resize(index + 1);
    const BufferTraffic& now = merged_[index];
    const BufferTraffic& then = reader.snapshot_[index];
    BufferTraffic delta;
    delta.reads = now.reads - then.reads;
    delta.writes = now.writes - then.writes;
    delta.llc_misses = now.llc_misses - then.llc_misses;
    delta.memory_bytes = now.memory_bytes - then.memory_bytes;
    delta.random_accesses = now.random_accesses - then.random_accesses;
    delta.random_misses = now.random_misses - then.random_misses;
    const bool any = delta.reads > 0.0 || delta.writes > 0.0 ||
                     delta.memory_bytes > 0.0;
    if (!any) continue;  // duplicate journal entry or below-threshold churn
    reader.snapshot_[index] = now;
    fn(index, delta);
  }
}

}  // namespace hetmem::sim
