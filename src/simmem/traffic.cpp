#include "hetmem/simmem/traffic.hpp"

#include <cassert>

namespace hetmem::sim {

ThreadCtx::ThreadCtx(std::size_t node_count) : node_traffic_(node_count) {}

BufferTraffic& ThreadCtx::buffer_slot(BufferId buffer) {
  assert(buffer.valid());
  if (buffer_traffic_.size() <= buffer.index) {
    buffer_traffic_.resize(buffer.index + 1);
    touched_mark_.resize(buffer.index + 1, 0);
  }
  return buffer_traffic_[buffer.index];
}

void ThreadCtx::touch(BufferId buffer) {
  buffer_slot(buffer);  // ensure marks sized
  if (touched_mark_[buffer.index] == 0) {
    touched_mark_[buffer.index] = 1;
    touched_.push_back(buffer.index);
  }
}

void ThreadCtx::record_seq_read(unsigned node, BufferId buffer,
                                double program_bytes, double memory_fraction) {
  assert(node < node_traffic_.size());
  node_traffic_[node].seq_read_bytes += program_bytes * memory_fraction;
  BufferTraffic& bt = buffer_slot(buffer);
  bt.reads += program_bytes / kLineBytes;
  bt.llc_misses += program_bytes * memory_fraction / kLineBytes;
  bt.memory_bytes += program_bytes * memory_fraction;
  touch(buffer);
}

void ThreadCtx::record_seq_write(unsigned node, BufferId buffer,
                                 double program_bytes, double memory_fraction) {
  assert(node < node_traffic_.size());
  node_traffic_[node].seq_write_bytes += program_bytes * memory_fraction;
  BufferTraffic& bt = buffer_slot(buffer);
  bt.writes += program_bytes / kLineBytes;
  bt.llc_misses += program_bytes * memory_fraction / kLineBytes;
  bt.memory_bytes += program_bytes * memory_fraction;
  touch(buffer);
}

void ThreadCtx::record_rand_read(unsigned node, BufferId buffer, double accesses,
                                 double miss_rate) {
  assert(node < node_traffic_.size());
  const double misses = accesses * miss_rate;
  NodeTraffic& nt = node_traffic_[node];
  nt.rand_read_accesses += misses;
  nt.rand_read_bytes += misses * kLineBytes;
  BufferTraffic& bt = buffer_slot(buffer);
  bt.reads += accesses;
  bt.llc_misses += misses;
  bt.memory_bytes += misses * kLineBytes;
  bt.random_accesses += accesses;
  bt.random_misses += misses;
  touch(buffer);
}

void ThreadCtx::record_rand_write(unsigned node, BufferId buffer, double accesses,
                                  double miss_rate) {
  assert(node < node_traffic_.size());
  const double misses = accesses * miss_rate;
  NodeTraffic& nt = node_traffic_[node];
  nt.rand_write_accesses += misses;
  nt.rand_write_bytes += misses * kLineBytes;
  BufferTraffic& bt = buffer_slot(buffer);
  bt.writes += accesses;
  bt.llc_misses += misses;
  bt.memory_bytes += misses * kLineBytes;
  bt.random_accesses += accesses;
  bt.random_misses += misses;
  touch(buffer);
}

void ThreadCtx::reset_phase() {
  for (NodeTraffic& nt : node_traffic_) nt = NodeTraffic{};
  for (std::uint32_t index : touched_) touched_mark_[index] = 0;
  touched_.clear();
  compute_ns_ = 0.0;
}

}  // namespace hetmem::sim
