#include "hetmem/simmem/machine.hpp"

#include <algorithm>
#include <cstring>

#include "hetmem/fault/fault.hpp"
#include "hetmem/support/units.hpp"

namespace hetmem::sim {

using support::Errc;
using support::make_error;
using support::Result;
using support::Status;

SimMachine::SimMachine(topo::Topology topology, MachinePerfModel model)
    : topology_(std::move(topology)),
      model_(std::move(model)),
      used_(topology_.numa_nodes().size(), 0),
      online_(topology_.numa_nodes().size(), 1),
      llc_bytes_(static_cast<std::uint64_t>(27.5 * 1024 * 1024)) {
  // A perf model sized for a different topology is a caller bug, but one a
  // production machine must survive: self-heal by recalibrating for the
  // actual topology and record the repair instead of asserting.
  if (model_.node_count() != topology_.numa_nodes().size()) {
    model_ = MachinePerfModel::calibrated_for(topology_);
    model_repaired_ = true;
  }
}

namespace {
// Evaluation-order-safe helper for the delegating constructor: calibrate
// before the topology is moved into the machine.
MachinePerfModel calibrate_then(const topo::Topology& topology) {
  return MachinePerfModel::calibrated_for(topology);
}
}  // namespace

SimMachine::SimMachine(topo::Topology topology)
    : SimMachine([&] {
        MachinePerfModel model = calibrate_then(topology);
        return std::pair<topo::Topology, MachinePerfModel>(std::move(topology),
                                                           std::move(model));
      }()) {}

SimMachine::SimMachine(std::pair<topo::Topology, MachinePerfModel> parts)
    : SimMachine(std::move(parts.first), std::move(parts.second)) {}

Result<BufferId> SimMachine::allocate(std::uint64_t declared_bytes, unsigned node,
                                      std::string label, std::size_t backing_bytes) {
  if (node >= used_.size()) {
    return make_error(Errc::kInvalidArgument,
                      "no NUMA node with logical index " + std::to_string(node));
  }
  if (declared_bytes == 0) {
    return make_error(Errc::kInvalidArgument, "zero-byte allocation");
  }
  if (faults_ != nullptr) {
    if (faults_->should_fail(fault::site::kMachineAllocTransient)) {
      return make_error(Errc::kTransient,
                        "injected transient allocation failure on node " +
                            std::to_string(node));
    }
    if (faults_->should_fail(fault::site::kMachineNodeOffline)) {
      online_[node] = 0;
    }
  }
  if (online_[node] == 0) {
    return make_error(Errc::kOutOfCapacity,
                      "node " + std::to_string(node) + " is offline");
  }
  const std::uint64_t capacity = topology_.numa_nodes()[node]->capacity_bytes();
  if (used_[node] + declared_bytes > capacity) {
    return make_error(Errc::kOutOfCapacity,
                      "node " + std::to_string(node) + " has " +
                          support::format_bytes(capacity - used_[node]) +
                          " free, need " + support::format_bytes(declared_bytes));
  }

  if (backing_bytes == 0) {
    backing_bytes = static_cast<std::size_t>(
        std::min<std::uint64_t>(declared_bytes, 64 * support::kKiB));
  }

  Slot slot;
  slot.info.label = std::move(label);
  slot.info.node = node;
  slot.info.declared_bytes = declared_bytes;
  slot.info.backing_bytes = backing_bytes;
  slot.storage = std::make_unique<std::byte[]>(backing_bytes);
  std::memset(slot.storage.get(), 0, backing_bytes);

  used_[node] += declared_bytes;
  buffers_.push_back(std::move(slot));
  return BufferId{static_cast<std::uint32_t>(buffers_.size() - 1)};
}

Status SimMachine::free(BufferId id) {
  if (!id.valid() || id.index >= buffers_.size()) {
    return make_error(Errc::kInvalidArgument, "invalid buffer id");
  }
  Slot& slot = buffers_[id.index];
  if (slot.info.freed) {
    return make_error(Errc::kInvalidArgument, "double free of buffer " +
                                                  slot.info.label);
  }
  slot.info.freed = true;
  used_[slot.info.node] -= slot.info.declared_bytes;
  slot.storage.reset();
  return {};
}

Status SimMachine::migrate(BufferId id, unsigned destination_node) {
  if (!id.valid() || id.index >= buffers_.size()) {
    return make_error(Errc::kInvalidArgument, "invalid buffer id");
  }
  if (destination_node >= used_.size()) {
    return make_error(Errc::kInvalidArgument, "no such destination node");
  }
  Slot& slot = buffers_[id.index];
  if (slot.info.freed) {
    return make_error(Errc::kInvalidArgument, "migrate of freed buffer");
  }
  if (slot.info.node == destination_node) return {};
  if (faults_ != nullptr &&
      faults_->should_fail(fault::site::kMachineMigrateTransient)) {
    return make_error(Errc::kTransient,
                      "injected transient migration failure for buffer " +
                          slot.info.label);
  }
  if (online_[destination_node] == 0) {
    return make_error(Errc::kOutOfCapacity,
                      "destination node " + std::to_string(destination_node) +
                          " is offline");
  }
  const std::uint64_t capacity =
      topology_.numa_nodes()[destination_node]->capacity_bytes();
  if (used_[destination_node] + slot.info.declared_bytes > capacity) {
    return make_error(Errc::kOutOfCapacity,
                      "destination node " + std::to_string(destination_node) +
                          " cannot hold " +
                          support::format_bytes(slot.info.declared_bytes));
  }
  used_[slot.info.node] -= slot.info.declared_bytes;
  used_[destination_node] += slot.info.declared_bytes;
  slot.info.node = destination_node;
  return {};
}

namespace {
const BufferInfo& invalid_buffer_info() {
  static const BufferInfo sentinel{"<invalid-buffer>", 0, 0, 0, true};
  return sentinel;
}
}  // namespace

const BufferInfo& SimMachine::info(BufferId id) const {
  if (!id.valid() || id.index >= buffers_.size()) return invalid_buffer_info();
  return buffers_[id.index].info;
}

Result<BufferInfo> SimMachine::info_checked(BufferId id) const {
  if (!id.valid() || id.index >= buffers_.size()) {
    return make_error(Errc::kInvalidArgument, "invalid buffer id");
  }
  return buffers_[id.index].info;
}

std::byte* SimMachine::backing(BufferId id) {
  if (!id.valid() || id.index >= buffers_.size()) return nullptr;
  if (buffers_[id.index].info.freed) return nullptr;
  return buffers_[id.index].storage.get();
}

const std::byte* SimMachine::backing(BufferId id) const {
  if (!id.valid() || id.index >= buffers_.size()) return nullptr;
  if (buffers_[id.index].info.freed) return nullptr;
  return buffers_[id.index].storage.get();
}

std::uint64_t SimMachine::capacity_bytes(unsigned node) const {
  if (node >= used_.size()) return 0;
  return topology_.numa_nodes()[node]->capacity_bytes();
}

std::uint64_t SimMachine::used_bytes(unsigned node) const {
  if (node >= used_.size()) return 0;
  return used_[node];
}

std::uint64_t SimMachine::available_bytes(unsigned node) const {
  if (node >= used_.size() || online_[node] == 0) return 0;
  return capacity_bytes(node) - used_bytes(node);
}

Status SimMachine::set_node_online(unsigned node, bool online) {
  if (node >= online_.size()) {
    return make_error(Errc::kInvalidArgument,
                      "no NUMA node with logical index " + std::to_string(node));
  }
  online_[node] = online ? 1 : 0;
  return {};
}

bool SimMachine::node_online(unsigned node) const {
  return node < online_.size() && online_[node] != 0;
}

std::size_t SimMachine::live_buffer_count() const {
  return static_cast<std::size_t>(
      std::count_if(buffers_.begin(), buffers_.end(),
                    [](const Slot& slot) { return !slot.info.freed; }));
}

}  // namespace hetmem::sim
