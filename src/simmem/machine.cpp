#include "hetmem/simmem/machine.hpp"

#include <algorithm>
#include <cstring>

#include "hetmem/fault/fault.hpp"
#include "hetmem/support/units.hpp"

namespace hetmem::sim {

using support::Errc;
using support::make_error;
using support::Result;
using support::Status;

SimMachine::SimMachine(topo::Topology topology, MachinePerfModel model)
    : topology_(std::move(topology)),
      model_(std::move(model)),
      chunks_(std::make_unique<std::atomic<Slot*>[]>(kMaxChunks)),
      node_count_(topology_.numa_nodes().size()),
      llc_bytes_(static_cast<std::uint64_t>(27.5 * 1024 * 1024)) {
  used_ = std::make_unique<std::atomic<std::uint64_t>[]>(node_count_);
  online_ = std::make_unique<std::atomic<std::uint8_t>[]>(node_count_);
  telemetry_ = std::make_unique<NodeCounters[]>(node_count_);
  node_power_.resize(node_count_);
  for (std::size_t n = 0; n < node_count_; ++n) {
    used_[n].store(0, std::memory_order_relaxed);
    online_[n].store(1, std::memory_order_relaxed);
  }
  // A perf model sized for a different topology is a caller bug, but one a
  // production machine must survive: self-heal by recalibrating for the
  // actual topology and record the repair instead of asserting.
  if (model_.node_count() != node_count_) {
    model_ = MachinePerfModel::calibrated_for(topology_);
    model_repaired_ = true;
  }
}

namespace {
// Evaluation-order-safe helper for the delegating constructor: calibrate
// before the topology is moved into the machine.
MachinePerfModel calibrate_then(const topo::Topology& topology) {
  return MachinePerfModel::calibrated_for(topology);
}
}  // namespace

SimMachine::SimMachine(topo::Topology topology)
    : SimMachine([&] {
        MachinePerfModel model = calibrate_then(topology);
        return std::pair<topo::Topology, MachinePerfModel>(std::move(topology),
                                                           std::move(model));
      }()) {}

SimMachine::SimMachine(std::pair<topo::Topology, MachinePerfModel> parts)
    : SimMachine(std::move(parts.first), std::move(parts.second)) {}

SimMachine::~SimMachine() {
  // Chunks are usually created densely, but concurrent claims can create
  // them slightly out of order — scan the whole table.
  for (std::size_t c = 0; c < kMaxChunks; ++c) {
    delete[] chunks_[c].load(std::memory_order_acquire);
  }
}

SimMachine::Slot* SimMachine::find_slot(BufferId id) const {
  if (!id.valid() || id.index >= next_slot_.load(std::memory_order_acquire)) {
    return nullptr;
  }
  Slot* chunk = chunks_[id.index >> kSlotChunkShift].load(std::memory_order_acquire);
  if (chunk == nullptr) return nullptr;
  Slot* slot = &chunk[id.index & (kSlotsPerChunk - 1)];
  // An acquire load of the state pairs with the release store at publication
  // so the immutable fields (label, sizes, storage) are visible.
  if (slot->state.load(std::memory_order_acquire) == SlotState::kUnpublished) {
    return nullptr;
  }
  return slot;
}

SimMachine::Slot* SimMachine::claim_slot(std::uint32_t& index_out) {
  const std::uint32_t index = next_slot_.fetch_add(1, std::memory_order_acq_rel);
  if (index >= kMaxChunks * kSlotsPerChunk) return nullptr;  // table exhausted
  const std::size_t chunk_index = index >> kSlotChunkShift;
  Slot* chunk = chunks_[chunk_index].load(std::memory_order_acquire);
  if (chunk == nullptr) {
    std::lock_guard<std::mutex> lock(chunk_growth_mutex_);
    chunk = chunks_[chunk_index].load(std::memory_order_relaxed);
    if (chunk == nullptr) {
      chunk = new Slot[kSlotsPerChunk];
      chunks_[chunk_index].store(chunk, std::memory_order_release);
    }
  }
  index_out = index;
  return &chunk[index & (kSlotsPerChunk - 1)];
}

bool SimMachine::reserve_capacity(unsigned node, std::uint64_t bytes) {
  const std::uint64_t capacity = topology_.numa_nodes()[node]->capacity_bytes();
  std::uint64_t used = used_[node].load(std::memory_order_relaxed);
  do {
    if (used + bytes > capacity) return false;
  } while (!used_[node].compare_exchange_weak(used, used + bytes,
                                              std::memory_order_relaxed));
  return true;
}

Result<BufferId> SimMachine::allocate(std::uint64_t declared_bytes, unsigned node,
                                      std::string label, std::size_t backing_bytes) {
  if (node >= node_count_) {
    return make_error(Errc::kInvalidArgument,
                      "no NUMA node with logical index " + std::to_string(node));
  }
  if (declared_bytes == 0) {
    return make_error(Errc::kInvalidArgument, "zero-byte allocation");
  }
  if (faults_ != nullptr) {
    if (faults_->should_fail(fault::site::kMachineAllocTransient)) {
      telemetry_[node].transient_faults.fetch_add(1, std::memory_order_relaxed);
      return make_error(Errc::kTransient,
                        "injected transient allocation failure on node " +
                            std::to_string(node));
    }
    if (faults_->should_fail(fault::site::kMachineNodeOffline)) {
      online_[node].store(0, std::memory_order_relaxed);
    }
  }
  if (online_[node].load(std::memory_order_relaxed) == 0) {
    telemetry_[node].offline_rejections.fetch_add(1, std::memory_order_relaxed);
    return make_error(Errc::kOutOfCapacity,
                      "node " + std::to_string(node) + " is offline");
  }
  if (!reserve_capacity(node, declared_bytes)) {
    const std::uint64_t capacity = topology_.numa_nodes()[node]->capacity_bytes();
    const std::uint64_t used = used_[node].load(std::memory_order_relaxed);
    telemetry_[node].capacity_rejections.fetch_add(1, std::memory_order_relaxed);
    return make_error(Errc::kOutOfCapacity,
                      "node " + std::to_string(node) + " has " +
                          support::format_bytes(capacity > used ? capacity - used
                                                                : 0) +
                          " free, need " + support::format_bytes(declared_bytes));
  }

  if (backing_bytes == 0) {
    backing_bytes = static_cast<std::size_t>(
        std::min<std::uint64_t>(declared_bytes, 64 * support::kKiB));
  }

  std::uint32_t index = 0;
  Slot* slot = claim_slot(index);
  if (slot == nullptr) {
    used_[node].fetch_sub(declared_bytes, std::memory_order_relaxed);
    return make_error(Errc::kOutOfCapacity, "buffer table exhausted");
  }
  slot->label = std::move(label);
  slot->declared_bytes = declared_bytes;
  slot->backing_bytes = backing_bytes;
  slot->storage = std::make_unique<std::byte[]>(backing_bytes);
  std::memset(slot->storage.get(), 0, backing_bytes);
  slot->node.store(node, std::memory_order_relaxed);
  slot->data.store(slot->storage.get(), std::memory_order_release);
  // Publication point: readers that see kLive also see the fields above.
  slot->state.store(SlotState::kLive, std::memory_order_release);
  live_count_.fetch_add(1, std::memory_order_relaxed);
  return BufferId{index};
}

Status SimMachine::free(BufferId id) {
  Slot* slot = find_slot(id);
  if (slot == nullptr) {
    return make_error(Errc::kInvalidArgument, "invalid buffer id");
  }
  std::lock_guard<std::mutex> lock(slot->lifecycle);
  if (slot->state.load(std::memory_order_relaxed) != SlotState::kLive) {
    return make_error(Errc::kInvalidArgument,
                      "double free of buffer " + slot->label);
  }
  slot->state.store(SlotState::kFreed, std::memory_order_release);
  used_[slot->node.load(std::memory_order_relaxed)].fetch_sub(
      slot->declared_bytes, std::memory_order_relaxed);
  slot->data.store(nullptr, std::memory_order_release);
  slot->storage.reset();
  live_count_.fetch_sub(1, std::memory_order_relaxed);
  return {};
}

Status SimMachine::migrate(BufferId id, unsigned destination_node) {
  Slot* slot = find_slot(id);
  if (slot == nullptr) {
    return make_error(Errc::kInvalidArgument, "invalid buffer id");
  }
  if (destination_node >= node_count_) {
    return make_error(Errc::kInvalidArgument, "no such destination node");
  }
  std::lock_guard<std::mutex> lock(slot->lifecycle);
  if (slot->state.load(std::memory_order_relaxed) != SlotState::kLive) {
    return make_error(Errc::kInvalidArgument, "migrate of freed buffer");
  }
  const unsigned source = slot->node.load(std::memory_order_relaxed);
  if (source == destination_node) return {};
  if (faults_ != nullptr &&
      faults_->should_fail(fault::site::kMachineMigrateTransient)) {
    // Attributed to the destination: the write side is what the injected
    // busy-page/migration-slot fault models.
    telemetry_[destination_node].transient_faults.fetch_add(
        1, std::memory_order_relaxed);
    return make_error(Errc::kTransient,
                      "injected transient migration failure for buffer " +
                          slot->label);
  }
  if (faults_ != nullptr &&
      faults_->should_fail(fault::site::kMachineMigrateStall)) {
    // A wedged migration thread: like the transient site but typically
    // configured with a burst so whole epochs of attempts fail — the
    // stalled-progress signature the recover watchdog/breakers detect.
    telemetry_[destination_node].transient_faults.fetch_add(
        1, std::memory_order_relaxed);
    return make_error(Errc::kTransient,
                      "injected migration stall for buffer " + slot->label);
  }
  if (online_[destination_node].load(std::memory_order_relaxed) == 0) {
    telemetry_[destination_node].offline_rejections.fetch_add(
        1, std::memory_order_relaxed);
    return make_error(Errc::kOutOfCapacity,
                      "destination node " + std::to_string(destination_node) +
                          " is offline");
  }
  if (!reserve_capacity(destination_node, slot->declared_bytes)) {
    telemetry_[destination_node].capacity_rejections.fetch_add(
        1, std::memory_order_relaxed);
    return make_error(Errc::kOutOfCapacity,
                      "destination node " + std::to_string(destination_node) +
                          " cannot hold " +
                          support::format_bytes(slot->declared_bytes));
  }
  used_[source].fetch_sub(slot->declared_bytes, std::memory_order_relaxed);
  slot->node.store(destination_node, std::memory_order_relaxed);
  return {};
}

namespace {
BufferInfo invalid_buffer_info() {
  return BufferInfo{"<invalid-buffer>", 0, 0, 0, true};
}
}  // namespace

BufferInfo SimMachine::info(BufferId id) const {
  const Slot* slot = find_slot(id);
  if (slot == nullptr) return invalid_buffer_info();
  BufferInfo snapshot;
  snapshot.label = slot->label;
  snapshot.node = slot->node.load(std::memory_order_relaxed);
  snapshot.declared_bytes = slot->declared_bytes;
  snapshot.backing_bytes = slot->backing_bytes;
  snapshot.freed = slot->state.load(std::memory_order_acquire) == SlotState::kFreed;
  return snapshot;
}

Result<BufferInfo> SimMachine::info_checked(BufferId id) const {
  if (find_slot(id) == nullptr) {
    return make_error(Errc::kInvalidArgument, "invalid buffer id");
  }
  return info(id);
}

std::byte* SimMachine::backing(BufferId id) {
  Slot* slot = find_slot(id);
  if (slot == nullptr) return nullptr;
  return slot->data.load(std::memory_order_acquire);
}

const std::byte* SimMachine::backing(BufferId id) const {
  const Slot* slot = find_slot(id);
  if (slot == nullptr) return nullptr;
  return slot->data.load(std::memory_order_acquire);
}

std::uint64_t SimMachine::capacity_bytes(unsigned node) const {
  if (node >= node_count_) return 0;
  return topology_.numa_nodes()[node]->capacity_bytes();
}

std::uint64_t SimMachine::used_bytes(unsigned node) const {
  if (node >= node_count_) return 0;
  return used_[node].load(std::memory_order_relaxed);
}

std::uint64_t SimMachine::available_bytes(unsigned node) const {
  if (node >= node_count_ || online_[node].load(std::memory_order_relaxed) == 0) {
    return 0;
  }
  const std::uint64_t capacity = capacity_bytes(node);
  const std::uint64_t used = used_bytes(node);
  return capacity > used ? capacity - used : 0;
}

Status SimMachine::set_node_online(unsigned node, bool online) {
  if (node >= node_count_) {
    return make_error(Errc::kInvalidArgument,
                      "no NUMA node with logical index " + std::to_string(node));
  }
  online_[node].store(online ? 1 : 0, std::memory_order_relaxed);
  return {};
}

bool SimMachine::node_online(unsigned node) const {
  return node < node_count_ && online_[node].load(std::memory_order_relaxed) != 0;
}

Status SimMachine::set_node_degraded(unsigned node, bool degraded) {
  if (node >= node_count_) {
    return make_error(Errc::kInvalidArgument,
                      "no NUMA node with logical index " + std::to_string(node));
  }
  const std::uint8_t previous =
      telemetry_[node].degraded.exchange(degraded ? 1 : 0,
                                         std::memory_order_relaxed);
  if (degraded && previous == 0) {
    telemetry_[node].degraded_events.fetch_add(1, std::memory_order_relaxed);
  }
  return {};
}

bool SimMachine::node_degraded(unsigned node) const {
  return node < node_count_ &&
         telemetry_[node].degraded.load(std::memory_order_relaxed) != 0;
}

NodeTelemetry SimMachine::node_telemetry(unsigned node) const {
  NodeTelemetry snapshot;
  if (node >= node_count_) return snapshot;
  const NodeCounters& counters = telemetry_[node];
  snapshot.capacity_rejections =
      counters.capacity_rejections.load(std::memory_order_relaxed);
  snapshot.offline_rejections =
      counters.offline_rejections.load(std::memory_order_relaxed);
  snapshot.transient_faults =
      counters.transient_faults.load(std::memory_order_relaxed);
  snapshot.ecc_errors = counters.ecc_errors.load(std::memory_order_relaxed);
  snapshot.degraded_events =
      counters.degraded_events.load(std::memory_order_relaxed);
  snapshot.thermal_throttle_events =
      counters.thermal_throttle_events.load(std::memory_order_relaxed);
  snapshot.degraded = counters.degraded.load(std::memory_order_relaxed) != 0;
  snapshot.online = online_[node].load(std::memory_order_relaxed) != 0;
  return snapshot;
}

void SimMachine::restore_node_telemetry(unsigned node,
                                        const NodeTelemetry& telemetry) {
  if (node >= node_count_) return;
  NodeCounters& counters = telemetry_[node];
  counters.capacity_rejections.store(telemetry.capacity_rejections,
                                     std::memory_order_relaxed);
  counters.offline_rejections.store(telemetry.offline_rejections,
                                    std::memory_order_relaxed);
  counters.transient_faults.store(telemetry.transient_faults,
                                  std::memory_order_relaxed);
  counters.ecc_errors.store(telemetry.ecc_errors, std::memory_order_relaxed);
  counters.degraded_events.store(telemetry.degraded_events,
                                 std::memory_order_relaxed);
  counters.thermal_throttle_events.store(telemetry.thermal_throttle_events,
                                         std::memory_order_relaxed);
  counters.degraded.store(telemetry.degraded ? 1 : 0,
                          std::memory_order_relaxed);
  online_[node].store(telemetry.online ? 1 : 0, std::memory_order_relaxed);
}

SimMachine::NodePowerState SimMachine::node_power_state(unsigned node) const {
  if (node >= node_count_) return {};
  std::lock_guard<std::mutex> lock(power_mutex_);
  return NodePowerState{node_power_[node].dynamic_watts_ema,
                        node_power_[node].seeded};
}

void SimMachine::restore_node_power_state(unsigned node,
                                          const NodePowerState& state) {
  if (node >= node_count_) return;
  std::lock_guard<std::mutex> lock(power_mutex_);
  node_power_[node].dynamic_watts_ema = state.dynamic_watts_ema;
  node_power_[node].seeded = state.seeded;
}

void SimMachine::sample_node_faults(unsigned node) {
  if (node >= node_count_ || faults_ == nullptr) return;
  if (faults_->should_fail(fault::site::kMachineEccBurst)) {
    telemetry_[node].ecc_errors.fetch_add(1, std::memory_order_relaxed);
  }
  if (faults_->should_fail(fault::site::kMachineNodeDegraded)) {
    (void)set_node_degraded(node, true);
  }
  if (faults_->should_fail(fault::site::kMachineNodeOffline)) {
    online_[node].store(0, std::memory_order_relaxed);
  }
  if (faults_->should_fail(fault::site::kMachinePowerThrottle)) {
    report_thermal_throttle(node);
  }
}

void SimMachine::record_node_traffic(unsigned node, std::uint64_t read_bytes,
                                     std::uint64_t write_bytes,
                                     double interval_ns) {
  if (node >= node_count_ || interval_ns <= 0.0) return;
  const NodePowerModel& power = model_.node_power(node);
  const double dynamic_nj = static_cast<double>(read_bytes) * power.read_nj_per_byte +
                            static_cast<double>(write_bytes) * power.write_nj_per_byte;
  const double instant_watts = dynamic_nj / interval_ns;  // nJ/ns == W
  std::lock_guard<std::mutex> lock(power_mutex_);
  NodePower& state = node_power_[node];
  if (!state.seeded) {
    state.dynamic_watts_ema = instant_watts;
    state.seeded = true;
  } else {
    state.dynamic_watts_ema = 0.5 * state.dynamic_watts_ema + 0.5 * instant_watts;
  }
}

void SimMachine::record_node_traffic_batch(const std::uint64_t* read_bytes,
                                           const std::uint64_t* write_bytes,
                                           std::size_t count,
                                           double interval_ns) {
  if (interval_ns <= 0.0) return;
  if (count > node_count_) count = node_count_;
  std::lock_guard<std::mutex> lock(power_mutex_);
  for (std::size_t node = 0; node < count; ++node) {
    const NodePowerModel& power = model_.node_power(static_cast<unsigned>(node));
    const double dynamic_nj =
        static_cast<double>(read_bytes[node]) * power.read_nj_per_byte +
        static_cast<double>(write_bytes[node]) * power.write_nj_per_byte;
    const double instant_watts = dynamic_nj / interval_ns;  // nJ/ns == W
    NodePower& state = node_power_[node];
    if (!state.seeded) {
      state.dynamic_watts_ema = instant_watts;
      state.seeded = true;
    } else {
      state.dynamic_watts_ema =
          0.5 * state.dynamic_watts_ema + 0.5 * instant_watts;
    }
  }
}

double SimMachine::power_draw_watts(unsigned node) const {
  if (node >= node_count_) return 0.0;
  const NodePowerModel& power = model_.node_power(node);
  const double capacity_gib =
      static_cast<double>(capacity_bytes(node)) / static_cast<double>(support::kGiB);
  double dynamic_watts = 0.0;
  {
    std::lock_guard<std::mutex> lock(power_mutex_);
    dynamic_watts = node_power_[node].dynamic_watts_ema;
  }
  return power.static_w_per_gib * capacity_gib + dynamic_watts;
}

void SimMachine::report_thermal_throttle(unsigned node) {
  if (node >= node_count_) return;
  telemetry_[node].thermal_throttle_events.fetch_add(1, std::memory_order_relaxed);
}

std::vector<BufferId> SimMachine::live_buffers_on(unsigned node) const {
  std::vector<BufferId> live;
  const std::uint32_t total = next_slot_.load(std::memory_order_acquire);
  for (std::uint32_t index = 0; index < total; ++index) {
    const Slot* slot = find_slot(BufferId{index});
    if (slot == nullptr) continue;
    if (slot->state.load(std::memory_order_acquire) != SlotState::kLive) continue;
    if (slot->node.load(std::memory_order_relaxed) != node) continue;
    live.push_back(BufferId{index});
  }
  return live;
}

}  // namespace hetmem::sim
