#include "hetmem/simmem/perf_model.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "hetmem/support/units.hpp"

namespace hetmem::sim {

using support::gb_per_s;
using support::kGiB;

MachinePerfModel::MachinePerfModel(std::size_t node_count)
    : nodes_(node_count), power_(node_count) {}

void MachinePerfModel::set_node(unsigned node_logical_index, NodePerf perf) {
  assert(node_logical_index < nodes_.size());
  nodes_[node_logical_index] = perf;
}

const NodePerf& MachinePerfModel::node(unsigned node_logical_index) const {
  assert(node_logical_index < nodes_.size());
  return nodes_[node_logical_index];
}

void MachinePerfModel::set_node_power(unsigned node_logical_index,
                                      NodePowerModel power) {
  assert(node_logical_index < power_.size());
  power_[node_logical_index] = power;
}

const NodePowerModel& MachinePerfModel::node_power(
    unsigned node_logical_index) const {
  assert(node_logical_index < power_.size());
  return power_[node_logical_index];
}

NodePerf MachinePerfModel::kind_defaults(topo::MemoryKind kind) {
  NodePerf perf;
  switch (kind) {
    case topo::MemoryKind::kDRAM:
      // Xeon Cascade Lake socket-local DDR4 (measured figures, §IV-A2).
      perf.idle_latency_ns = 285.0;
      perf.read_bw = gb_per_s(80.0);
      perf.write_bw = gb_per_s(70.0);
      perf.per_thread_read_bw = gb_per_s(7.0);
      perf.per_thread_write_bw = gb_per_s(6.0);
      // Mild page/TLB *latency* degradation for very large working sets
      // (Table IIa: DRAM TEPS dips at 34.36 GB). Streaming bandwidth is
      // unaffected (Table IIIa: DRAM Triad flat at 75 GB/s up to 89 GiB),
      // so the degraded bandwidths equal the peaks.
      perf.device_buffer = DeviceBufferModel{
          .knee_bytes = 24 * kGiB,
          .degraded_read_bw = gb_per_s(80.0),
          .degraded_write_bw = gb_per_s(70.0),
          .degraded_latency_ns = 360.0,
          .size_exponent = 0.02,
      };
      break;
    case topo::MemoryKind::kHBM:
      // KNL MCDRAM, one SubNUMA cluster's share (~350 GB/s machine-wide).
      perf.idle_latency_ns = 300.0;
      perf.read_bw = gb_per_s(90.0);
      perf.write_bw = gb_per_s(90.0);
      perf.per_thread_read_bw = gb_per_s(8.0);
      perf.per_thread_write_bw = gb_per_s(8.0);
      break;
    case topo::MemoryKind::kNVDIMM:
      // Optane DCPMM: read-biased, write-starved, working-set cliff.
      perf.idle_latency_ns = 860.0;
      perf.read_bw = gb_per_s(40.0);
      perf.write_bw = gb_per_s(25.0);
      perf.per_thread_read_bw = gb_per_s(4.0);
      perf.per_thread_write_bw = gb_per_s(2.5);
      perf.device_buffer = DeviceBufferModel{
          .knee_bytes = 28 * kGiB,
          .degraded_read_bw = gb_per_s(18.0),
          .degraded_write_bw = gb_per_s(6.0),
          .degraded_latency_ns = 1900.0,
          .size_exponent = 0.05,
      };
      break;
    case topo::MemoryKind::kNAM:
      // Network-attached memory: very high capacity, network-bound.
      perf.idle_latency_ns = 1500.0;
      perf.read_bw = gb_per_s(12.0);
      perf.write_bw = gb_per_s(12.0);
      perf.per_thread_read_bw = gb_per_s(3.0);
      perf.per_thread_write_bw = gb_per_s(3.0);
      perf.remote_latency_factor = 1.0;  // equally far from everyone
      perf.remote_bw_factor = 1.0;
      break;
    case topo::MemoryKind::kGPU:
      // GPU HBM accessed from host cores over NVLink.
      perf.idle_latency_ns = 450.0;
      perf.read_bw = gb_per_s(60.0);
      perf.write_bw = gb_per_s(60.0);
      perf.per_thread_read_bw = gb_per_s(5.0);
      perf.per_thread_write_bw = gb_per_s(5.0);
      break;
  }
  return perf;
}

NodePowerModel MachinePerfModel::power_kind_defaults(topo::MemoryKind kind) {
  NodePowerModel power;
  switch (kind) {
    case topo::MemoryKind::kDRAM:
      // DDR4: cheap per byte, refresh dominates the static floor.
      power.read_nj_per_byte = 0.11;
      power.write_nj_per_byte = 0.14;
      power.static_w_per_gib = 0.10;
      break;
    case topo::MemoryKind::kHBM:
      // Stacked DRAM: the fast tier is the hot tier — higher energy/byte and
      // static draw than DDR4, which is what creates the bandwidth-vs-power
      // Pareto trade the governor arbitrates (docs/POWER.md).
      power.read_nj_per_byte = 0.25;
      power.write_nj_per_byte = 0.28;
      power.static_w_per_gib = 0.35;
      break;
    case topo::MemoryKind::kNVDIMM:
      // Optane: near-zero idle draw, expensive writes.
      power.read_nj_per_byte = 0.35;
      power.write_nj_per_byte = 1.20;
      power.static_w_per_gib = 0.03;
      break;
    case topo::MemoryKind::kNAM:
      // Network hops on both sides of every byte.
      power.read_nj_per_byte = 2.0;
      power.write_nj_per_byte = 2.0;
      power.static_w_per_gib = 0.01;
      break;
    case topo::MemoryKind::kGPU:
      // HBM2 on-package: efficient per byte, stacked-DRAM static floor.
      power.read_nj_per_byte = 0.08;
      power.write_nj_per_byte = 0.08;
      power.static_w_per_gib = 0.25;
      break;
  }
  return power;
}

MachinePerfModel MachinePerfModel::calibrated_for(const topo::Topology& topology) {
  MachinePerfModel model(topology.numa_nodes().size());
  // Distinguish KNL-style small DRAM clusters from big Xeon DRAM: a DRAM node
  // that shares its locality with an HBM node is the "slow tier" of a
  // flat-mode multi-level machine — lower latency (DDR4 close to MCDRAM,
  // paper §III-B2) and cluster-scale bandwidth.
  for (const topo::Object* node : topology.numa_nodes()) {
    NodePerf perf = kind_defaults(node->memory_kind());
    if (node->memory_kind() == topo::MemoryKind::kDRAM) {
      bool shares_locality_with_hbm = false;
      for (const topo::Object* other : topology.numa_nodes()) {
        if (other != node && other->memory_kind() == topo::MemoryKind::kHBM &&
            other->cpuset() == node->cpuset()) {
          shares_locality_with_hbm = true;
          break;
        }
      }
      if (shares_locality_with_hbm) {
        // KNL DDR4, one cluster's share of ~90 GB/s.
        perf.idle_latency_ns = 280.0;
        perf.read_bw = gb_per_s(32.0);
        perf.write_bw = gb_per_s(24.0);
        perf.per_thread_read_bw = gb_per_s(2.6);
        perf.per_thread_write_bw = gb_per_s(2.2);
        perf.device_buffer.reset();
      }
    }
    if (node->memory_side_cache().has_value()) {
      // Cache-tier constants: an MCDRAM-like cache (~4x the backing DRAM's
      // bandwidth, similar latency) for KNL Cache/Hybrid modes, a DRAM-like
      // cache for Xeon 2LM NVDIMMs.
      const bool backing_is_nvdimm =
          node->memory_kind() == topo::MemoryKind::kNVDIMM;
      perf.ms_cache = MemorySideCachePerf{
          .size_bytes = node->memory_side_cache()->size_bytes,
          .hit_latency_ns =
              backing_is_nvdimm ? 285.0 : perf.idle_latency_ns * 1.08,
          .hit_read_bw =
              backing_is_nvdimm ? gb_per_s(80.0) : perf.read_bw * 4.0,
          .hit_write_bw =
              backing_is_nvdimm ? gb_per_s(70.0) : perf.write_bw * 4.0,
          .miss_overhead_ns = 30.0,
      };
    }
    model.set_node(node->logical_index(), perf);
    model.set_node_power(node->logical_index(),
                         power_kind_defaults(node->memory_kind()));
  }
  return model;
}

EffectiveNodePerf MachinePerfModel::effective(unsigned node_logical_index,
                                              std::uint64_t working_set_bytes,
                                              bool local_initiator) const {
  const NodePerf& perf = node(node_logical_index);
  EffectiveNodePerf eff{
      .latency_ns = perf.idle_latency_ns,
      .read_bw = perf.read_bw,
      .write_bw = perf.write_bw,
      .per_thread_read_bw = perf.per_thread_read_bw,
      .per_thread_write_bw = perf.per_thread_write_bw,
      .loaded_latency_k = perf.loaded_latency_k,
  };

  if (perf.device_buffer.has_value() &&
      working_set_bytes > perf.device_buffer->knee_bytes) {
    const DeviceBufferModel& dev = *perf.device_buffer;
    const double slide = std::pow(static_cast<double>(dev.knee_bytes) /
                                      static_cast<double>(working_set_bytes),
                                  dev.size_exponent);
    eff.read_bw = dev.degraded_read_bw * slide;
    eff.write_bw = dev.degraded_write_bw * slide;
    eff.latency_ns = dev.degraded_latency_ns / slide;
    const double rd_scale = eff.read_bw / perf.read_bw;
    const double wr_scale = eff.write_bw / perf.write_bw;
    eff.per_thread_read_bw = perf.per_thread_read_bw * rd_scale;
    eff.per_thread_write_bw = perf.per_thread_write_bw * wr_scale;
  }

  if (perf.ms_cache.has_value()) {
    // Estimated cache hit rate for a working set churning through a
    // hardware-managed cache: the resident fraction of the working set.
    const MemorySideCachePerf& cache = *perf.ms_cache;
    double hit_rate = 1.0;
    if (working_set_bytes > 0 && cache.size_bytes > 0) {
      hit_rate = std::min(1.0, static_cast<double>(cache.size_bytes) /
                                   static_cast<double>(working_set_bytes));
    }
    eff.latency_ns = hit_rate * cache.hit_latency_ns +
                     (1.0 - hit_rate) * (eff.latency_ns + cache.miss_overhead_ns);
    auto blend_bw = [hit_rate](double hit_bw, double miss_bw) {
      // Harmonic blend: time per byte averages.
      return 1.0 / (hit_rate / hit_bw + (1.0 - hit_rate) / miss_bw);
    };
    // Per-thread caps blend too: the cache tier sustains proportionally
    // more per thread (assume the same thread count saturates either tier).
    const double read_saturation = perf.read_bw / perf.per_thread_read_bw;
    const double write_saturation = perf.write_bw / perf.per_thread_write_bw;
    eff.per_thread_read_bw = blend_bw(cache.hit_read_bw / read_saturation,
                                      eff.per_thread_read_bw);
    eff.per_thread_write_bw = blend_bw(cache.hit_write_bw / write_saturation,
                                       eff.per_thread_write_bw);
    eff.read_bw = blend_bw(cache.hit_read_bw, eff.read_bw);
    eff.write_bw = blend_bw(cache.hit_write_bw, eff.write_bw);
  }

  if (!local_initiator) {
    eff.latency_ns *= perf.remote_latency_factor;
    eff.read_bw *= perf.remote_bw_factor;
    eff.write_bw *= perf.remote_bw_factor;
    eff.per_thread_read_bw *= perf.remote_bw_factor;
    eff.per_thread_write_bw *= perf.remote_bw_factor;
  }
  return eff;
}

}  // namespace hetmem::sim
