#include "hetmem/memattr/compose.hpp"

#include <algorithm>

#include "hetmem/memattr/memattr.hpp"

namespace hetmem::attr {

RankingComposition::RankingComposition(Polarity value_polarity)
    : value_polarity_(value_polarity), key_polarity_(value_polarity) {}

RankingComposition& RankingComposition::add_layer(std::uint32_t levels,
                                                  Layer layer) {
  layers_.push_back(LayerEntry{levels, std::move(layer)});
  return *this;
}

RankingComposition& RankingComposition::set_objective(Objective objective,
                                                      Polarity key_polarity) {
  objective_ = std::move(objective);
  key_polarity_ = key_polarity;
  return *this;
}

std::vector<TargetValue> RankingComposition::compose(
    const std::vector<RankCandidate>& candidates) const {
  // Buckets fold into one lexicographic code (earlier layers in the higher
  // digits), so the sort needs a single pass and no per-bucket vectors.
  struct Scored {
    const RankCandidate* candidate = nullptr;
    std::uint64_t code = 0;
    double key = 0.0;
  };
  std::vector<Scored> scored;
  scored.reserve(candidates.size());
  for (const RankCandidate& candidate : candidates) {
    std::uint64_t code = 0;
    bool dropped = false;
    for (const LayerEntry& entry : layers_) {
      const std::uint32_t bucket = entry.layer(candidate);
      if (bucket == kDropped) {
        dropped = true;
        break;
      }
      code = code * entry.levels + std::min(bucket, entry.levels - 1);
    }
    if (dropped) continue;
    const double key = objective_ ? objective_(candidate) : candidate.value;
    scored.push_back(Scored{&candidate, code, key});
  }
  const bool higher_first = key_polarity_ == Polarity::kHigherFirst;
  std::stable_sort(scored.begin(), scored.end(),
                   [higher_first](const Scored& a, const Scored& b) {
                     if (a.code != b.code) return a.code < b.code;
                     return higher_first ? a.key > b.key : a.key < b.key;
                   });
  std::vector<TargetValue> ranked;
  ranked.reserve(scored.size());
  for (const Scored& s : scored) {
    ranked.push_back(TargetValue{s.candidate->target, s.candidate->value});
  }
  return ranked;
}

RankingComposition::Layer RankingComposition::quarantine_layer() {
  return [](const RankCandidate& candidate) -> std::uint32_t {
    switch (candidate.verdict) {
      case health::PlacementVerdict::kNormal: return 0;
      case health::PlacementVerdict::kDeprioritize: return 1;
      case health::PlacementVerdict::kExclude: return kDropped;
    }
    return 0;
  };
}

RankingComposition::Layer RankingComposition::confidence_layer() {
  return [](const RankCandidate& candidate) -> std::uint32_t {
    return candidate.confidence == Confidence::kTrusted ? 0 : 1;
  };
}

RankingComposition RankingComposition::standard(Polarity value_polarity,
                                                bool confidence_aware) {
  RankingComposition composition(value_polarity);
  composition.add_layer(2, quarantine_layer());
  if (confidence_aware) composition.add_layer(2, confidence_layer());
  return composition;
}

}  // namespace hetmem::attr
