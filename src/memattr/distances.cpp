#include "hetmem/memattr/distances.hpp"

#include <algorithm>
#include <cmath>

#include "hetmem/support/str.hpp"
#include "hetmem/support/units.hpp"

namespace hetmem::attr {

using support::Errc;
using support::make_error;
using support::Result;

Result<DistanceMatrix> DistanceMatrix::from_latencies(
    const MemAttrRegistry& registry) {
  const topo::Topology& topology = registry.topology();
  const std::size_t n = topology.numa_nodes().size();
  DistanceMatrix matrix(n);

  for (const topo::Object* from : topology.numa_nodes()) {
    // The "CPUs of node i": its locality; CPU-less nodes fall back to the
    // whole machine (their best-case accessor).
    support::Bitmap cpus = from->cpuset();
    if (cpus.empty()) cpus = topology.complete_cpuset();
    const auto initiator = Initiator::from_cpuset(cpus);
    for (const topo::Object* to : topology.numa_nodes()) {
      auto latency = registry.value(kLatency, *to, initiator);
      if (!latency.ok()) {
        return make_error(Errc::kNotFound,
                          "no latency for node pair (" +
                              std::to_string(from->logical_index()) + ", " +
                              std::to_string(to->logical_index()) +
                              "); populate remote values first");
      }
      matrix.latency_[from->logical_index() * n + to->logical_index()] =
          *latency;
    }
  }
  return matrix;
}

double DistanceMatrix::latency_ns(unsigned from, unsigned to) const {
  if (from >= size_ || to >= size_) return 0.0;
  return latency_[from * size_ + to];
}

unsigned DistanceMatrix::value(unsigned from, unsigned to) const {
  if (from >= size_ || to >= size_) return 0;
  const double floor =
      *std::min_element(latency_.begin(), latency_.end());
  if (floor <= 0.0) return 0;
  return static_cast<unsigned>(
      std::lround(latency_[from * size_ + to] / floor * 10.0));
}

std::vector<unsigned> DistanceMatrix::nearest_order(unsigned from) const {
  std::vector<unsigned> order;
  if (from >= size_) return order;
  order.resize(size_);
  for (unsigned i = 0; i < size_; ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](unsigned a, unsigned b) {
    return latency_[from * size_ + a] < latency_[from * size_ + b];
  });
  return order;
}

std::string DistanceMatrix::render() const {
  std::string out = "SLIT-style distances (10 = fastest pair):\n     ";
  for (unsigned to = 0; to < size_; ++to) {
    out += support::pad_left("L#" + std::to_string(to), 6);
  }
  out += "\n";
  for (unsigned from = 0; from < size_; ++from) {
    out += support::pad_left("L#" + std::to_string(from), 5);
    for (unsigned to = 0; to < size_; ++to) {
      out += support::pad_left(std::to_string(value(from, to)), 6);
    }
    out += "\n";
  }
  return out;
}

}  // namespace hetmem::attr
