#include "hetmem/memattr/memattr.hpp"

#include <algorithm>
#include <cassert>
#include <charconv>
#include <mutex>
#include <shared_mutex>

#include "hetmem/support/str.hpp"
#include "hetmem/support/units.hpp"

namespace hetmem::attr {

using support::Bitmap;
using support::Errc;
using support::make_error;
using support::Result;
using support::Status;

MemAttrRegistry::MemAttrRegistry(const topo::Topology& topology)
    : topology_(&topology) {
  auto add_builtin = [&](std::string name, Polarity polarity, bool need_initiator) {
    attributes_.push_back(AttrInfo{std::move(name), polarity, need_initiator});
    values_.emplace_back();
    values_.back().global_values.resize(topology.numa_nodes().size());
    values_.back().global_confidence.resize(topology.numa_nodes().size(),
                                            Confidence::kTrusted);
    values_.back().per_initiator.resize(topology.numa_nodes().size());
  };
  add_builtin("Capacity", Polarity::kHigherFirst, /*need_initiator=*/false);
  add_builtin("Locality", Polarity::kLowerFirst, /*need_initiator=*/false);
  add_builtin("Bandwidth", Polarity::kHigherFirst, /*need_initiator=*/true);
  add_builtin("Latency", Polarity::kLowerFirst, /*need_initiator=*/true);
  add_builtin("ReadBandwidth", Polarity::kHigherFirst, /*need_initiator=*/true);
  add_builtin("WriteBandwidth", Polarity::kHigherFirst, /*need_initiator=*/true);
  add_builtin("ReadLatency", Polarity::kLowerFirst, /*need_initiator=*/true);
  add_builtin("WriteLatency", Polarity::kLowerFirst, /*need_initiator=*/true);
  // Power attributes start empty like the performance ones; they are fed by
  // power::feed_registry from the machine's power model (docs/POWER.md).
  add_builtin("EnergyPerByte", Polarity::kLowerFirst, /*need_initiator=*/false);
  add_builtin("StaticPower", Polarity::kLowerFirst, /*need_initiator=*/false);

  // Capacity and Locality are always discoverable from the OS (Table I).
  for (const topo::Object* node : topology.numa_nodes()) {
    const unsigned idx = node->logical_index();
    values_[kCapacity].global_values[idx] =
        static_cast<double>(node->capacity_bytes());
    values_[kLocality].global_values[idx] =
        static_cast<double>(node->cpuset().count());
  }
}

Result<AttrId> MemAttrRegistry::register_attribute(std::string_view name,
                                                   Polarity polarity,
                                                   bool need_initiator) {
  if (name.empty()) {
    return make_error(Errc::kInvalidArgument, "attribute name is empty");
  }
  std::unique_lock lock(mutex_);
  for (const AttrInfo& info : attributes_) {
    if (info.name == name) {
      return make_error(Errc::kAlreadyExists,
                        "attribute '" + std::string(name) + "' already registered");
    }
  }
  attributes_.push_back(AttrInfo{std::string(name), polarity, need_initiator});
  values_.emplace_back();
  values_.back().global_values.resize(topology_->numa_nodes().size());
  values_.back().global_confidence.resize(topology_->numa_nodes().size(),
                                          Confidence::kTrusted);
  values_.back().per_initiator.resize(topology_->numa_nodes().size());
  bump_generation_locked();
  return static_cast<AttrId>(attributes_.size() - 1);
}

Result<AttrId> MemAttrRegistry::find_attribute(std::string_view name) const {
  std::shared_lock lock(mutex_);
  for (std::size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].name == name) return static_cast<AttrId>(i);
  }
  return make_error(Errc::kNotFound,
                    "no attribute named '" + std::string(name) + "'");
}

const AttrInfo& MemAttrRegistry::info(AttrId attr) const {
  std::shared_lock lock(mutex_);
  assert(valid_attr(attr));
  // Safe to return a reference: attributes_ is a deque (stable addresses)
  // and entries are immutable once registered.
  return attributes_[attr];
}

Status MemAttrRegistry::set_value(AttrId attr, const topo::Object& target,
                                  const std::optional<Initiator>& initiator,
                                  double value) {
  std::unique_lock lock(mutex_);
  if (!valid_attr(attr)) {
    return make_error(Errc::kInvalidArgument, "unknown attribute id");
  }
  if (target.type() != topo::ObjType::kNUMANode) {
    return make_error(Errc::kInvalidArgument, "target is not a NUMA node");
  }
  const unsigned idx = target.logical_index();
  Stored& stored = values_[attr];
  if (attributes_[attr].need_initiator) {
    if (!initiator.has_value()) {
      return make_error(Errc::kInvalidArgument,
                        "attribute '" + attributes_[attr].name +
                            "' requires an initiator");
    }
    auto& list = stored.per_initiator[idx];
    for (InitiatorValue& existing : list) {
      if (existing.initiator == initiator->cpuset()) {
        existing.value = value;
        // A fresh value supersedes any earlier noisy/stale verdict.
        existing.confidence = Confidence::kTrusted;
        bump_generation_locked();
        return {};
      }
    }
    list.push_back(InitiatorValue{initiator->cpuset(), value, Confidence::kTrusted});
    bump_generation_locked();
    return {};
  }
  if (initiator.has_value()) {
    return make_error(Errc::kInvalidArgument,
                      "attribute '" + attributes_[attr].name +
                          "' does not take an initiator");
  }
  stored.global_values[idx] = value;
  stored.global_confidence[idx] = Confidence::kTrusted;
  bump_generation_locked();
  return {};
}

const InitiatorValue* MemAttrRegistry::match_initiator(
    const std::vector<InitiatorValue>& stored, const Bitmap& query) const {
  // 1. Exact cpuset match.
  for (const InitiatorValue& iv : stored) {
    if (iv.initiator == query) return &iv;
  }
  // 2. Smallest stored locality containing the query (a core queries with
  //    its own cpuset; the stored value for its whole group applies).
  const InitiatorValue* best = nullptr;
  for (const InitiatorValue& iv : stored) {
    if (query.is_subset_of(iv.initiator)) {
      if (best == nullptr || iv.initiator.count() < best->initiator.count()) {
        best = &iv;
      }
    }
  }
  if (best != nullptr) return best;
  // 3. Largest intersection as a last resort.
  std::size_t best_overlap = 0;
  for (const InitiatorValue& iv : stored) {
    const std::size_t overlap = (iv.initiator & query).count();
    if (overlap > best_overlap) {
      best_overlap = overlap;
      best = &iv;
    }
  }
  return best;
}

Result<double> MemAttrRegistry::value(AttrId attr, const topo::Object& target,
                                      const std::optional<Initiator>& initiator) const {
  std::shared_lock lock(mutex_);
  return value_locked(attr, target, initiator);
}

Result<double> MemAttrRegistry::value_locked(
    AttrId attr, const topo::Object& target,
    const std::optional<Initiator>& initiator) const {
  if (!valid_attr(attr)) {
    return make_error(Errc::kInvalidArgument, "unknown attribute id");
  }
  if (target.type() != topo::ObjType::kNUMANode) {
    return make_error(Errc::kInvalidArgument, "target is not a NUMA node");
  }
  const unsigned idx = target.logical_index();
  const Stored& stored = values_[attr];
  if (attributes_[attr].need_initiator) {
    if (!initiator.has_value()) {
      return make_error(Errc::kInvalidArgument,
                        "attribute '" + attributes_[attr].name +
                            "' requires an initiator");
    }
    const InitiatorValue* match =
        match_initiator(stored.per_initiator[idx], initiator->cpuset());
    if (match == nullptr) {
      return make_error(Errc::kNotFound,
                        "no value of '" + attributes_[attr].name +
                            "' for this (target, initiator)");
    }
    return match->value;
  }
  if (!stored.global_values[idx].has_value()) {
    return make_error(Errc::kNotFound,
                      "no value of '" + attributes_[attr].name + "' for target");
  }
  return *stored.global_values[idx];
}

std::vector<TargetValue> MemAttrRegistry::targets_ranked(
    AttrId attr, const Initiator& initiator, topo::LocalityFlags flags) const {
  std::shared_lock lock(mutex_);
  return targets_ranked_locked(attr, initiator, flags);
}

std::vector<RankCandidate> MemAttrRegistry::rank_candidates_locked(
    AttrId attr, const Initiator& initiator, topo::LocalityFlags flags) const {
  std::vector<RankCandidate> candidates;
  if (!valid_attr(attr)) return candidates;
  const health::QuarantineList* quarantine =
      quarantine_.load(std::memory_order_acquire);
  const Stored& stored = values_[attr];
  const bool need_initiator = attributes_[attr].need_initiator;
  for (const topo::Object* node :
       topology_->local_numa_nodes(initiator.cpuset(), flags)) {
    const unsigned idx = node->logical_index();
    RankCandidate candidate;
    candidate.target = node;
    candidate.verdict = quarantine != nullptr
                            ? quarantine->verdict(idx)
                            : health::PlacementVerdict::kNormal;
    if (need_initiator) {
      const InitiatorValue* match =
          match_initiator(stored.per_initiator[idx], initiator.cpuset());
      if (match == nullptr) continue;
      candidate.value = match->value;
      candidate.confidence = match->confidence;
    } else {
      if (!stored.global_values[idx].has_value()) continue;
      candidate.value = *stored.global_values[idx];
      candidate.confidence = stored.global_confidence[idx];
    }
    candidates.push_back(candidate);
  }
  return candidates;
}

std::vector<RankCandidate> MemAttrRegistry::rank_candidates(
    AttrId attr, const Initiator& initiator, topo::LocalityFlags flags) const {
  std::shared_lock lock(mutex_);
  return rank_candidates_locked(attr, initiator, flags);
}

std::vector<TargetValue> MemAttrRegistry::targets_ranked_locked(
    AttrId attr, const Initiator& initiator, topo::LocalityFlags flags) const {
  if (!valid_attr(attr)) return {};
  return RankingComposition::standard(attributes_[attr].polarity,
                                      /*confidence_aware=*/false)
      .compose(rank_candidates_locked(attr, initiator, flags));
}

Result<TargetValue> MemAttrRegistry::best_target(AttrId attr,
                                                 const Initiator& initiator,
                                                 topo::LocalityFlags flags) const {
  std::shared_lock lock(mutex_);
  if (!valid_attr(attr)) {
    return make_error(Errc::kInvalidArgument, "unknown attribute id");
  }
  std::vector<TargetValue> ranked = targets_ranked_locked(attr, initiator, flags);
  if (ranked.empty()) {
    return make_error(Errc::kNotFound,
                      "no local target has a value of '" + attributes_[attr].name + "'");
  }
  return ranked.front();
}

std::vector<InitiatorValue> MemAttrRegistry::initiators(
    AttrId attr, const topo::Object& target) const {
  std::shared_lock lock(mutex_);
  if (!valid_attr(attr) || !attributes_[attr].need_initiator ||
      target.type() != topo::ObjType::kNUMANode) {
    return {};
  }
  return values_[attr].per_initiator[target.logical_index()];
}

Result<InitiatorValue> MemAttrRegistry::best_initiator(
    AttrId attr, const topo::Object& target) const {
  std::shared_lock lock(mutex_);
  if (!valid_attr(attr)) {
    return make_error(Errc::kInvalidArgument, "unknown attribute id");
  }
  if (!attributes_[attr].need_initiator) {
    return make_error(Errc::kInvalidArgument,
                      "attribute '" + attributes_[attr].name +
                          "' has no initiators");
  }
  const auto& list = values_[attr].per_initiator[target.logical_index()];
  if (list.empty()) {
    return make_error(Errc::kNotFound, "no initiator has a value for this target");
  }
  const bool higher_first = attributes_[attr].polarity == Polarity::kHigherFirst;
  const InitiatorValue* best = &list.front();
  for (const InitiatorValue& iv : list) {
    if (higher_first ? iv.value > best->value : iv.value < best->value) best = &iv;
  }
  return *best;
}

bool MemAttrRegistry::has_values(AttrId attr) const {
  std::shared_lock lock(mutex_);
  return has_values_locked(attr);
}

bool MemAttrRegistry::has_values_locked(AttrId attr) const {
  if (!valid_attr(attr)) return false;
  const Stored& stored = values_[attr];
  for (const auto& v : stored.global_values) {
    if (v.has_value()) return true;
  }
  for (const auto& list : stored.per_initiator) {
    if (!list.empty()) return true;
  }
  return false;
}

Status MemAttrRegistry::set_confidence(AttrId attr, const topo::Object& target,
                                       const std::optional<Initiator>& initiator,
                                       Confidence confidence) {
  std::unique_lock lock(mutex_);
  if (!valid_attr(attr)) {
    return make_error(Errc::kInvalidArgument, "unknown attribute id");
  }
  if (target.type() != topo::ObjType::kNUMANode) {
    return make_error(Errc::kInvalidArgument, "target is not a NUMA node");
  }
  const unsigned idx = target.logical_index();
  Stored& stored = values_[attr];
  if (attributes_[attr].need_initiator) {
    if (!initiator.has_value()) {
      return make_error(Errc::kInvalidArgument,
                        "attribute '" + attributes_[attr].name +
                            "' requires an initiator");
    }
    for (InitiatorValue& existing : stored.per_initiator[idx]) {
      if (existing.initiator == initiator->cpuset()) {
        existing.confidence = confidence;
        bump_generation_locked();
        return {};
      }
    }
    return make_error(Errc::kNotFound,
                      "no stored value for this (target, initiator)");
  }
  if (!stored.global_values[idx].has_value()) {
    return make_error(Errc::kNotFound, "no stored value for target");
  }
  stored.global_confidence[idx] = confidence;
  bump_generation_locked();
  return {};
}

Result<Confidence> MemAttrRegistry::confidence(
    AttrId attr, const topo::Object& target,
    const std::optional<Initiator>& initiator) const {
  std::shared_lock lock(mutex_);
  if (!valid_attr(attr)) {
    return make_error(Errc::kInvalidArgument, "unknown attribute id");
  }
  if (target.type() != topo::ObjType::kNUMANode) {
    return make_error(Errc::kInvalidArgument, "target is not a NUMA node");
  }
  const unsigned idx = target.logical_index();
  const Stored& stored = values_[attr];
  if (attributes_[attr].need_initiator) {
    if (!initiator.has_value()) {
      return make_error(Errc::kInvalidArgument,
                        "attribute '" + attributes_[attr].name +
                            "' requires an initiator");
    }
    const InitiatorValue* match =
        match_initiator(stored.per_initiator[idx], initiator->cpuset());
    if (match == nullptr) {
      return make_error(Errc::kNotFound, "no stored value");
    }
    return match->confidence;
  }
  if (!stored.global_values[idx].has_value()) {
    return make_error(Errc::kNotFound, "no stored value");
  }
  return stored.global_confidence[idx];
}

void MemAttrRegistry::mark_all(AttrId attr, Confidence confidence) {
  std::unique_lock lock(mutex_);
  if (!valid_attr(attr)) return;
  Stored& stored = values_[attr];
  for (std::size_t idx = 0; idx < stored.global_values.size(); ++idx) {
    if (stored.global_values[idx].has_value()) {
      stored.global_confidence[idx] = confidence;
    }
  }
  for (auto& list : stored.per_initiator) {
    for (InitiatorValue& iv : list) iv.confidence = confidence;
  }
  bump_generation_locked();
}

bool MemAttrRegistry::has_trusted_values(AttrId attr) const {
  std::shared_lock lock(mutex_);
  return has_trusted_values_locked(attr);
}

bool MemAttrRegistry::has_trusted_values_locked(AttrId attr) const {
  if (!valid_attr(attr)) return false;
  const Stored& stored = values_[attr];
  for (std::size_t idx = 0; idx < stored.global_values.size(); ++idx) {
    if (stored.global_values[idx].has_value() &&
        stored.global_confidence[idx] == Confidence::kTrusted) {
      return true;
    }
  }
  for (const auto& list : stored.per_initiator) {
    for (const InitiatorValue& iv : list) {
      if (iv.confidence == Confidence::kTrusted) return true;
    }
  }
  return false;
}

std::vector<TargetValue> MemAttrRegistry::targets_ranked_resilient(
    AttrId attr, const Initiator& initiator, topo::LocalityFlags flags) const {
  std::shared_lock lock(mutex_);
  return targets_ranked_resilient_locked(attr, initiator, flags);
}

std::vector<TargetValue> MemAttrRegistry::targets_ranked_resilient_locked(
    AttrId attr, const Initiator& initiator, topo::LocalityFlags flags) const {
  if (!valid_attr(attr)) return {};
  // Quarantine dominates confidence (see RankingComposition::standard): a
  // node with noisy measurements is still healthy hardware, a quarantined
  // node is failing hardware.
  return RankingComposition::standard(attributes_[attr].polarity,
                                      /*confidence_aware=*/true)
      .compose(rank_candidates_locked(attr, initiator, flags));
}

AttrId MemAttrRegistry::resolve_resilient_locked(AttrId attr) const {
  if (has_trusted_values_locked(attr)) return attr;
  AttrId fallback = attr;
  switch (attr) {
    case kReadBandwidth:
    case kWriteBandwidth:
      fallback = kBandwidth;
      break;
    case kReadLatency:
    case kWriteLatency:
      fallback = kLatency;
      break;
    default:
      break;
  }
  if (fallback != attr && has_trusted_values_locked(fallback)) return fallback;
  // Coarsest safe criterion: Capacity is populated natively from the
  // topology and cannot be poisoned by noisy measurement or bad firmware.
  return kCapacity;
}

Result<AttrId> MemAttrRegistry::resolve_resilient(AttrId attr) const {
  std::shared_lock lock(mutex_);
  if (!valid_attr(attr)) {
    return make_error(Errc::kInvalidArgument, "unknown attribute id");
  }
  return resolve_resilient_locked(attr);
}

Result<AttrId> MemAttrRegistry::resolve_with_fallback_locked(AttrId attr) const {
  if (!valid_attr(attr)) {
    return make_error(Errc::kInvalidArgument, "unknown attribute id");
  }
  if (has_values_locked(attr)) return attr;
  AttrId fallback = attr;
  switch (attr) {
    case kReadBandwidth:
    case kWriteBandwidth:
      fallback = kBandwidth;
      break;
    case kReadLatency:
    case kWriteLatency:
      fallback = kLatency;
      break;
    default:
      return make_error(Errc::kNotFound,
                        "attribute '" + attributes_[attr].name +
                            "' has no values and no fallback");
  }
  if (has_values_locked(fallback)) return fallback;
  return make_error(Errc::kNotFound,
                    "neither '" + attributes_[attr].name + "' nor its fallback '" +
                        attributes_[fallback].name + "' has values");
}

Result<AttrId> MemAttrRegistry::resolve_with_fallback(AttrId attr) const {
  std::shared_lock lock(mutex_);
  return resolve_with_fallback_locked(attr);
}

// --- generation-invalidated ranking cache ---

void MemAttrRegistry::invalidate_rankings() {
  // The exclusive lock keeps the invariant that a snapshot's generation
  // stamp (read under a shared lock) always matches the data it was built
  // from — bumps never interleave with an in-flight rebuild.
  std::unique_lock lock(mutex_);
  bump_generation_locked();
}

void MemAttrRegistry::set_quarantine_list(const health::QuarantineList* list) {
  std::unique_lock lock(mutex_);
  quarantine_.store(list, std::memory_order_release);
  bump_generation_locked();
}

void MemAttrRegistry::build_ranking_locked(CachedRanking& out) const {
  const Initiator initiator = Initiator::from_cpuset(out.initiator);
  switch (out.mode) {
    case RankingMode::kPlain:
      out.resolved = out.requested;
      out.targets = targets_ranked_locked(out.requested, initiator, out.flags);
      break;
    case RankingMode::kResilient:
      out.resolved = out.requested;
      out.targets =
          targets_ranked_resilient_locked(out.requested, initiator, out.flags);
      break;
    case RankingMode::kAllocPath: {
      const Result<AttrId> resolved = resolve_with_fallback_locked(out.requested);
      if (!resolved.ok()) {
        out.resolved = out.requested;
        out.resolved_ok = false;
        break;
      }
      out.resolved = *resolved;
      out.targets =
          targets_ranked_resilient_locked(out.resolved, initiator, out.flags);
      break;
    }
    case RankingMode::kRescuePath:
      out.resolved = valid_attr(out.requested)
                         ? resolve_resilient_locked(out.requested)
                         : kCapacity;
      out.targets =
          targets_ranked_resilient_locked(out.resolved, initiator, out.flags);
      break;
  }
}

RankingSnapshot MemAttrRegistry::ranked_cached(
    RankingMode mode, AttrId attr, const support::Bitmap& initiator_cpuset,
    topo::LocalityFlags flags) const {
  if (!cache_enabled_.load(std::memory_order_relaxed)) {
    // Uncached baseline: build a private snapshot, never publish it.
    auto fresh = std::make_shared<CachedRanking>();
    fresh->requested = attr;
    fresh->mode = mode;
    fresh->flags = flags;
    fresh->initiator = initiator_cpuset;
    std::shared_lock lock(mutex_);
    fresh->generation = generation_.load(std::memory_order_relaxed);
    build_ranking_locked(*fresh);
    return fresh;
  }

  const std::uint64_t generation = generation_.load(std::memory_order_acquire);
  std::size_t key = initiator_cpuset.hash();
  key ^= static_cast<std::size_t>(attr) * 0x9e3779b97f4a7c15ull;
  key ^= (static_cast<std::size_t>(flags) << 3) ^
         (static_cast<std::size_t>(mode) << 1);
  const std::size_t slot = key & (kRankingCacheSlots - 1);

  RankingSnapshot cached = ranking_cache_[slot].load(std::memory_order_acquire);
  if (cached && cached->generation == generation && cached->mode == mode &&
      cached->requested == attr && cached->flags == flags &&
      cached->initiator == initiator_cpuset) {
    cache_hits_.fetch_add(1, std::memory_order_relaxed);
    return cached;
  }

  cache_misses_.fetch_add(1, std::memory_order_relaxed);
  auto rebuilt = std::make_shared<CachedRanking>();
  rebuilt->requested = attr;
  rebuilt->mode = mode;
  rebuilt->flags = flags;
  rebuilt->initiator = initiator_cpuset;
  {
    std::shared_lock lock(mutex_);
    // Writers bump the generation while holding the lock exclusively, so
    // this stamp is exactly the state the ranking below is built from.
    rebuilt->generation = generation_.load(std::memory_order_relaxed);
    build_ranking_locked(*rebuilt);
  }

  // Publish, but never replace a newer-generation snapshot with an older
  // one: a reader that stalled between rebuild and publish must not bury a
  // fresher entry (stale-after-publish would make later hits serve old
  // rankings).
  RankingSnapshot snapshot = std::move(rebuilt);
  RankingSnapshot expected = std::move(cached);
  while (!(expected && expected->generation > snapshot->generation)) {
    if (ranking_cache_[slot].compare_exchange_weak(
            expected, snapshot, std::memory_order_release,
            std::memory_order_acquire)) {
      break;
    }
  }
  return snapshot;
}

RankingSnapshot MemAttrRegistry::targets_ranked_cached(
    AttrId attr, const support::Bitmap& initiator_cpuset,
    topo::LocalityFlags flags) const {
  return ranked_cached(RankingMode::kPlain, attr, initiator_cpuset, flags);
}

RankingSnapshot MemAttrRegistry::targets_ranked_resilient_cached(
    AttrId attr, const support::Bitmap& initiator_cpuset,
    topo::LocalityFlags flags) const {
  return ranked_cached(RankingMode::kResilient, attr, initiator_cpuset, flags);
}

RankingSnapshot MemAttrRegistry::alloc_ranking_cached(
    AttrId attr, const support::Bitmap& initiator_cpuset,
    topo::LocalityFlags flags) const {
  return ranked_cached(RankingMode::kAllocPath, attr, initiator_cpuset, flags);
}

RankingSnapshot MemAttrRegistry::rescue_ranking_cached(
    AttrId attr, const support::Bitmap& initiator_cpuset,
    topo::LocalityFlags flags) const {
  return ranked_cached(RankingMode::kRescuePath, attr, initiator_cpuset, flags);
}

RankingCacheStats MemAttrRegistry::ranking_cache_stats() const {
  RankingCacheStats stats;
  stats.hits = cache_hits_.load(std::memory_order_relaxed);
  stats.misses = cache_misses_.load(std::memory_order_relaxed);
  return stats;
}

void MemAttrRegistry::reset_ranking_cache_stats() {
  cache_hits_.store(0, std::memory_order_relaxed);
  cache_misses_.store(0, std::memory_order_relaxed);
}

std::string memattrs_report(const MemAttrRegistry& registry) {
  const topo::Topology& topology = registry.topology();
  std::string out;
  for (AttrId attr = 0; attr < registry.attribute_count(); ++attr) {
    const AttrInfo& info = registry.info(attr);
    if (!registry.has_values(attr)) continue;
    out += "Memory attribute #" + std::to_string(attr) + " name '" + info.name + "'\n";
    for (const topo::Object* node : topology.numa_nodes()) {
      const std::string node_label =
          "  NUMANode L#" + std::to_string(node->logical_index());
      if (!info.need_initiator) {
        auto v = registry.value(attr, *node, std::nullopt);
        if (!v.ok()) continue;
        out += node_label + " = " +
               std::to_string(static_cast<std::uint64_t>(*v)) + "\n";
        continue;
      }
      for (const InitiatorValue& iv : registry.initiators(attr, *node)) {
        const topo::Object* from = topology.covering_object(iv.initiator);
        std::string from_label = "cpuset " + iv.initiator.to_list_string();
        if (from != nullptr && from->cpuset() == iv.initiator) {
          from_label = std::string(from->type() == topo::ObjType::kGroup
                                       ? (from->subtype().empty() ? "Group" : "Group")
                                       : topo::obj_type_name(from->type())) +
                       (from->type() == topo::ObjType::kGroup ? "0" : "") + " L#" +
                       std::to_string(from->logical_index());
        }
        // hwloc prints bandwidth in MiB/s and latency in ns.
        double printed = iv.value;
        if (attr == kBandwidth || attr == kReadBandwidth || attr == kWriteBandwidth) {
          printed = iv.value / static_cast<double>(support::kMiB);
        }
        out += node_label + " = " +
               std::to_string(static_cast<std::uint64_t>(printed)) + " from " +
               from_label + "\n";
      }
    }
  }
  return out;
}

std::string serialize_values(const MemAttrRegistry& registry) {
  const topo::Topology& topology = registry.topology();
  std::string out = "# hetmem-memattrs v1\n";
  // Custom attribute declarations first so load_values can re-register.
  for (AttrId attr = kFirstCustomAttr; attr < registry.attribute_count(); ++attr) {
    const AttrInfo& info = registry.info(attr);
    out += "attr name=" + info.name + " polarity=" +
           (info.polarity == Polarity::kHigherFirst ? "higher" : "lower") +
           " initiator=" + (info.need_initiator ? "1" : "0") + "\n";
  }
  for (AttrId attr = 0; attr < registry.attribute_count(); ++attr) {
    const AttrInfo& info = registry.info(attr);
    // Capacity/Locality are derived from the topology; skip the builtins
    // that load_values would recompute anyway.
    if (attr == kCapacity || attr == kLocality) continue;
    for (const topo::Object* node : topology.numa_nodes()) {
      if (!info.need_initiator) {
        auto value = registry.value(attr, *node, std::nullopt);
        if (!value.ok()) continue;
        out += "value attr=" + info.name +
               " target=" + std::to_string(node->os_index()) +
               " v=" + support::format_fixed(*value, 6) + "\n";
        continue;
      }
      for (const InitiatorValue& iv : registry.initiators(attr, *node)) {
        out += "value attr=" + info.name +
               " target=" + std::to_string(node->os_index()) +
               " initiator=" + iv.initiator.to_list_string() +
               " v=" + support::format_fixed(iv.value, 6) + "\n";
      }
    }
  }
  return out;
}


Status load_values(MemAttrRegistry& registry, std::string_view text) {
  const topo::Topology& topology = registry.topology();
  std::size_t line_number = 0;
  bool header_seen = false;

  auto field = [](const std::vector<std::string_view>& tokens,
                  std::string_view key) -> std::optional<std::string_view> {
    const std::string prefix = std::string(key) + "=";
    for (std::string_view token : tokens) {
      if (token.substr(0, prefix.size()) == prefix) {
        return token.substr(prefix.size());
      }
    }
    return std::nullopt;
  };
  auto fail = [&](const std::string& message) {
    return make_error(Errc::kParseError,
                      "line " + std::to_string(line_number) + ": " + message);
  };

  for (std::string_view raw_line : support::split(text, '\n')) {
    ++line_number;
    std::string_view line = support::trim(raw_line);
    if (line.empty()) continue;
    if (line.front() == '#') {
      header_seen |= line.find("hetmem-memattrs v1") != std::string_view::npos;
      continue;
    }
    if (!header_seen) {
      return fail("missing hetmem-memattrs v1 header");
    }
    std::vector<std::string_view> tokens;
    for (std::string_view token : support::split(line, ' ')) {
      if (!token.empty()) tokens.push_back(token);
    }

    if (tokens[0] == "attr") {
      auto name = field(tokens, "name");
      auto polarity = field(tokens, "polarity");
      auto need_initiator = field(tokens, "initiator");
      if (!name || !polarity || !need_initiator) {
        return fail("attr needs name=, polarity=, initiator=");
      }
      if (registry.find_attribute(*name).ok()) continue;  // already present
      auto id = registry.register_attribute(
          *name,
          *polarity == "higher" ? Polarity::kHigherFirst : Polarity::kLowerFirst,
          *need_initiator == "1");
      if (!id.ok()) return id.error();
      continue;
    }
    if (tokens[0] != "value") return fail("unknown record");

    auto attr_name = field(tokens, "attr");
    auto target_text = field(tokens, "target");
    auto value_text = field(tokens, "v");
    if (!attr_name || !target_text || !value_text) {
      return fail("value needs attr=, target=, v=");
    }
    auto attr = registry.find_attribute(*attr_name);
    if (!attr.ok()) return fail("unknown attribute '" + std::string(*attr_name) + "'");

    unsigned target_os = 0;
    {
      auto [ptr, ec] = std::from_chars(
          target_text->data(), target_text->data() + target_text->size(), target_os);
      if (ec != std::errc{} || ptr != target_text->data() + target_text->size()) {
        return fail("bad target index");
      }
    }
    const topo::Object* target = topology.numa_node_by_os_index(target_os);
    if (target == nullptr) return fail("no NUMA node with OS index " +
                                       std::to_string(target_os));

    double value = 0.0;
    {
      auto [ptr, ec] = std::from_chars(
          value_text->data(), value_text->data() + value_text->size(), value);
      if (ec != std::errc{} || ptr != value_text->data() + value_text->size()) {
        return fail("bad value");
      }
    }

    std::optional<Initiator> initiator;
    if (auto initiator_text = field(tokens, "initiator"); initiator_text) {
      auto cpuset = support::Bitmap::parse(*initiator_text);
      if (!cpuset.has_value()) return fail("bad initiator cpuset");
      initiator = Initiator::from_cpuset(*cpuset);
    }
    if (Status status = registry.set_value(*attr, *target, initiator, value);
        !status.ok()) {
      return status;
    }
  }
  return {};
}

}  // namespace hetmem::attr
