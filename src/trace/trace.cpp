#include "hetmem/trace/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>

namespace hetmem::trace {

using support::Errc;
using support::make_error;
using support::Result;

namespace {

constexpr const char* kHeaderV1 = "hetmem-trace/1";
constexpr const char* kHeaderV2 = "hetmem-trace/2";

// Hexfloat ("%a") is the one printf format that round-trips every finite
// double exactly through strtod — the lossless-serialization property the
// replay determinism gate rests on.
void append_double(std::string& out, double value) {
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), "%a", value);
  out += buffer;
}

struct Cursor {
  const char* pos;
  const char* end;
  std::size_t line = 1;

  [[nodiscard]] bool done() const { return pos >= end; }

  /// Consumes one line, returning it without the trailing newline.
  std::string_view next_line() {
    const char* start = pos;
    while (pos < end && *pos != '\n') ++pos;
    std::string_view result(start, static_cast<std::size_t>(pos - start));
    if (pos < end) ++pos;  // swallow '\n'
    ++line;
    return result;
  }
};

support::Error parse_error(const Cursor& cursor, const std::string& what) {
  return make_error(Errc::kInvalidArgument,
                    "trace parse error at line " +
                        std::to_string(cursor.line - 1) + ": " + what);
}

/// Splits `text` at the first space; returns the head, advances `text`.
std::string_view take_word(std::string_view& text) {
  const std::size_t space = text.find(' ');
  std::string_view word = text.substr(0, space);
  text.remove_prefix(space == std::string_view::npos ? text.size() : space + 1);
  return word;
}

bool parse_u64(std::string_view word, std::uint64_t& out) {
  if (word.empty()) return false;
  char* parse_end = nullptr;
  const std::string owned(word);
  out = std::strtoull(owned.c_str(), &parse_end, 10);
  return parse_end == owned.c_str() + owned.size();
}

bool parse_f64(std::string_view word, double& out) {
  if (word.empty()) return false;
  char* parse_end = nullptr;
  const std::string owned(word);
  out = std::strtod(owned.c_str(), &parse_end);
  return parse_end == owned.c_str() + owned.size();
}

sim::BufferTraffic latency_profile(const SynthOptions& options) {
  // A pointer-chase shape: every access dependent-indexed, ~97% missing the
  // LLC (a working set far past cache), one line per miss reaching memory.
  sim::BufferTraffic traffic;
  const double misses = options.random_accesses * 0.97;
  traffic.reads = options.random_accesses;
  traffic.llc_misses = misses;
  traffic.random_accesses = options.random_accesses;
  traffic.random_misses = misses;
  traffic.memory_bytes = misses * 64.0;
  return traffic;
}

sim::BufferTraffic bandwidth_profile(const SynthOptions& options) {
  sim::BufferTraffic traffic;
  traffic.reads = options.stream_bytes / 64.0;
  traffic.llc_misses = options.stream_bytes / 64.0;
  traffic.memory_bytes = options.stream_bytes;
  return traffic;
}

sim::BufferTraffic scale(sim::BufferTraffic traffic, double factor) {
  traffic.reads *= factor;
  traffic.writes *= factor;
  traffic.llc_misses *= factor;
  traffic.memory_bytes *= factor;
  traffic.random_accesses *= factor;
  traffic.random_misses *= factor;
  return traffic;
}

sim::BufferTraffic blend(const sim::BufferTraffic& a,
                         const sim::BufferTraffic& b, double t) {
  sim::BufferTraffic out = scale(a, 1.0 - t);
  const sim::BufferTraffic part = scale(b, t);
  out.reads += part.reads;
  out.writes += part.writes;
  out.llc_misses += part.llc_misses;
  out.memory_bytes += part.memory_bytes;
  out.random_accesses += part.random_accesses;
  out.random_misses += part.random_misses;
  return out;
}

Trace synth_base(const SynthOptions& options) {
  Trace trace;
  trace.workload = options.workload;
  trace.threads = options.threads;
  trace.phases_per_epoch = 1;
  trace.epochs.reserve(options.epochs);
  return trace;
}

void push_epoch(Trace& trace, std::uint64_t index, double duration_ns,
                std::vector<runtime::EpochSample> samples) {
  runtime::Epoch epoch;
  epoch.index = index;
  epoch.duration_ns = duration_ns;
  for (const runtime::EpochSample& sample : samples) {
    epoch.total_memory_bytes += sample.traffic.memory_bytes;
  }
  epoch.samples = std::move(samples);
  trace.epochs.push_back(std::move(epoch));
}

}  // namespace

std::string serialize(const Trace& trace) {
  const bool v2 = trace.version >= 2;
  std::string out;
  out += v2 ? kHeaderV2 : kHeaderV1;
  out += '\n';
  out += "workload " + trace.workload + '\n';
  out += "threads " + std::to_string(trace.threads) + '\n';
  out += "phases_per_epoch " + std::to_string(trace.phases_per_epoch) + '\n';
  for (const runtime::Epoch& epoch : trace.epochs) {
    out += "epoch " + std::to_string(epoch.index) + ' ';
    append_double(out, epoch.duration_ns);
    if (v2) {
      out += ' ';
      append_double(out, epoch.sample_period);
    }
    out += '\n';
    for (const runtime::EpochSample& sample : epoch.samples) {
      out += "s " + std::to_string(sample.buffer.index);
      const double fields[] = {
          sample.traffic.reads,          sample.traffic.writes,
          sample.traffic.llc_misses,     sample.traffic.memory_bytes,
          sample.traffic.random_accesses, sample.traffic.random_misses,
      };
      for (double field : fields) {
        out += ' ';
        append_double(out, field);
      }
      out += '\n';
    }
  }
  out += "end\n";
  return out;
}

Result<Trace> parse(std::string_view text) {
  Cursor cursor{text.data(), text.data() + text.size()};
  Trace trace;
  if (cursor.done()) {
    return parse_error(cursor, std::string("expected header ") + kHeaderV1 +
                                   " or " + kHeaderV2);
  }
  const std::string_view header = cursor.next_line();
  if (header == kHeaderV1) {
    trace.version = 1;
  } else if (header == kHeaderV2) {
    trace.version = 2;
  } else {
    return parse_error(cursor, std::string("expected header ") + kHeaderV1 +
                                   " or " + kHeaderV2);
  }
  trace.workload.clear();
  runtime::Epoch* epoch = nullptr;
  bool ended = false;
  std::uint64_t number = 0;

  while (!cursor.done()) {
    std::string_view rest = cursor.next_line();
    if (rest.empty()) continue;
    const std::string_view tag = take_word(rest);
    if (tag == "workload") {
      trace.workload = std::string(rest);
    } else if (tag == "threads") {
      if (!parse_u64(take_word(rest), number)) {
        return parse_error(cursor, "bad thread count");
      }
      trace.threads = static_cast<unsigned>(number);
    } else if (tag == "phases_per_epoch") {
      if (!parse_u64(take_word(rest), number)) {
        return parse_error(cursor, "bad phases_per_epoch");
      }
      trace.phases_per_epoch = static_cast<unsigned>(number);
    } else if (tag == "epoch") {
      runtime::Epoch next;
      if (!parse_u64(take_word(rest), next.index) ||
          !parse_f64(take_word(rest), next.duration_ns)) {
        return parse_error(cursor, "bad epoch line");
      }
      if (trace.version >= 2 &&
          !parse_f64(take_word(rest), next.sample_period)) {
        return parse_error(cursor, "bad epoch line (v2 needs sample_period)");
      }
      trace.epochs.push_back(std::move(next));
      epoch = &trace.epochs.back();
    } else if (tag == "s") {
      if (epoch == nullptr) {
        return parse_error(cursor, "sample before any epoch");
      }
      runtime::EpochSample sample;
      if (!parse_u64(take_word(rest), number)) {
        return parse_error(cursor, "bad buffer id");
      }
      sample.buffer = sim::BufferId{static_cast<std::uint32_t>(number)};
      double* fields[] = {
          &sample.traffic.reads,          &sample.traffic.writes,
          &sample.traffic.llc_misses,     &sample.traffic.memory_bytes,
          &sample.traffic.random_accesses, &sample.traffic.random_misses,
      };
      for (double* field : fields) {
        if (!parse_f64(take_word(rest), *field)) {
          return parse_error(cursor, "bad sample counter");
        }
      }
      // total_memory_bytes is derived, summed in sample order exactly as
      // the recorder summed it — same additions, same rounding, same bits.
      epoch->total_memory_bytes += sample.traffic.memory_bytes;
      epoch->samples.push_back(std::move(sample));
    } else if (tag == "end") {
      ended = true;
      break;
    } else {
      return parse_error(cursor, "unknown record '" + std::string(tag) + "'");
    }
  }
  if (!ended) {
    return parse_error(cursor, "truncated trace (missing 'end')");
  }
  return trace;
}

TraceRecorder::TraceRecorder(RecorderOptions options)
    : options_(std::move(options)) {
  options_.phases_per_epoch = std::max(1u, options_.phases_per_epoch);
  trace_.version = 2;
  trace_.workload = options_.workload;
  trace_.phases_per_epoch = options_.phases_per_epoch;
}

void TraceRecorder::record_epoch(const sim::ExecutionContext& exec) {
  std::vector<sim::BufferTraffic> merged = exec.merged_buffer_traffic();
  if (snapshot_.size() < merged.size()) snapshot_.resize(merged.size());

  runtime::Epoch epoch;
  epoch.index = trace_.epochs.size();
  epoch.duration_ns = exec.clock_ns() - snapshot_clock_ns_;
  for (std::uint32_t index = 0; index < merged.size(); ++index) {
    const sim::BufferTraffic& now = merged[index];
    const sim::BufferTraffic& then = snapshot_[index];
    sim::BufferTraffic delta;
    delta.reads = now.reads - then.reads;
    delta.writes = now.writes - then.writes;
    delta.llc_misses = now.llc_misses - then.llc_misses;
    delta.memory_bytes = now.memory_bytes - then.memory_bytes;
    delta.random_accesses = now.random_accesses - then.random_accesses;
    delta.random_misses = now.random_misses - then.random_misses;
    // Same inclusion rule as EpochSampler::make_epoch, so a replaying
    // sampler consumes its rounding stream in lockstep with the live one.
    const bool any = delta.reads > 0.0 || delta.writes > 0.0 ||
                     delta.memory_bytes > 0.0;
    if (!any) continue;
    epoch.total_memory_bytes += delta.memory_bytes;
    epoch.samples.push_back(runtime::EpochSample{sim::BufferId{index}, delta});
  }
  snapshot_ = std::move(merged);
  snapshot_clock_ns_ = exec.clock_ns();
  phases_since_epoch_ = 0;
  trace_.threads = exec.thread_count();
  trace_.epochs.push_back(std::move(epoch));
}

void TraceRecorder::on_phase(const sim::ExecutionContext& exec) {
  if (++phases_since_epoch_ < options_.phases_per_epoch) return;
  record_epoch(exec);
}

void TraceRecorder::force_epoch(const sim::ExecutionContext& exec) {
  record_epoch(exec);
}

void TraceRecorder::attach(sim::ExecutionContext& exec,
                           runtime::RuntimePolicy* policy) {
  exec.set_phase_observer([this, policy, &exec](const sim::PhaseResult&) {
    on_phase(exec);
    if (policy != nullptr) {
      policy->on_phase(exec);
      // Backfill the live sampler's effective period onto the epoch just
      // recorded (the recorder runs first, so when both close an epoch on
      // the same phase their counters agree). That period is what trace/2
      // serializes and what a replaying sampler re-applies verbatim.
      if (!trace_.epochs.empty() &&
          policy->sampler().epochs_emitted() == trace_.epochs.size()) {
        const std::vector<double>& periods = policy->sampler().period_log();
        if (!periods.empty()) trace_.epochs.back().sample_period = periods.back();
      }
    }
  });
}

ReplayStats TraceReplayer::replay(const Trace& trace) {
  ReplayStats stats;
  for (const runtime::Epoch& raw : trace.epochs) {
    stats.paid_ns += policy_->replay_epoch(raw, trace.threads);
    ++stats.epochs;
  }
  return stats;
}

Trace synthesize_rotation(const std::vector<sim::BufferId>& buffers,
                          unsigned shift_every, double cold_fraction,
                          const SynthOptions& options) {
  Trace trace = synth_base(options);
  if (buffers.empty()) return trace;
  shift_every = std::max(1u, shift_every);
  const sim::BufferTraffic hot = latency_profile(options);
  const sim::BufferTraffic cold = scale(hot, cold_fraction);
  for (unsigned index = 0; index < options.epochs; ++index) {
    const std::size_t hot_slot =
        (index / shift_every) % buffers.size();
    std::vector<runtime::EpochSample> samples;
    samples.reserve(buffers.size());
    for (std::size_t slot = 0; slot < buffers.size(); ++slot) {
      samples.push_back({buffers[slot], slot == hot_slot ? hot : cold});
    }
    push_epoch(trace, index, options.duration_ns, std::move(samples));
  }
  return trace;
}

Trace synthesize_square(sim::BufferId buffer, unsigned half_period,
                        const SynthOptions& options) {
  Trace trace = synth_base(options);
  half_period = std::max(1u, half_period);
  const sim::BufferTraffic streaming = bandwidth_profile(options);
  const sim::BufferTraffic chasing = latency_profile(options);
  for (unsigned index = 0; index < options.epochs; ++index) {
    const bool high = (index / half_period) % 2 == 1;
    push_epoch(trace, index, options.duration_ns,
               {{buffer, high ? chasing : streaming}});
  }
  return trace;
}

Trace synthesize_ramp(sim::BufferId buffer, unsigned ramp_start,
                      unsigned ramp_epochs, const SynthOptions& options) {
  Trace trace = synth_base(options);
  ramp_epochs = std::max(1u, ramp_epochs);
  const sim::BufferTraffic streaming = bandwidth_profile(options);
  const sim::BufferTraffic chasing = latency_profile(options);
  for (unsigned index = 0; index < options.epochs; ++index) {
    double t = 0.0;
    if (index >= ramp_start) {
      t = std::min(1.0, static_cast<double>(index - ramp_start + 1) /
                            ramp_epochs);
    }
    push_epoch(trace, index, options.duration_ns,
               {{buffer, blend(streaming, chasing, t)}});
  }
  return trace;
}

}  // namespace hetmem::trace
