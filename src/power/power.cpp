#include "hetmem/power/power.hpp"

#include "hetmem/support/units.hpp"

namespace hetmem::power {

support::Status feed_registry(attr::MemAttrRegistry& registry,
                              const sim::SimMachine& machine) {
  const sim::MachinePerfModel& model = machine.perf_model();
  for (const topo::Object* node : machine.topology().numa_nodes()) {
    const sim::NodePowerModel& power = model.node_power(node->logical_index());
    const double energy_nj_per_byte =
        (power.read_nj_per_byte + power.write_nj_per_byte) / 2.0;
    const double capacity_gib = static_cast<double>(node->capacity_bytes()) /
                                static_cast<double>(support::kGiB);
    const double static_watts = power.static_w_per_gib * capacity_gib;
    if (auto status = registry.set_value(attr::kEnergyPerByte, *node,
                                         std::nullopt, energy_nj_per_byte);
        !status.ok()) {
      return status;
    }
    if (auto status = registry.set_value(attr::kStaticPower, *node,
                                         std::nullopt, static_watts);
        !status.ok()) {
      return status;
    }
  }
  return {};
}

}  // namespace hetmem::power
