#include "hetmem/power/governor.hpp"

#include <climits>

#include "hetmem/memattr/compose.hpp"
#include "hetmem/power/power.hpp"
#include "hetmem/support/units.hpp"

namespace hetmem::power {

const char* power_verdict_name(PowerVerdict verdict) {
  switch (verdict) {
    case PowerVerdict::kDrained: return "drained";
    case PowerVerdict::kThrottled: return "throttled";
    case PowerVerdict::kNoTarget: return "no-target";
    case PowerVerdict::kBudgetExhausted: return "budget-exhausted";
    case PowerVerdict::kTenantDenied: return "tenant-denied";
    case PowerVerdict::kFailedMigrate: return "failed-migrate";
  }
  return "?";
}

PowerGovernor::PowerGovernor(alloc::HeterogeneousAllocator& allocator,
                             runtime::MigrationEngine& engine,
                             support::Bitmap initiator, GovernorOptions options)
    : allocator_(&allocator),
      engine_(&engine),
      initiator_(std::move(initiator)),
      options_(options),
      over_streak_(allocator.machine().topology().numa_nodes().size(), 0) {}

double PowerGovernor::machine_draw_watts() const {
  const sim::SimMachine& machine = allocator_->machine();
  double total = 0.0;
  for (unsigned node = 0; node < over_streak_.size(); ++node) {
    total += machine.power_draw_watts(node);
  }
  return total;
}

bool PowerGovernor::near_cap() const {
  const double cap = allocator_->machine().power_cap_watts();
  if (cap <= 0.0) return false;
  return machine_draw_watts() >= options_.near_cap_fraction * cap;
}

unsigned PowerGovernor::pick_offender() const {
  sim::SimMachine& machine = allocator_->machine();
  unsigned offender = UINT_MAX;
  double worst_draw = -1.0;
  for (unsigned node = 0; node < over_streak_.size(); ++node) {
    if (machine.live_buffers_on(node).empty()) continue;
    const double draw = machine.power_draw_watts(node);
    if (draw > worst_draw) {
      worst_draw = draw;
      offender = node;
    }
  }
  return offender;
}

void PowerGovernor::log(std::uint64_t epoch, unsigned node, sim::BufferId buffer,
                        std::string label, unsigned to_node, std::uint64_t bytes,
                        PowerVerdict verdict, std::string reason) {
  PowerDecision decision;
  decision.epoch = epoch;
  decision.node = node;
  decision.buffer = buffer;
  decision.label = std::move(label);
  decision.to_node = to_node;
  decision.bytes = bytes;
  decision.verdict = verdict;
  decision.reason = std::move(reason);
  decisions_.push_back(std::move(decision));
}

std::string PowerGovernor::render_log() const {
  std::string out;
  for (const PowerDecision& decision : decisions_) {
    out += "epoch " + std::to_string(decision.epoch) + " " +
           power_verdict_name(decision.verdict) + " node" +
           std::to_string(decision.node);
    if (decision.verdict == PowerVerdict::kDrained) {
      out += " -> node" + std::to_string(decision.to_node);
    }
    if (!decision.label.empty()) out += " '" + decision.label + "'";
    if (decision.bytes != 0) out += " " + std::to_string(decision.bytes) + "B";
    if (!decision.reason.empty()) out += " (" + decision.reason + ")";
    out += "\n";
  }
  return out;
}

double PowerGovernor::run_epoch(std::uint64_t epoch_index, unsigned threads) {
  (void)threads;
  sim::SimMachine& machine = allocator_->machine();
  const double cap = machine.power_cap_watts();
  // Idle: no cap means no reads of the registry, no migrations, no
  // generation churn — the satellite regression test pins this down.
  if (cap <= 0.0) return 0.0;
  ++stats_.epochs;
  const double draw = machine_draw_watts();
  if (draw <= cap) {
    for (unsigned& streak : over_streak_) streak = 0;
    return 0.0;
  }
  ++stats_.over_cap_epochs;

  const unsigned offender = pick_offender();
  if (offender == UINT_MAX) return 0.0;  // nothing movable anywhere
  // Streaks are per node: a different offender resets everyone else, so
  // only *sustained* pressure on one node escalates to throttling.
  for (unsigned node = 0; node < over_streak_.size(); ++node) {
    if (node != offender) over_streak_[node] = 0;
  }
  ++over_streak_[offender];
  if (over_streak_[offender] > options_.throttle_after_epochs) {
    machine.report_thermal_throttle(offender);
    ++stats_.throttle_events;
    log(epoch_index, offender, sim::BufferId{}, "", offender, 0,
        PowerVerdict::kThrottled,
        "draw " + support::format_fixed(draw, 1) + " W > cap " +
            support::format_fixed(cap, 1) + " W for " +
            std::to_string(over_streak_[offender]) + " epochs");
  }

  // Drain toward the most energy-efficient targets (kEnergyPerByte is
  // lower-first). The cached ranking already sinks quarantined targets.
  const attr::MemAttrRegistry& registry = allocator_->registry();
  const attr::RankingSnapshot ranking = registry.targets_ranked_resilient_cached(
      attr::kEnergyPerByte, attr::Initiator::from_cpuset(initiator_),
      topo::LocalityFlags::kIntersecting);

  double paid_ns = 0.0;
  std::uint64_t drained = 0;
  for (sim::BufferId buffer : machine.live_buffers_on(offender)) {
    const sim::BufferInfo info = machine.info(buffer);
    if (info.freed || info.node != offender) continue;
    if (drained + info.declared_bytes > options_.drain_max_bytes_per_epoch) {
      log(epoch_index, offender, buffer, info.label, offender,
          info.declared_bytes, PowerVerdict::kBudgetExhausted,
          "drain ceiling reached");
      break;
    }
    unsigned destination = UINT_MAX;
    for (const attr::TargetValue& target : ranking->targets) {
      const unsigned candidate = target.target->logical_index();
      if (candidate == offender) continue;
      if (machine.available_bytes(candidate) < info.declared_bytes) continue;
      destination = candidate;
      break;
    }
    if (destination == UINT_MAX) {
      log(epoch_index, offender, buffer, info.label, offender,
          info.declared_bytes, PowerVerdict::kNoTarget,
          "no energy-ranked target has room");
      break;
    }
    if (!engine_->tenant_draw(epoch_index, buffer, info.declared_bytes)) {
      log(epoch_index, offender, buffer, info.label, destination,
          info.declared_bytes, PowerVerdict::kTenantDenied,
          "tenant slice exhausted");
      continue;
    }
    if (!engine_->consume_budget(epoch_index, info.declared_bytes)) {
      log(epoch_index, offender, buffer, info.label, destination,
          info.declared_bytes, PowerVerdict::kBudgetExhausted,
          "shared epoch budget exhausted");
      break;
    }
    const support::Result<double> cost =
        allocator_->migrate(buffer, destination);
    if (!cost.ok()) {
      log(epoch_index, offender, buffer, info.label, destination,
          info.declared_bytes, PowerVerdict::kFailedMigrate,
          cost.error().message);
      continue;
    }
    paid_ns += *cost;
    drained += info.declared_bytes;
    ++stats_.drained_buffers;
    stats_.drained_bytes += info.declared_bytes;
    stats_.drain_cost_ns += *cost;
    log(epoch_index, offender, buffer, info.label, destination,
        info.declared_bytes, PowerVerdict::kDrained,
        "draw " + support::format_fixed(draw, 1) + " W > cap " +
            support::format_fixed(cap, 1) + " W");
  }
  return paid_ns;
}

std::vector<attr::TargetValue> PowerGovernor::placement_ranking(
    attr::AttrId attr, topo::LocalityFlags flags) const {
  const attr::MemAttrRegistry& registry = allocator_->registry();
  const attr::Initiator initiator = attr::Initiator::from_cpuset(initiator_);
  if (!near_cap()) {
    // Cached, byte-identical to targets_ranked — placement is unaffected
    // until the governor has a reason to intervene.
    return registry.targets_ranked_cached(attr, initiator, flags)->targets;
  }
  // Near the cap: same candidates, same quarantine layer, but the
  // within-bucket key becomes achievable-bandwidth-per-watt. The raw value
  // still reports the ranked attribute.
  auto composition = attr::RankingComposition::standard(
      attr::Polarity::kHigherFirst, /*confidence_aware=*/false);
  composition.set_objective(
      [&registry](const attr::RankCandidate& candidate) {
        const double energy_nj =
            registry.value(attr::kEnergyPerByte, *candidate.target, std::nullopt)
                .value_or(0.0);
        const double static_w =
            registry.value(attr::kStaticPower, *candidate.target, std::nullopt)
                .value_or(0.0);
        // candidate.value is bytes/s for bandwidth-class attributes; watts =
        // static + dynamic at full utilization (bytes/s * J/byte).
        const double watts = static_w + candidate.value * energy_nj * 1e-9;
        return watts > 0.0 ? candidate.value / watts : candidate.value;
      },
      attr::Polarity::kHigherFirst);
  return composition.compose(registry.rank_candidates(attr, initiator, flags));
}

void attach_governor(runtime::RuntimePolicy& policy, PowerGovernor& governor) {
  policy.add_epoch_hook([&governor](std::uint64_t epoch_index, unsigned threads) {
    return governor.run_epoch(epoch_index, threads);
  });
}

}  // namespace hetmem::power
