#include "hetmem/hmat/hmat.hpp"

#include <charconv>

#include "hetmem/support/str.hpp"
#include "hetmem/support/units.hpp"

namespace hetmem::hmat {

using support::Bitmap;
using support::Errc;
using support::gb_per_s;
using support::make_error;
using support::Result;

const char* access_type_name(AccessType type) {
  switch (type) {
    case AccessType::kAccess: return "access";
    case AccessType::kRead: return "read";
    case AccessType::kWrite: return "write";
  }
  return "?";
}

const char* metric_name(Metric metric) {
  return metric == Metric::kLatency ? "latency" : "bandwidth";
}

AdvertisedPerf advertised_defaults(topo::MemoryKind kind) {
  switch (kind) {
    case topo::MemoryKind::kDRAM:
      // Fig. 5: 26 ns, 131072 MiB/s local DRAM.
      return {.latency_ns = 26.0,
              .bandwidth_bps = 131072.0 * static_cast<double>(support::kMiB),
              .read_bandwidth_bps = 0.0,
              .write_bandwidth_bps = 0.0};
    case topo::MemoryKind::kHBM:
      // §IV-A1 example: local HBM at 500 GB/s, 100 ns.
      return {.latency_ns = 100.0,
              .bandwidth_bps = gb_per_s(500.0),
              .read_bandwidth_bps = 0.0,
              .write_bandwidth_bps = 0.0};
    case topo::MemoryKind::kNVDIMM:
      // Fig. 5: 77 ns, 78644 MiB/s; vendors advertise asymmetric R/W.
      return {.latency_ns = 77.0,
              .bandwidth_bps = 78644.0 * static_cast<double>(support::kMiB),
              .read_bandwidth_bps = gb_per_s(40.0),
              .write_bandwidth_bps = gb_per_s(13.0)};
    case topo::MemoryKind::kNAM:
      return {.latency_ns = 1200.0,
              .bandwidth_bps = gb_per_s(16.0),
              .read_bandwidth_bps = 0.0,
              .write_bandwidth_bps = 0.0};
    case topo::MemoryKind::kGPU:
      return {.latency_ns = 380.0,
              .bandwidth_bps = gb_per_s(64.0),
              .read_bandwidth_bps = 0.0,
              .write_bandwidth_bps = 0.0};
  }
  return {};
}

HmatTable generate(const topo::Topology& topology, const GenerateOptions& options) {
  HmatTable table;
  for (const topo::Object* node : topology.numa_nodes()) {
    const AdvertisedPerf perf = advertised_defaults(node->memory_kind());

    auto emit = [&](const Bitmap& initiator, double factor_lat, double factor_bw) {
      table.locality.push_back(LocalityEntry{initiator, node->os_index(),
                                             Metric::kLatency, AccessType::kAccess,
                                             perf.latency_ns * factor_lat});
      table.locality.push_back(LocalityEntry{initiator, node->os_index(),
                                             Metric::kBandwidth, AccessType::kAccess,
                                             perf.bandwidth_bps * factor_bw});
      if (options.read_write_split && perf.read_bandwidth_bps > 0.0) {
        table.locality.push_back(LocalityEntry{initiator, node->os_index(),
                                               Metric::kBandwidth, AccessType::kRead,
                                               perf.read_bandwidth_bps * factor_bw});
        table.locality.push_back(LocalityEntry{initiator, node->os_index(),
                                               Metric::kBandwidth, AccessType::kWrite,
                                               perf.write_bandwidth_bps * factor_bw});
      }
    };

    emit(node->cpuset(), 1.0, 1.0);
    if (!options.local_only) {
      const Bitmap remote = topology.complete_cpuset().and_not(node->cpuset());
      if (!remote.empty()) {
        emit(remote, options.remote_latency_factor, options.remote_bandwidth_factor);
      }
    }

    if (node->memory_side_cache().has_value()) {
      const topo::MemorySideCache& cache = *node->memory_side_cache();
      table.caches.push_back(CacheEntry{node->os_index(), cache.size_bytes,
                                        cache.associativity, cache.line_bytes});
    }
  }
  return table;
}

std::string serialize(const HmatTable& table) {
  std::string out = "# hetmem-hmat v1\n";
  for (const LocalityEntry& entry : table.locality) {
    out += std::string(metric_name(entry.metric)) + " " +
           access_type_name(entry.access) +
           " initiator=" + entry.initiator.to_list_string() +
           " target=" + std::to_string(entry.target_domain);
    if (entry.metric == Metric::kLatency) {
      out += " value_ns=" + support::format_fixed(entry.value, 3);
    } else {
      out += " value_bps=" + support::format_fixed(entry.value, 0);
    }
    out += '\n';
  }
  for (const CacheEntry& cache : table.caches) {
    out += "cache target=" + std::to_string(cache.target_domain) +
           " size=" + std::to_string(cache.size_bytes) +
           " assoc=" + std::to_string(cache.associativity) +
           " line=" + std::to_string(cache.line_bytes) + "\n";
  }
  return out;
}

namespace {

Result<double> parse_double(std::string_view text) {
  double value = 0.0;
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    return make_error(Errc::kParseError, "bad number '" + std::string(text) + "'");
  }
  return value;
}

Result<unsigned> parse_unsigned(std::string_view text) {
  unsigned value = 0;
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    return make_error(Errc::kParseError, "bad integer '" + std::string(text) + "'");
  }
  return value;
}

/// "key=value" -> value for the given key; error when absent.
Result<std::string_view> field(const std::vector<std::string_view>& tokens,
                               std::string_view key) {
  const std::string prefix = std::string(key) + "=";
  for (std::string_view token : tokens) {
    if (support::starts_with(token, prefix)) return token.substr(prefix.size());
  }
  return make_error(Errc::kParseError, "missing field '" + std::string(key) + "'");
}

}  // namespace

Result<HmatTable> parse(std::string_view text) {
  HmatTable table;
  std::size_t line_number = 0;
  for (std::string_view raw_line : support::split(text, '\n')) {
    ++line_number;
    std::string_view line = support::trim(raw_line);
    if (line.empty() || line.front() == '#') continue;

    std::vector<std::string_view> tokens;
    for (std::string_view token : support::split(line, ' ')) {
      if (!token.empty()) tokens.push_back(token);
    }
    auto fail = [&](std::string message) -> Result<HmatTable> {
      return make_error(Errc::kParseError,
                        "line " + std::to_string(line_number) + ": " + message);
    };

    if (tokens[0] == "cache") {
      CacheEntry cache;
      auto target = field(tokens, "target");
      if (!target.ok()) return fail(target.error().message);
      auto target_value = parse_unsigned(*target);
      if (!target_value.ok()) return fail(target_value.error().message);
      cache.target_domain = *target_value;

      auto size = field(tokens, "size");
      if (!size.ok()) return fail(size.error().message);
      auto size_value = parse_double(*size);
      if (!size_value.ok()) return fail(size_value.error().message);
      cache.size_bytes = static_cast<std::uint64_t>(*size_value);

      if (auto assoc = field(tokens, "assoc"); assoc.ok()) {
        auto v = parse_unsigned(*assoc);
        if (!v.ok()) return fail(v.error().message);
        cache.associativity = *v;
      }
      if (auto cache_line = field(tokens, "line"); cache_line.ok()) {
        auto v = parse_unsigned(*cache_line);
        if (!v.ok()) return fail(v.error().message);
        cache.line_bytes = *v;
      }
      table.caches.push_back(cache);
      continue;
    }

    LocalityEntry entry;
    if (tokens[0] == "latency") {
      entry.metric = Metric::kLatency;
    } else if (tokens[0] == "bandwidth") {
      entry.metric = Metric::kBandwidth;
    } else {
      return fail("unknown record '" + std::string(tokens[0]) + "'");
    }
    if (tokens.size() < 2) return fail("missing access type");
    if (tokens[1] == "access") {
      entry.access = AccessType::kAccess;
    } else if (tokens[1] == "read") {
      entry.access = AccessType::kRead;
    } else if (tokens[1] == "write") {
      entry.access = AccessType::kWrite;
    } else {
      return fail("unknown access type '" + std::string(tokens[1]) + "'");
    }

    auto initiator = field(tokens, "initiator");
    if (!initiator.ok()) return fail(initiator.error().message);
    auto initiator_set = Bitmap::parse(*initiator);
    if (!initiator_set.has_value()) {
      return fail("bad initiator cpuset '" + std::string(*initiator) + "'");
    }
    entry.initiator = *initiator_set;

    auto target = field(tokens, "target");
    if (!target.ok()) return fail(target.error().message);
    auto target_value = parse_unsigned(*target);
    if (!target_value.ok()) return fail(target_value.error().message);
    entry.target_domain = *target_value;

    const char* value_key = entry.metric == Metric::kLatency ? "value_ns" : "value_bps";
    auto value_text = field(tokens, value_key);
    if (!value_text.ok()) return fail(value_text.error().message);
    auto value = parse_double(*value_text);
    if (!value.ok()) return fail(value.error().message);
    if (*value <= 0.0) return fail("non-positive value");
    entry.value = *value;

    table.locality.push_back(std::move(entry));
  }
  return table;
}

Result<LoadStats> load_into(attr::MemAttrRegistry& registry, const HmatTable& table) {
  const topo::Topology& topology = registry.topology();
  LoadStats stats;
  for (const LocalityEntry& entry : table.locality) {
    const topo::Object* target = topology.numa_node_by_os_index(entry.target_domain);
    if (target == nullptr || entry.initiator.empty()) {
      ++stats.entries_skipped;
      continue;
    }
    attr::AttrId attr = 0;
    if (entry.metric == Metric::kLatency) {
      attr = entry.access == AccessType::kAccess ? attr::kLatency
             : entry.access == AccessType::kRead ? attr::kReadLatency
                                                 : attr::kWriteLatency;
    } else {
      attr = entry.access == AccessType::kAccess ? attr::kBandwidth
             : entry.access == AccessType::kRead ? attr::kReadBandwidth
                                                 : attr::kWriteBandwidth;
    }
    auto status = registry.set_value(
        attr, *target, attr::Initiator::from_cpuset(entry.initiator), entry.value);
    if (!status.ok()) return status.error();
    ++stats.entries_loaded;
  }
  return stats;
}

}  // namespace hetmem::hmat
