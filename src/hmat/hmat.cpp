#include "hetmem/hmat/hmat.hpp"

#include <charconv>
#include <cmath>

#include "hetmem/support/str.hpp"
#include "hetmem/support/units.hpp"

namespace hetmem::hmat {

using support::Bitmap;
using support::Errc;
using support::gb_per_s;
using support::make_error;
using support::Result;
using support::Status;

const char* access_type_name(AccessType type) {
  switch (type) {
    case AccessType::kAccess: return "access";
    case AccessType::kRead: return "read";
    case AccessType::kWrite: return "write";
  }
  return "?";
}

const char* metric_name(Metric metric) {
  return metric == Metric::kLatency ? "latency" : "bandwidth";
}

AdvertisedPerf advertised_defaults(topo::MemoryKind kind) {
  switch (kind) {
    case topo::MemoryKind::kDRAM:
      // Fig. 5: 26 ns, 131072 MiB/s local DRAM.
      return {.latency_ns = 26.0,
              .bandwidth_bps = 131072.0 * static_cast<double>(support::kMiB),
              .read_bandwidth_bps = 0.0,
              .write_bandwidth_bps = 0.0};
    case topo::MemoryKind::kHBM:
      // §IV-A1 example: local HBM at 500 GB/s, 100 ns.
      return {.latency_ns = 100.0,
              .bandwidth_bps = gb_per_s(500.0),
              .read_bandwidth_bps = 0.0,
              .write_bandwidth_bps = 0.0};
    case topo::MemoryKind::kNVDIMM:
      // Fig. 5: 77 ns, 78644 MiB/s; vendors advertise asymmetric R/W.
      return {.latency_ns = 77.0,
              .bandwidth_bps = 78644.0 * static_cast<double>(support::kMiB),
              .read_bandwidth_bps = gb_per_s(40.0),
              .write_bandwidth_bps = gb_per_s(13.0)};
    case topo::MemoryKind::kNAM:
      return {.latency_ns = 1200.0,
              .bandwidth_bps = gb_per_s(16.0),
              .read_bandwidth_bps = 0.0,
              .write_bandwidth_bps = 0.0};
    case topo::MemoryKind::kGPU:
      return {.latency_ns = 380.0,
              .bandwidth_bps = gb_per_s(64.0),
              .read_bandwidth_bps = 0.0,
              .write_bandwidth_bps = 0.0};
  }
  return {};
}

HmatTable generate(const topo::Topology& topology, const GenerateOptions& options) {
  HmatTable table;
  for (const topo::Object* node : topology.numa_nodes()) {
    const AdvertisedPerf perf = advertised_defaults(node->memory_kind());

    auto emit = [&](const Bitmap& initiator, double factor_lat, double factor_bw) {
      table.locality.push_back(LocalityEntry{initiator, node->os_index(),
                                             Metric::kLatency, AccessType::kAccess,
                                             perf.latency_ns * factor_lat});
      table.locality.push_back(LocalityEntry{initiator, node->os_index(),
                                             Metric::kBandwidth, AccessType::kAccess,
                                             perf.bandwidth_bps * factor_bw});
      if (options.read_write_split && perf.read_bandwidth_bps > 0.0) {
        table.locality.push_back(LocalityEntry{initiator, node->os_index(),
                                               Metric::kBandwidth, AccessType::kRead,
                                               perf.read_bandwidth_bps * factor_bw});
        table.locality.push_back(LocalityEntry{initiator, node->os_index(),
                                               Metric::kBandwidth, AccessType::kWrite,
                                               perf.write_bandwidth_bps * factor_bw});
      }
    };

    emit(node->cpuset(), 1.0, 1.0);
    if (!options.local_only) {
      const Bitmap remote = topology.complete_cpuset().and_not(node->cpuset());
      if (!remote.empty()) {
        emit(remote, options.remote_latency_factor, options.remote_bandwidth_factor);
      }
    }

    if (node->memory_side_cache().has_value()) {
      const topo::MemorySideCache& cache = *node->memory_side_cache();
      table.caches.push_back(CacheEntry{node->os_index(), cache.size_bytes,
                                        cache.associativity, cache.line_bytes});
    }
  }
  return table;
}

std::string serialize(const HmatTable& table) {
  std::string out = "# hetmem-hmat v1\n";
  for (const LocalityEntry& entry : table.locality) {
    out += std::string(metric_name(entry.metric)) + " " +
           access_type_name(entry.access) +
           " initiator=" + entry.initiator.to_list_string() +
           " target=" + std::to_string(entry.target_domain);
    if (entry.metric == Metric::kLatency) {
      out += " value_ns=" + support::format_fixed(entry.value, 3);
    } else {
      out += " value_bps=" + support::format_fixed(entry.value, 0);
    }
    out += '\n';
  }
  for (const CacheEntry& cache : table.caches) {
    out += "cache target=" + std::to_string(cache.target_domain) +
           " size=" + std::to_string(cache.size_bytes) +
           " assoc=" + std::to_string(cache.associativity) +
           " line=" + std::to_string(cache.line_bytes) + "\n";
  }
  return out;
}

namespace {

Result<double> parse_double(std::string_view text) {
  double value = 0.0;
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    return make_error(Errc::kParseError, "bad number '" + std::string(text) + "'");
  }
  return value;
}

Result<unsigned> parse_unsigned(std::string_view text) {
  unsigned value = 0;
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    return make_error(Errc::kParseError, "bad integer '" + std::string(text) + "'");
  }
  return value;
}

/// "key=value" -> value for the given key; error when absent.
Result<std::string_view> field(const std::vector<std::string_view>& tokens,
                               std::string_view key) {
  const std::string prefix = std::string(key) + "=";
  for (std::string_view token : tokens) {
    if (support::starts_with(token, prefix)) return token.substr(prefix.size());
  }
  return make_error(Errc::kParseError, "missing field '" + std::string(key) + "'");
}

/// Parses one record line into `table`. kNotFound means "not a record"
/// (blank/comment, handled by the caller); any other error is a malformed
/// record the lenient parser skips and the strict parser aborts on.
Status parse_record(const std::vector<std::string_view>& tokens, HmatTable& table) {
  if (tokens[0] == "cache") {
    CacheEntry cache;
    auto target = field(tokens, "target");
    if (!target.ok()) return target.error();
    auto target_value = parse_unsigned(*target);
    if (!target_value.ok()) return target_value.error();
    cache.target_domain = *target_value;

    auto size = field(tokens, "size");
    if (!size.ok()) return size.error();
    auto size_value = parse_double(*size);
    if (!size_value.ok()) return size_value.error();
    cache.size_bytes = static_cast<std::uint64_t>(*size_value);

    if (auto assoc = field(tokens, "assoc"); assoc.ok()) {
      auto v = parse_unsigned(*assoc);
      if (!v.ok()) return v.error();
      cache.associativity = *v;
    }
    if (auto cache_line = field(tokens, "line"); cache_line.ok()) {
      auto v = parse_unsigned(*cache_line);
      if (!v.ok()) return v.error();
      cache.line_bytes = *v;
    }
    table.caches.push_back(cache);
    return {};
  }

  LocalityEntry entry;
  if (tokens[0] == "latency") {
    entry.metric = Metric::kLatency;
  } else if (tokens[0] == "bandwidth") {
    entry.metric = Metric::kBandwidth;
  } else {
    return make_error(Errc::kParseError,
                      "unknown record '" + std::string(tokens[0]) + "'");
  }
  if (tokens.size() < 2) {
    return make_error(Errc::kParseError, "missing access type");
  }
  if (tokens[1] == "access") {
    entry.access = AccessType::kAccess;
  } else if (tokens[1] == "read") {
    entry.access = AccessType::kRead;
  } else if (tokens[1] == "write") {
    entry.access = AccessType::kWrite;
  } else {
    return make_error(Errc::kParseError,
                      "unknown access type '" + std::string(tokens[1]) + "'");
  }

  auto initiator = field(tokens, "initiator");
  if (!initiator.ok()) return initiator.error();
  auto initiator_set = Bitmap::parse(*initiator);
  if (!initiator_set.has_value()) {
    return make_error(Errc::kParseError,
                      "bad initiator cpuset '" + std::string(*initiator) + "'");
  }
  entry.initiator = *initiator_set;

  auto target = field(tokens, "target");
  if (!target.ok()) return target.error();
  auto target_value = parse_unsigned(*target);
  if (!target_value.ok()) return target_value.error();
  entry.target_domain = *target_value;

  const char* value_key = entry.metric == Metric::kLatency ? "value_ns" : "value_bps";
  auto value_text = field(tokens, value_key);
  if (!value_text.ok()) return value_text.error();
  auto value = parse_double(*value_text);
  if (!value.ok()) return value.error();
  // NB: !(value > 0) also rejects NaN, which from_chars happily produces
  // from corrupted "nan"-prefixed text — NaN must never enter a ranking.
  if (!(*value > 0.0) || !std::isfinite(*value)) {
    return make_error(Errc::kParseError, "non-positive value");
  }
  entry.value = *value;

  table.locality.push_back(std::move(entry));
  return {};
}

/// Duplicate key of a locality entry; equality means the entries describe
/// the same (initiator, target, metric, access) measurement.
bool same_key(const LocalityEntry& a, const LocalityEntry& b) {
  return a.target_domain == b.target_domain && a.metric == b.metric &&
         a.access == b.access && a.initiator == b.initiator;
}

std::string key_to_string(const LocalityEntry& entry) {
  return std::string(metric_name(entry.metric)) + " " +
         access_type_name(entry.access) + " initiator=" +
         entry.initiator.to_list_string() + " target=" +
         std::to_string(entry.target_domain);
}

/// Last-wins dedupe; when line numbers and a diagnostics sink are supplied,
/// each dropped earlier occurrence becomes a warning.
std::size_t dedupe_locality(HmatTable& table, const std::vector<std::size_t>* lines,
                            std::vector<Diagnostic>* diagnostics) {
  std::vector<LocalityEntry> kept;
  std::size_t removed = 0;
  for (std::size_t i = 0; i < table.locality.size(); ++i) {
    const LocalityEntry& entry = table.locality[i];
    bool superseded = false;
    for (std::size_t j = i + 1; j < table.locality.size(); ++j) {
      if (same_key(entry, table.locality[j])) {
        superseded = true;
        break;
      }
    }
    if (!superseded) {
      kept.push_back(entry);
      continue;
    }
    ++removed;
    if (diagnostics != nullptr) {
      const std::size_t line = lines != nullptr && i < lines->size() ? (*lines)[i] : 0;
      diagnostics->push_back(
          Diagnostic{line, /*warning=*/true,
                     "duplicate entry (" + key_to_string(entry) +
                         "): superseded by a later occurrence (last wins)"});
    }
  }
  table.locality = std::move(kept);
  return removed;
}

}  // namespace

std::size_t ParseReport::error_count() const {
  std::size_t count = 0;
  for (const Diagnostic& d : diagnostics) {
    if (!d.warning) ++count;
  }
  return count;
}

std::size_t ParseReport::warning_count() const {
  return diagnostics.size() - error_count();
}

std::size_t dedupe_entries(HmatTable& table) {
  return dedupe_locality(table, nullptr, nullptr);
}

ParseReport parse_lenient(std::string_view text) {
  ParseReport report;
  std::vector<std::size_t> entry_lines;  // parallel to table.locality
  std::size_t line_number = 0;
  for (std::string_view raw_line : support::split(text, '\n')) {
    ++line_number;
    std::string_view line = support::trim(raw_line);
    if (line.empty() || line.front() == '#') continue;

    std::vector<std::string_view> tokens;
    for (std::string_view token : support::split(line, ' ')) {
      if (!token.empty()) tokens.push_back(token);
    }
    const std::size_t locality_before = report.table.locality.size();
    if (Status status = parse_record(tokens, report.table); !status.ok()) {
      report.diagnostics.push_back(
          Diagnostic{line_number, /*warning=*/false, status.error().message});
      continue;
    }
    if (report.table.locality.size() > locality_before) {
      entry_lines.push_back(line_number);
    }
  }
  dedupe_locality(report.table, &entry_lines, &report.diagnostics);
  return report;
}

Result<HmatTable> parse(std::string_view text) {
  ParseReport report = parse_lenient(text);
  for (const Diagnostic& diagnostic : report.diagnostics) {
    if (diagnostic.warning) continue;  // duplicates resolved last-wins
    return make_error(Errc::kParseError, "line " +
                                             std::to_string(diagnostic.line) +
                                             ": " + diagnostic.message);
  }
  return std::move(report.table);
}

Result<LoadStats> load_into(attr::MemAttrRegistry& registry, const HmatTable& table) {
  const topo::Topology& topology = registry.topology();
  LoadStats stats;
  for (const LocalityEntry& entry : table.locality) {
    const topo::Object* target = topology.numa_node_by_os_index(entry.target_domain);
    if (target == nullptr || entry.initiator.empty()) {
      ++stats.entries_skipped;
      continue;
    }
    attr::AttrId attr = 0;
    if (entry.metric == Metric::kLatency) {
      attr = entry.access == AccessType::kAccess ? attr::kLatency
             : entry.access == AccessType::kRead ? attr::kReadLatency
                                                 : attr::kWriteLatency;
    } else {
      attr = entry.access == AccessType::kAccess ? attr::kBandwidth
             : entry.access == AccessType::kRead ? attr::kReadBandwidth
                                                 : attr::kWriteBandwidth;
    }
    auto status = registry.set_value(
        attr, *target, attr::Initiator::from_cpuset(entry.initiator), entry.value);
    if (!status.ok()) return status.error();
    ++stats.entries_loaded;
  }
  return stats;
}

}  // namespace hetmem::hmat
