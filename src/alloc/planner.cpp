#include "hetmem/alloc/planner.hpp"

#include <algorithm>
#include <numeric>

namespace hetmem::alloc {

using support::Errc;
using support::make_error;
using support::Result;

Plan plan_placements(const sim::SimMachine& machine,
                     const attr::MemAttrRegistry& registry,
                     const support::Bitmap& initiator,
                     std::vector<PlannedRequest> requests,
                     topo::LocalityFlags locality) {
  // Process by descending priority, stable within equal priorities.
  std::vector<std::size_t> order(requests.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return requests[a].priority > requests[b].priority;
  });

  // Free capacity snapshot.
  std::vector<std::uint64_t> free_bytes(machine.topology().numa_nodes().size());
  for (unsigned node = 0; node < free_bytes.size(); ++node) {
    free_bytes[node] = machine.available_bytes(node);
  }

  Plan plan;
  plan.placements.resize(requests.size());
  const auto query = attr::Initiator::from_cpuset(initiator);
  for (std::size_t index : order) {
    const PlannedRequest& request = requests[index];
    PlannedPlacement& placement = plan.placements[index];
    placement.label = request.label;

    attr::AttrId attribute = request.attribute;
    if (auto resolved = registry.resolve_with_fallback(attribute); resolved.ok()) {
      attribute = *resolved;
    }
    bool placed = false;
    unsigned rank = 0;
    for (const attr::TargetValue& candidate :
         registry.targets_ranked(attribute, query, locality)) {
      const unsigned node = candidate.target->logical_index();
      if (free_bytes[node] >= request.bytes) {
        free_bytes[node] -= request.bytes;
        placement.node = node;
        placement.fell_back = rank > 0;
        placed = true;
        break;
      }
      ++rank;
    }
    if (!placed) plan.unplaced.push_back(request.label);
  }
  return plan;
}

Result<std::vector<sim::BufferId>> execute_plan(
    HeterogeneousAllocator& allocator,
    const std::vector<PlannedRequest>& requests, const Plan& plan) {
  if (plan.placements.size() != requests.size()) {
    return make_error(Errc::kInvalidArgument, "plan does not match requests");
  }
  std::vector<sim::BufferId> buffers(requests.size());
  auto rollback = [&](std::size_t up_to) {
    for (std::size_t i = 0; i < up_to; ++i) {
      if (buffers[i].valid()) (void)allocator.mem_free(buffers[i]);
    }
  };
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const bool unplaced =
        std::find(plan.unplaced.begin(), plan.unplaced.end(),
                  requests[i].label) != plan.unplaced.end();
    if (unplaced) continue;
    auto buffer = allocator.machine().allocate(
        requests[i].bytes, plan.placements[i].node, requests[i].label,
        requests[i].backing_bytes);
    if (!buffer.ok()) {
      rollback(i);
      return buffer.error();
    }
    buffers[i] = *buffer;
  }
  return buffers;
}

}  // namespace hetmem::alloc
