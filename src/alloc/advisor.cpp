#include "hetmem/alloc/advisor.hpp"

#include <algorithm>

namespace hetmem::alloc {

using support::Result;

std::vector<MigrationAdvice> advise_migrations(
    const HeterogeneousAllocator& allocator, const sim::ExecutionContext& exec,
    const support::Bitmap& initiator, const AdvisorOptions& options) {
  const sim::SimMachine& machine = exec.machine();
  const attr::MemAttrRegistry& registry = allocator.registry();
  const auto query = attr::Initiator::from_cpuset(initiator);

  std::vector<sim::BufferTraffic> traffic = exec.merged_buffer_traffic();
  double total_bytes = 0.0;
  for (const sim::BufferTraffic& bt : traffic) total_bytes += bt.memory_bytes;

  std::vector<MigrationAdvice> advice;
  for (std::uint32_t index = 0; index < traffic.size(); ++index) {
    const sim::BufferTraffic& bt = traffic[index];
    if (bt.memory_bytes <= 0.0 ||
        (total_bytes > 0.0 &&
         bt.memory_bytes / total_bytes < options.min_traffic_share)) {
      continue;
    }
    const sim::BufferInfo& info = machine.info(sim::BufferId{index});
    if (info.freed) continue;

    // Dominant behavior decides the criterion (as the profiler would hint).
    const bool latency_dominated =
        bt.llc_misses > 0.0 && bt.random_misses / bt.llc_misses >= 0.5;
    const attr::AttrId attribute =
        latency_dominated ? attr::kLatency : attr::kBandwidth;
    auto ranked = registry.targets_ranked(attribute, query);
    if (ranked.empty()) continue;

    // Best target with room for this buffer, excluding where it already is.
    const topo::Object* destination = nullptr;
    for (const attr::TargetValue& candidate : ranked) {
      const unsigned node = candidate.target->logical_index();
      if (node == info.node) {
        destination = nullptr;  // already on the best feasible target
        break;
      }
      if (machine.available_bytes(node) >= info.declared_bytes) {
        destination = candidate.target;
        break;
      }
    }
    if (destination == nullptr) continue;
    const unsigned to_node = destination->logical_index();

    // Wall-clock cost of the observed traffic on current vs destination
    // node. Misses were summed across threads, which stall in parallel, so
    // the stall component divides by the thread count (balanced assumption).
    const double threads = std::max(1u, exec.thread_count());
    auto traffic_cost = [&](unsigned node) {
      const sim::EffectiveNodePerf perf = machine.perf_model().effective(
          node, info.declared_bytes, initiator.is_subset_of(
                                         machine.topology().numa_node(node)->cpuset()));
      const double stall =
          bt.random_misses / threads * perf.latency_ns / options.mlp;
      const double stream_bytes =
          std::max(0.0, bt.memory_bytes - bt.random_misses * 64.0);
      // Split streamed bytes evenly over read/write paths for the estimate.
      const double bw_time = stream_bytes / 2.0 / perf.read_bw * 1e9 +
                             stream_bytes / 2.0 / perf.write_bw * 1e9;
      return stall + bw_time;
    };
    const double benefit = traffic_cost(info.node) - traffic_cost(to_node);
    if (benefit <= 0.0) continue;

    const MigrationCostModel cost_model;  // allocator defaults
    const double pages = static_cast<double>(
        (info.declared_bytes + cost_model.page_bytes - 1) / cost_model.page_bytes);
    const sim::EffectiveNodePerf src = machine.perf_model().effective(
        info.node, info.declared_bytes, true);
    const sim::EffectiveNodePerf dst =
        machine.perf_model().effective(to_node, info.declared_bytes, true);
    const double cost =
        pages * cost_model.per_page_overhead_ns +
        static_cast<double>(info.declared_bytes) /
            std::min(src.read_bw, dst.write_bw) * 1e9;

    MigrationAdvice entry;
    entry.buffer = sim::BufferId{index};
    entry.label = info.label;
    entry.from_node = info.node;
    entry.to_node = to_node;
    entry.benefit_per_round_ns = benefit;
    entry.cost_ns = cost;
    entry.breakeven_rounds = benefit > 0.0 ? cost / benefit : 1e300;
    advice.push_back(std::move(entry));
  }

  std::stable_sort(advice.begin(), advice.end(),
                   [&](const MigrationAdvice& a, const MigrationAdvice& b) {
                     const double net_a = a.benefit_per_round_ns *
                                              options.expected_future_rounds -
                                          a.cost_ns;
                     const double net_b = b.benefit_per_round_ns *
                                              options.expected_future_rounds -
                                          b.cost_ns;
                     return net_a > net_b;
                   });
  return advice;
}

Result<double> apply_advice(HeterogeneousAllocator& allocator,
                            const std::vector<MigrationAdvice>& advice,
                            const AdvisorOptions& options) {
  double total_cost = 0.0;
  for (const MigrationAdvice& entry : advice) {
    if (entry.breakeven_rounds > options.expected_future_rounds) continue;
    auto cost = allocator.migrate(entry.buffer, entry.to_node);
    if (!cost.ok()) return cost.error();
    total_cost += *cost;
  }
  return total_cost;
}

}  // namespace hetmem::alloc
