#include "hetmem/alloc/advisor.hpp"

#include <algorithm>

#include "hetmem/prof/classify.hpp"

namespace hetmem::alloc {

using support::Result;

double TrafficCostModel::cost_ns(const sim::SimMachine& machine, unsigned node,
                                 std::uint64_t declared_bytes,
                                 bool local_initiator,
                                 const sim::BufferTraffic& traffic) const {
  const sim::EffectiveNodePerf perf =
      machine.perf_model().effective(node, declared_bytes, local_initiator);
  const double thread_count = std::max(1u, threads);
  const double stall =
      traffic.random_misses / thread_count * perf.latency_ns / mlp;
  const double stream_bytes =
      std::max(0.0, traffic.memory_bytes - traffic.random_misses * 64.0);
  // Split streamed bytes evenly over read/write paths for the estimate.
  const double bw_time = stream_bytes / 2.0 / perf.read_bw * 1e9 +
                         stream_bytes / 2.0 / perf.write_bw * 1e9;
  return stall + bw_time;
}

std::vector<MigrationAdvice> advise_migrations(
    const HeterogeneousAllocator& allocator, const sim::ExecutionContext& exec,
    const support::Bitmap& initiator, const AdvisorOptions& options) {
  const sim::SimMachine& machine = exec.machine();
  const attr::MemAttrRegistry& registry = allocator.registry();
  const auto query = attr::Initiator::from_cpuset(initiator);

  std::vector<sim::BufferTraffic> traffic = exec.merged_buffer_traffic();
  double total_bytes = 0.0;
  for (const sim::BufferTraffic& bt : traffic) total_bytes += bt.memory_bytes;

  std::vector<MigrationAdvice> advice;
  for (std::uint32_t index = 0; index < traffic.size(); ++index) {
    const sim::BufferTraffic& bt = traffic[index];
    if (bt.memory_bytes <= 0.0 ||
        (total_bytes > 0.0 &&
         bt.memory_bytes / total_bytes < options.min_traffic_share)) {
      continue;
    }
    const sim::BufferInfo& info = machine.info(sim::BufferId{index});
    if (info.freed) continue;

    // Dominant behavior decides the criterion, via the shared thresholds the
    // profiler hints with (traffic share 1.0: insensitivity was already
    // filtered by min_traffic_share above).
    const prof::Sensitivity sensitivity =
        prof::classify_sensitivity(1.0, bt.llc_misses, bt.random_misses);
    const attr::AttrId attribute = prof::allocation_hint(sensitivity);
    auto ranked = registry.targets_ranked(attribute, query);
    if (ranked.empty()) continue;

    // Best target with room for this buffer, excluding where it already is.
    const topo::Object* destination = nullptr;
    for (const attr::TargetValue& candidate : ranked) {
      const unsigned node = candidate.target->logical_index();
      if (node == info.node) {
        destination = nullptr;  // already on the best feasible target
        break;
      }
      if (machine.available_bytes(node) >= info.declared_bytes) {
        destination = candidate.target;
        break;
      }
    }
    if (destination == nullptr) continue;
    const unsigned to_node = destination->logical_index();

    // Wall-clock cost of the observed traffic on current vs destination
    // node, via the shared model the online engine also uses.
    const TrafficCostModel cost_model{options.mlp, exec.thread_count()};
    auto traffic_cost = [&](unsigned node) {
      const bool local = initiator.is_subset_of(
          machine.topology().numa_node(node)->cpuset());
      return cost_model.cost_ns(machine, node, info.declared_bytes, local, bt);
    };
    const double benefit = traffic_cost(info.node) - traffic_cost(to_node);
    if (benefit <= 0.0) continue;

    const double cost =
        allocator.estimate_migration_cost_ns(sim::BufferId{index}, to_node);

    MigrationAdvice entry;
    entry.buffer = sim::BufferId{index};
    entry.label = info.label;
    entry.from_node = info.node;
    entry.to_node = to_node;
    entry.benefit_per_round_ns = benefit;
    entry.cost_ns = cost;
    entry.breakeven_rounds = benefit > 0.0 ? cost / benefit : 1e300;
    advice.push_back(std::move(entry));
  }

  std::stable_sort(advice.begin(), advice.end(),
                   [&](const MigrationAdvice& a, const MigrationAdvice& b) {
                     const double net_a = a.benefit_per_round_ns *
                                              options.expected_future_rounds -
                                          a.cost_ns;
                     const double net_b = b.benefit_per_round_ns *
                                              options.expected_future_rounds -
                                          b.cost_ns;
                     return net_a > net_b;
                   });
  return advice;
}

Result<double> apply_advice(HeterogeneousAllocator& allocator,
                            const std::vector<MigrationAdvice>& advice,
                            const AdvisorOptions& options) {
  double total_cost = 0.0;
  for (const MigrationAdvice& entry : advice) {
    if (entry.breakeven_rounds > options.expected_future_rounds) continue;
    auto cost = allocator.migrate(entry.buffer, entry.to_node);
    if (!cost.ok()) return cost.error();
    total_cost += *cost;
  }
  return total_cost;
}

}  // namespace hetmem::alloc
