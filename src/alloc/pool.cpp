#include "hetmem/alloc/pool.hpp"

namespace hetmem::alloc {

using support::Errc;
using support::make_error;
using support::Result;
using support::Status;

Pool::Pool(HeterogeneousAllocator& allocator, support::Bitmap initiator,
           PoolOptions options, std::string name)
    : allocator_(&allocator),
      initiator_(std::move(initiator)),
      options_(options),
      name_(std::move(name)) {
  stats_.live_per_node.resize(
      allocator.machine().topology().numa_nodes().size(), 0);
}

Pool::~Pool() {
  for (Slab& slab : slabs_) {
    if (!slab.released) (void)allocator_->mem_free(slab.buffer);
  }
}

Status Pool::grow_locked() {
  AllocRequest request;
  request.bytes = options_.block_bytes * options_.blocks_per_slab;
  request.attribute = options_.attribute;
  request.initiator = initiator_;
  request.policy = options_.policy;
  request.label = name_ + ".slab" + std::to_string(slabs_.size());
  auto allocation = allocator_->mem_alloc(request);
  if (!allocation.ok()) return allocation.error();

  Slab slab;
  slab.buffer = allocation->buffer;
  slab.node = allocation->node;
  slab.free_blocks.reserve(options_.blocks_per_slab);
  // LIFO order so block 0 comes out first.
  for (std::uint32_t block = options_.blocks_per_slab; block-- > 0;) {
    slab.free_blocks.push_back(block);
  }
  slabs_.push_back(std::move(slab));
  ++stats_.slabs_created;
  return {};
}

Result<PoolBlock> Pool::allocate() {
  std::lock_guard<std::mutex> lock(mutex_);
  return allocate_locked();
}

Result<PoolBlock> Pool::allocate_locked() {
  for (std::uint32_t s = 0; s < slabs_.size(); ++s) {
    Slab& slab = slabs_[s];
    if (slab.released || slab.free_blocks.empty()) continue;
    const std::uint32_t index = slab.free_blocks.back();
    slab.free_blocks.pop_back();
    ++slab.live;
    ++stats_.blocks_allocated;
    ++stats_.blocks_live;
    ++stats_.live_per_node[slab.node];
    return PoolBlock{s, index};
  }
  if (Status status = grow_locked(); !status.ok()) return status.error();
  return allocate_locked();
}

Status Pool::free(PoolBlock block) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!block.valid() || block.slab >= slabs_.size() ||
      block.index >= options_.blocks_per_slab) {
    return make_error(Errc::kInvalidArgument, "bad pool block");
  }
  Slab& slab = slabs_[block.slab];
  if (slab.released) {
    return make_error(Errc::kInvalidArgument, "block's slab was released");
  }
  for (std::uint32_t free_index : slab.free_blocks) {
    if (free_index == block.index) {
      return make_error(Errc::kInvalidArgument, "double free of pool block");
    }
  }
  slab.free_blocks.push_back(block.index);
  --slab.live;
  ++stats_.blocks_freed;
  --stats_.blocks_live;
  --stats_.live_per_node[slab.node];
  return {};
}

Result<unsigned> Pool::node_of(PoolBlock block) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!block.valid() || block.slab >= slabs_.size() ||
      slabs_[block.slab].released) {
    return make_error(Errc::kInvalidArgument, "bad pool block");
  }
  return slabs_[block.slab].node;
}

PoolStats Pool::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t Pool::release_empty_slabs() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t released = 0;
  for (Slab& slab : slabs_) {
    if (!slab.released && slab.live == 0) {
      (void)allocator_->mem_free(slab.buffer);
      slab.released = true;
      slab.free_blocks.clear();
      ++released;
    }
  }
  return released;
}

}  // namespace hetmem::alloc
