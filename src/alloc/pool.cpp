#include "hetmem/alloc/pool.hpp"

#include <algorithm>

namespace hetmem::alloc {

using support::Errc;
using support::make_error;
using support::Result;
using support::Status;

// One magazine per (thread, pool): a LIFO of cached blocks plus the shared
// control block that says whether the pool is still alive.
struct Pool::Magazine {
  std::shared_ptr<Control> control;
  std::vector<PoolBlock> blocks;
};

// Thread-local registry of magazines. Its destructor runs at thread exit and
// returns every cached block to its pool exactly once — unless the pool died
// first, in which case the pool's destructor already released the slabs and
// the handles are dead anyway.
struct Pool::TlsCache {
  std::vector<Magazine> magazines;

  ~TlsCache() {
    for (Magazine& magazine : magazines) {
      std::lock_guard<std::mutex> alive(magazine.control->mutex);
      if (magazine.control->pool != nullptr) {
        magazine.control->pool->flush_blocks(magazine.blocks);
      }
    }
  }
};

Pool::TlsCache& Pool::tls_cache() {
  thread_local TlsCache cache;
  return cache;
}

Pool::Pool(HeterogeneousAllocator& allocator, support::Bitmap initiator,
           PoolOptions options, std::string name)
    : allocator_(&allocator),
      initiator_(std::move(initiator)),
      options_(options),
      name_(std::move(name)),
      control_(std::make_shared<Control>()) {
  control_->pool = this;
  node_count_ = allocator.machine().topology().numa_nodes().size();
  live_per_node_ =
      std::make_unique<std::atomic<std::uint64_t>[]>(node_count_);
  for (std::size_t n = 0; n < node_count_; ++n) {
    live_per_node_[n].store(0, std::memory_order_relaxed);
  }
  node_chunks_ =
      std::make_unique<std::atomic<NodeChunk*>[]>(kNodeChunkCount);
  for (std::size_t c = 0; c < kNodeChunkCount; ++c) {
    node_chunks_[c].store(nullptr, std::memory_order_relaxed);
  }
}

Pool::~Pool() {
  {
    // Detach from any outstanding thread magazines: their exit-time flush
    // checks `pool` under this mutex and becomes a no-op from here on.
    std::lock_guard<std::mutex> alive(control_->mutex);
    control_->pool = nullptr;
  }
  for (Slab& slab : slabs_) {
    if (!slab.released) (void)allocator_->mem_free(slab.buffer);
  }
  for (std::size_t c = 0; c < kNodeChunkCount; ++c) {
    delete node_chunks_[c].load(std::memory_order_relaxed);
  }
}

unsigned Pool::node_of_fast(std::uint32_t slab) const {
  // Caller has checked slab < slab_count_ (acquire), which synchronizes
  // with the release publish in grow_locked, so chunk and entry are visible.
  const NodeChunk* chunk =
      node_chunks_[slab / kNodeChunkSize].load(std::memory_order_acquire);
  return chunk->node[slab % kNodeChunkSize];
}

void Pool::note_alloc(unsigned node) {
  blocks_allocated_.fetch_add(1, std::memory_order_relaxed);
  blocks_live_.fetch_add(1, std::memory_order_relaxed);
  live_per_node_[node].fetch_add(1, std::memory_order_relaxed);
}

void Pool::note_free(unsigned node) {
  blocks_freed_.fetch_add(1, std::memory_order_relaxed);
  blocks_live_.fetch_sub(1, std::memory_order_relaxed);
  live_per_node_[node].fetch_sub(1, std::memory_order_relaxed);
}

Status Pool::grow_locked() {
  const std::uint32_t index = static_cast<std::uint32_t>(slabs_.size());
  if (index >= kNodeChunkSize * kNodeChunkCount) {
    return make_error(Errc::kOutOfCapacity, "pool slab-index space exhausted");
  }
  AllocRequest request;
  request.bytes = options_.block_bytes * options_.blocks_per_slab;
  request.attribute = options_.attribute;
  request.initiator = initiator_;
  request.policy = options_.policy;
  request.label = name_ + ".slab" + std::to_string(slabs_.size());
  auto allocation = allocator_->mem_alloc(request);
  if (!allocation.ok()) return allocation.error();

  NodeChunk* chunk =
      node_chunks_[index / kNodeChunkSize].load(std::memory_order_relaxed);
  if (chunk == nullptr) {
    chunk = new NodeChunk();
    node_chunks_[index / kNodeChunkSize].store(chunk,
                                               std::memory_order_release);
  }
  chunk->node[index % kNodeChunkSize] = allocation->node;

  Slab slab;
  slab.buffer = allocation->buffer;
  slab.node = allocation->node;
  slab.free_blocks.reserve(options_.blocks_per_slab);
  // LIFO order so block 0 comes out first.
  for (std::uint32_t block = options_.blocks_per_slab; block-- > 0;) {
    slab.free_blocks.push_back(block);
  }
  slabs_.push_back(std::move(slab));
  ++slabs_created_;
  slab_count_.store(static_cast<std::uint32_t>(slabs_.size()),
                    std::memory_order_release);
  return {};
}

Result<PoolBlock> Pool::take_block_locked() {
  for (std::uint32_t s = 0; s < slabs_.size(); ++s) {
    Slab& slab = slabs_[s];
    if (slab.released || slab.free_blocks.empty()) continue;
    const std::uint32_t index = slab.free_blocks.back();
    slab.free_blocks.pop_back();
    ++slab.live;
    return PoolBlock{s, index};
  }
  if (Status status = grow_locked(); !status.ok()) return status.error();
  return take_block_locked();
}

Status Pool::return_block_locked(PoolBlock block) {
  if (!block.valid() || block.slab >= slabs_.size() ||
      block.index >= options_.blocks_per_slab) {
    return make_error(Errc::kInvalidArgument, "bad pool block");
  }
  Slab& slab = slabs_[block.slab];
  if (slab.released) {
    return make_error(Errc::kInvalidArgument, "block's slab was released");
  }
  for (std::uint32_t free_index : slab.free_blocks) {
    if (free_index == block.index) {
      return make_error(Errc::kInvalidArgument, "double free of pool block");
    }
  }
  slab.free_blocks.push_back(block.index);
  --slab.live;
  return {};
}

Pool::Magazine& Pool::thread_magazine() {
  std::vector<Magazine>& magazines = tls_cache().magazines;
  for (Magazine& magazine : magazines) {
    if (magazine.control.get() == control_.get()) return magazine;
  }
  magazines.push_back(Magazine{control_, {}});
  magazines.back().blocks.reserve(options_.magazine_blocks);
  return magazines.back();
}

Status Pool::refill_magazine(Magazine& magazine) {
  // Grab half a magazine per mutex acquisition: one lock amortizes over
  // magazine_blocks/2 subsequent lock-free hits.
  const std::size_t target = std::max<std::size_t>(1, options_.magazine_blocks / 2);
  std::lock_guard<std::mutex> lock(mutex_);
  while (magazine.blocks.size() < target) {
    auto block = take_block_locked();
    if (!block.ok()) {
      // Partial refill still serves the caller; surface the error only when
      // the magazine stayed empty.
      if (!magazine.blocks.empty()) break;
      return block.error();
    }
    magazine.blocks.push_back(*block);
  }
  return {};
}

void Pool::shrink_magazine(Magazine& magazine, std::size_t keep) {
  std::lock_guard<std::mutex> lock(mutex_);
  while (magazine.blocks.size() > keep) {
    // Misuse (double free that raced past the magazine scan) is dropped
    // here rather than pushed: a duplicate free-list entry would hand the
    // same block to two callers later, which is strictly worse.
    (void)return_block_locked(magazine.blocks.back());
    magazine.blocks.pop_back();
  }
}

void Pool::flush_blocks(std::vector<PoolBlock>& blocks) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (PoolBlock block : blocks) {
    (void)return_block_locked(block);
  }
  blocks.clear();
}

void Pool::flush_thread_magazine() {
  if (options_.magazine_blocks == 0) return;
  flush_blocks(thread_magazine().blocks);
}

Result<PoolBlock> Pool::allocate() {
  if (options_.magazine_blocks > 0) {
    Magazine& magazine = thread_magazine();
    if (magazine.blocks.empty()) {
      if (Status status = refill_magazine(magazine); !status.ok()) {
        return status.error();
      }
    }
    const PoolBlock block = magazine.blocks.back();
    magazine.blocks.pop_back();
    note_alloc(node_of_fast(block.slab));
    return block;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  return allocate_locked();
}

Result<PoolBlock> Pool::allocate_locked() {
  auto block = take_block_locked();
  if (!block.ok()) return block;
  note_alloc(slabs_[block->slab].node);
  return block;
}

Status Pool::free(PoolBlock block) {
  if (options_.magazine_blocks > 0) {
    if (!block.valid() || block.index >= options_.blocks_per_slab ||
        block.slab >= slab_count_.load(std::memory_order_acquire)) {
      return make_error(Errc::kInvalidArgument, "bad pool block");
    }
    Magazine& magazine = thread_magazine();
    for (const PoolBlock& cached : magazine.blocks) {
      if (cached.slab == block.slab && cached.index == block.index) {
        return make_error(Errc::kInvalidArgument, "double free of pool block");
      }
    }
    if (magazine.blocks.size() >= options_.magazine_blocks) {
      shrink_magazine(magazine, options_.magazine_blocks / 2);
    }
    magazine.blocks.push_back(block);
    note_free(node_of_fast(block.slab));
    return {};
  }

  std::lock_guard<std::mutex> lock(mutex_);
  const Status status = return_block_locked(block);
  if (!status.ok()) return status;
  note_free(slabs_[block.slab].node);
  return {};
}

Result<unsigned> Pool::node_of(PoolBlock block) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!block.valid() || block.slab >= slabs_.size() ||
      slabs_[block.slab].released) {
    return make_error(Errc::kInvalidArgument, "bad pool block");
  }
  return slabs_[block.slab].node;
}

PoolStats Pool::stats() const {
  PoolStats snapshot;
  snapshot.blocks_allocated = blocks_allocated_.load(std::memory_order_relaxed);
  snapshot.blocks_freed = blocks_freed_.load(std::memory_order_relaxed);
  snapshot.blocks_live = blocks_live_.load(std::memory_order_relaxed);
  snapshot.live_per_node.resize(node_count_);
  for (std::size_t n = 0; n < node_count_; ++n) {
    snapshot.live_per_node[n] = live_per_node_[n].load(std::memory_order_relaxed);
  }
  std::lock_guard<std::mutex> lock(mutex_);
  snapshot.slabs_created = slabs_created_;
  return snapshot;
}

std::size_t Pool::release_empty_slabs() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t released = 0;
  for (Slab& slab : slabs_) {
    if (!slab.released && slab.live == 0) {
      (void)allocator_->mem_free(slab.buffer);
      slab.released = true;
      slab.free_blocks.clear();
      ++released;
    }
  }
  return released;
}

}  // namespace hetmem::alloc
