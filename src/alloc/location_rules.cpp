#include "hetmem/alloc/location_rules.hpp"

#include "hetmem/support/str.hpp"

namespace hetmem::alloc {

using support::Errc;
using support::make_error;
using support::Result;

void LocationRules::add(std::string pattern, attr::AttrId attribute) {
  rules_.push_back(LocationRule{std::move(pattern), attribute});
}

bool LocationRules::glob_match(std::string_view pattern, std::string_view text) {
  // Classic iterative glob with '*' only (no '?'): linear time.
  std::size_t p = 0, t = 0;
  std::size_t star = std::string_view::npos, backtrack = 0;
  while (t < text.size()) {
    if (p < pattern.size() && (pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      backtrack = t;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      t = ++backtrack;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

std::optional<attr::AttrId> LocationRules::match(std::string_view label) const {
  for (const LocationRule& rule : rules_) {
    if (glob_match(rule.pattern, label)) return rule.attribute;
  }
  return std::nullopt;
}

std::string LocationRules::serialize(const attr::MemAttrRegistry& registry) const {
  std::string out = "# hetmem-locations v1\n";
  for (const LocationRule& rule : rules_) {
    out += rule.pattern + " " + registry.info(rule.attribute).name + "\n";
  }
  return out;
}

Result<LocationRules> LocationRules::parse(std::string_view text,
                                           const attr::MemAttrRegistry& registry) {
  LocationRules rules;
  std::size_t line_number = 0;
  for (std::string_view raw_line : support::split(text, '\n')) {
    ++line_number;
    std::string_view line = support::trim(raw_line);
    if (line.empty() || line.front() == '#') continue;
    // pattern, whitespace, attribute name.
    const std::size_t space = line.find_first_of(" \t");
    if (space == std::string_view::npos) {
      return make_error(Errc::kParseError,
                        "line " + std::to_string(line_number) +
                            ": expected '<pattern> <attribute>'");
    }
    const std::string_view pattern = line.substr(0, space);
    const std::string_view attr_name = support::trim(line.substr(space));
    auto attribute = registry.find_attribute(attr_name);
    if (!attribute.ok()) {
      return make_error(Errc::kParseError,
                        "line " + std::to_string(line_number) +
                            ": unknown attribute '" + std::string(attr_name) + "'");
    }
    rules.add(std::string(pattern), *attribute);
  }
  return rules;
}

Result<Allocation> LocationRules::alloc_by_location(
    HeterogeneousAllocator& allocator, std::uint64_t bytes,
    const support::Bitmap& initiator, std::string label,
    attr::AttrId fallback_attr, std::size_t backing_bytes) const {
  AllocRequest request;
  request.bytes = bytes;
  request.initiator = initiator;
  request.attribute = match(label).value_or(fallback_attr);
  request.label = std::move(label);
  request.backing_bytes = backing_bytes;
  return allocator.mem_alloc(request);
}

}  // namespace hetmem::alloc
