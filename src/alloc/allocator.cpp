#include "hetmem/alloc/allocator.hpp"

#include <algorithm>
#include <optional>

#include "hetmem/support/units.hpp"

namespace hetmem::alloc {

using support::Errc;
using support::make_error;
using support::Result;
using support::Status;

HeterogeneousAllocator::HeterogeneousAllocator(sim::SimMachine& machine,
                                               const attr::MemAttrRegistry& registry)
    : machine_(&machine),
      registry_(&registry),
      node_count_(machine.topology().numa_nodes().size()),
      reserved_(std::make_unique<std::atomic<std::uint64_t>[]>(node_count_)) {
  for (std::size_t n = 0; n < node_count_; ++n) {
    reserved_[n].store(0, std::memory_order_relaxed);
  }
  node_kinds_.reserve(node_count_);
  for (std::size_t n = 0; n < node_count_; ++n) {
    node_kinds_.push_back(
        machine.topology().numa_node(static_cast<unsigned>(n))->memory_kind());
  }
}

AllocatorStats HeterogeneousAllocator::stats() const {
  AllocatorStats snapshot;
  snapshot.allocations = stats_.allocations.load(std::memory_order_relaxed);
  snapshot.fallbacks = stats_.fallbacks.load(std::memory_order_relaxed);
  snapshot.failures = stats_.failures.load(std::memory_order_relaxed);
  snapshot.frees = stats_.frees.load(std::memory_order_relaxed);
  snapshot.migrations = stats_.migrations.load(std::memory_order_relaxed);
  snapshot.bytes_allocated = stats_.bytes_allocated.load(std::memory_order_relaxed);
  snapshot.bytes_migrated = stats_.bytes_migrated.load(std::memory_order_relaxed);
  snapshot.transient_retries =
      stats_.transient_retries.load(std::memory_order_relaxed);
  snapshot.attribute_rescues =
      stats_.attribute_rescues.load(std::memory_order_relaxed);
  snapshot.backpressure_rejections =
      stats_.backpressure_rejections.load(std::memory_order_relaxed);
  snapshot.backpressure_health =
      stats_.backpressure_health.load(std::memory_order_relaxed);
  snapshot.backpressure_quota =
      stats_.backpressure_quota.load(std::memory_order_relaxed);
  snapshot.backpressure_shed =
      stats_.backpressure_shed.load(std::memory_order_relaxed);
  snapshot.tenant_spills = stats_.tenant_spills.load(std::memory_order_relaxed);
  snapshot.retry_backoff_ms =
      stats_.retry_backoff_ms.load(std::memory_order_relaxed);
  return snapshot;
}

void HeterogeneousAllocator::restore_stats(const AllocatorStats& stats) {
  stats_.allocations.store(stats.allocations, std::memory_order_relaxed);
  stats_.fallbacks.store(stats.fallbacks, std::memory_order_relaxed);
  stats_.failures.store(stats.failures, std::memory_order_relaxed);
  stats_.frees.store(stats.frees, std::memory_order_relaxed);
  stats_.migrations.store(stats.migrations, std::memory_order_relaxed);
  stats_.bytes_allocated.store(stats.bytes_allocated,
                               std::memory_order_relaxed);
  stats_.bytes_migrated.store(stats.bytes_migrated, std::memory_order_relaxed);
  stats_.transient_retries.store(stats.transient_retries,
                                 std::memory_order_relaxed);
  stats_.attribute_rescues.store(stats.attribute_rescues,
                                 std::memory_order_relaxed);
  stats_.backpressure_rejections.store(stats.backpressure_rejections,
                                       std::memory_order_relaxed);
  stats_.backpressure_health.store(stats.backpressure_health,
                                   std::memory_order_relaxed);
  stats_.backpressure_quota.store(stats.backpressure_quota,
                                  std::memory_order_relaxed);
  stats_.backpressure_shed.store(stats.backpressure_shed,
                                 std::memory_order_relaxed);
  stats_.tenant_spills.store(stats.tenant_spills, std::memory_order_relaxed);
  stats_.retry_backoff_ms.store(stats.retry_backoff_ms,
                                std::memory_order_relaxed);
}

Status HeterogeneousAllocator::adopt_tenant_charge(sim::BufferId buffer,
                                                   tenant::TenantHandle tenant,
                                                   std::uint64_t bytes) {
  if (tenant == nullptr) {
    return make_error(Errc::kInvalidArgument, "null tenant handle");
  }
  const auto info = machine_->info_checked(buffer);
  if (!info.ok()) return info.error();
  if (info->freed) {
    return make_error(Errc::kInvalidArgument,
                      "cannot adopt a charge for freed buffer '" +
                          info->label + "'");
  }
  const topo::MemoryKind tier = node_kinds_[info->node];
  const tenant::ChargeResult charged = tenant->try_charge(tier, bytes);
  if (charged != tenant::ChargeResult::kOk) {
    return make_error(Errc::kBackpressure,
                      "tenant '" + tenant->name() +
                          "' refused the restored charge for buffer '" +
                          info->label + "'");
  }
  record_tenant_charge(buffer, std::move(tenant), tier, bytes);
  return {};
}

std::vector<TraceEvent> HeterogeneousAllocator::trace() const {
  std::lock_guard<std::mutex> lock(trace_mutex_);
  return trace_;
}

void HeterogeneousAllocator::record_trace(TraceEvent event) {
  if (!trace_enabled_.load(std::memory_order_relaxed)) return;
  std::lock_guard<std::mutex> lock(trace_mutex_);
  trace_.push_back(std::move(event));
}

std::uint64_t HeterogeneousAllocator::usable_bytes(unsigned node) const {
  const std::uint64_t available = machine_->available_bytes(node);
  const std::uint64_t reserved = reserved_[node].load(std::memory_order_relaxed);
  return available > reserved ? available - reserved : 0;
}

Result<sim::BufferId> HeterogeneousAllocator::allocate_with_retry(
    const AllocRequest& request, unsigned node) {
  auto buffer = machine_->allocate(request.bytes, node, request.label,
                                   request.backing_bytes);
  const unsigned budget =
      max_transient_retries_.load(std::memory_order_relaxed);
  const std::uint64_t floor_ms =
      retry_floor_ms_.load(std::memory_order_relaxed);
  // Retry pacing rides the shared jitter engine (support::Backoff — the same
  // schedule the tenant shed path and the breaker probes draw from). Delays
  // are simulated: accounted in retry_backoff_ms, never slept. Seeded per
  // (seed, node) so concurrent requests draw independent, deterministic
  // jitter.
  std::optional<support::Backoff> pacing;
  if (floor_ms > 0) {
    support::BackoffOptions options = retry_backoff_options_;
    options.seed ^= 0x9e3779b97f4a7c15ull * (node + 1);
    pacing.emplace(options);
  }
  unsigned retries = 0;
  while (!buffer.ok() && buffer.error().code == Errc::kTransient &&
         retries < budget) {
    ++retries;
    stats_.transient_retries.fetch_add(1, std::memory_order_relaxed);
    if (pacing) {
      stats_.retry_backoff_ms.fetch_add(pacing->next_delay_ms(floor_ms),
                                        std::memory_order_relaxed);
    }
    buffer = machine_->allocate(request.bytes, node, request.label,
                                request.backing_bytes);
  }
  return buffer;
}

Result<Allocation> HeterogeneousAllocator::try_targets(
    const AllocRequest& request, const std::vector<attr::TargetValue>& ranking,
    attr::AttrId used_attribute, TenantGate* gate) {
  const bool allow_fallback = request.policy != Policy::kStrict;
  const health::QuarantineList* quarantine =
      request.admission_control ? registry_->quarantine_list() : nullptr;
  tenant::Tenant* tenant = gate != nullptr ? gate->tenant : nullptr;
  // Strict binding means "this node or nothing" — the ladder's spill pass
  // (which exists to steer requests elsewhere) does not apply.
  const bool spill_enabled = gate != nullptr && gate->spill && allow_fallback;
  const double spill_occupancy =
      ladder_in_use().options().spill_node_occupancy;
  unsigned withheld = 0;
  // Total-cap / dead-tenant refusals are node-independent: once seen, no
  // further node (nor the default-order rescue) can admit the request.
  bool stop_walk = false;

  // A nearly-full node for the spill pass.
  auto node_hot = [&](unsigned node) {
    const std::uint64_t capacity = machine_->capacity_bytes(node);
    if (capacity == 0) return false;
    const std::uint64_t usable = std::min(capacity, usable_bytes(node));
    return static_cast<double>(capacity - usable) >=
           spill_occupancy * static_cast<double>(capacity);
  };

  // Attempts one node: quota charge, then the machine allocation. Returns
  // the final Result when the walk must end here (success or hard failure),
  // nullopt to keep walking. `charged` quota is rolled back on any failure.
  auto attempt_node = [&](unsigned node, unsigned rank,
                          const char* note) -> std::optional<Result<Allocation>> {
    bool charged = false;
    if (tenant != nullptr) {
      switch (tenant->try_charge(node_kinds_[node], request.bytes)) {
        case tenant::ChargeResult::kOk:
          charged = true;
          break;
        case tenant::ChargeResult::kTierCapExceeded:
          // This tier is out of quota for the tenant; another tier down the
          // ranking may still have room. Strict binding has no other tier.
          ++gate->quota_skipped;
          if (!allow_fallback) stop_walk = true;
          return std::nullopt;
        case tenant::ChargeResult::kTotalCapExceeded:
          gate->total_cap_hit = true;
          stop_walk = true;
          return std::nullopt;
        case tenant::ChargeResult::kTenantDead:
          gate->dead = true;
          stop_walk = true;
          return std::nullopt;
      }
    }
    auto buffer = allocate_with_retry(request, node);
    if (buffer.ok()) {
      const bool spilled = spill_enabled && gate->spill_skipped > 0;
      Allocation allocation{*buffer, node, used_attribute, rank, rank > 0};
      stats_.allocations.fetch_add(1, std::memory_order_relaxed);
      stats_.bytes_allocated.fetch_add(request.bytes, std::memory_order_relaxed);
      if (rank > 0) stats_.fallbacks.fetch_add(1, std::memory_order_relaxed);
      if (charged) {
        record_tenant_charge(*buffer, request.tenant, node_kinds_[node],
                             request.bytes);
        tenant->note_admitted();
        if (spilled) {
          stats_.tenant_spills.fetch_add(1, std::memory_order_relaxed);
          tenant->note_spilled();
        }
      }
      // The guard keeps event construction (string concatenation plus a
      // registry info() lock) off the hot path when tracing is disabled.
      if (trace_enabled()) {
        std::string detail = registry_->info(used_attribute).name;
        if (note != nullptr) detail = note;
        if (rank > 0 && note == nullptr) {
          detail += " (fallback rank " + std::to_string(rank) + ")";
        }
        if (spilled) detail += " (ladder spill)";
        record_trace(TraceEvent{TraceEvent::Kind::kAlloc, request.label, node,
                                request.bytes, std::move(detail)});
      }
      return Result<Allocation>(allocation);
    }
    if (charged) tenant->uncharge(node_kinds_[node], request.bytes);
    // Transient failures that survived the bounded retry are treated like a
    // full target: log and walk down the ranking instead of giving up.
    const bool recoverable = buffer.error().code == Errc::kOutOfCapacity ||
                             buffer.error().code == Errc::kTransient;
    if (!recoverable || !allow_fallback) {
      stats_.failures.fetch_add(1, std::memory_order_relaxed);
      record_trace(TraceEvent{TraceEvent::Kind::kFail, request.label, node,
                              request.bytes, buffer.error().to_string()});
      return Result<Allocation>(buffer.error());
    }
    if (buffer.error().code == Errc::kTransient) {
      record_trace(TraceEvent{TraceEvent::Kind::kFail, request.label, node,
                              request.bytes,
                              "transient retries exhausted, falling back"});
    }
    return std::nullopt;
  };

  // The spill pass walks the ranking twice: first skipping nearly-full
  // nodes (steering the low-priority request toward colder tiers), then —
  // only if nothing placed — admitting it anywhere: the ladder wants the
  // request displaced, not failed.
  const int passes = spill_enabled ? 2 : 1;
  for (int pass = 0; pass < passes && !stop_walk; ++pass) {
    const bool skip_hot = spill_enabled && pass == 0;
    unsigned rank = 0;
    for (const attr::TargetValue& candidate : ranking) {
      if (stop_walk) break;
      const unsigned node = candidate.target->logical_index();
      if (!machine_->node_online(node)) {
        // Dead target: an offline node reads zero usable bytes anyway, but
        // skipping it here avoids the capacity math and lets strict binding
        // report "offline" instead of "full".
        if (!allow_fallback) {
          stats_.failures.fetch_add(1, std::memory_order_relaxed);
          return make_error(Errc::kOutOfCapacity,
                            "node " + std::to_string(node) + " is offline");
        }
        ++rank;
        continue;
      }
      if (quarantine != nullptr &&
          quarantine->verdict(node) != health::PlacementVerdict::kNormal) {
        // Admission control: a quarantined target may not absorb this request
        // even as a last resort — count it so exhaustion reports backpressure
        // rather than out-of-capacity.
        if (request.bytes <= usable_bytes(node)) ++withheld;
        if (!allow_fallback) {
          stats_.failures.fetch_add(1, std::memory_order_relaxed);
          stats_.backpressure_rejections.fetch_add(1, std::memory_order_relaxed);
          stats_.backpressure_health.fetch_add(1, std::memory_order_relaxed);
          return make_error(Errc::kBackpressure,
                            "node " + std::to_string(node) +
                                " is quarantined and admission control is on");
        }
        ++rank;
        continue;
      }
      if (request.bytes > usable_bytes(node)) {
        // Reserved space is off-limits to ordinary allocations.
        if (!allow_fallback) {
          stats_.failures.fetch_add(1, std::memory_order_relaxed);
          return make_error(Errc::kOutOfCapacity,
                            "node " + std::to_string(node) +
                                " lacks unreserved room for '" + request.label +
                                "'");
        }
        ++rank;
        continue;
      }
      if (skip_hot && node_hot(node)) {
        ++gate->spill_skipped;
        ++rank;
        continue;
      }
      if (auto done = attempt_node(node, rank, nullptr)) return *done;
      ++rank;
    }
  }

  if (request.policy == Policy::kPreferredThenDefault && !stop_walk) {
    // OS default order: local nodes by logical index, regardless of the
    // attribute (paper §VII discusses Linux "preferred" semantics).
    unsigned rank = static_cast<unsigned>(ranking.size());
    for (const topo::Object* node :
         machine_->topology().local_numa_nodes(request.initiator, request.locality)) {
      if (stop_walk) break;
      const bool already_tried =
          std::any_of(ranking.begin(), ranking.end(), [&](const attr::TargetValue& tv) {
            return tv.target == node;
          });
      if (already_tried) continue;
      if (!machine_->node_online(node->logical_index())) {
        ++rank;
        continue;
      }
      if (quarantine != nullptr &&
          quarantine->verdict(node->logical_index()) !=
              health::PlacementVerdict::kNormal) {
        if (request.bytes <= usable_bytes(node->logical_index())) ++withheld;
        ++rank;
        continue;
      }
      if (request.bytes > usable_bytes(node->logical_index())) {
        ++rank;
        continue;
      }
      // rank >= ranking.size() >= 1 here, so attempt_node already counts the
      // placement as a fallback and flags fell_back.
      if (auto done =
              attempt_node(node->logical_index(), rank, "default-order rescue")) {
        return *done;
      }
      ++rank;
    }
  }

  stats_.failures.fetch_add(1, std::memory_order_relaxed);
  if (gate != nullptr && gate->dead) {
    record_trace(TraceEvent{TraceEvent::Kind::kFail, request.label, 0,
                            request.bytes, "tenant deregistered mid-request"});
    return make_error(Errc::kInvalidArgument,
                      "tenant '" + gate->tenant->name() +
                          "' was deregistered; new allocations are refused");
  }
  if (gate != nullptr && (gate->total_cap_hit || gate->quota_skipped > 0)) {
    stats_.backpressure_rejections.fetch_add(1, std::memory_order_relaxed);
    stats_.backpressure_quota.fetch_add(1, std::memory_order_relaxed);
    tenant->note_quota_rejection();
    record_trace(TraceEvent{
        TraceEvent::Kind::kFail, request.label, 0, request.bytes,
        gate->total_cap_hit
            ? "tenant total quota cap exhausted"
            : "tenant tier quota caps blocked every reachable target"});
    return backpressure_error(
        request,
        "tenant '" + tenant->name() + "' quota cannot absorb " +
            support::format_bytes(request.bytes) + " for '" + request.label +
            (gate->total_cap_hit ? "' (total cap reached)"
                                 : "' (tier caps reached on every target)"),
        ladder_in_use().options().retry_after_base_ms);
  }
  if (withheld > 0) {
    // Capacity exists, but only on unhealthy targets this request refused to
    // use: report backpressure (back off, retry after re-probation), not
    // out-of-capacity (which would read as "the machine is full").
    stats_.backpressure_rejections.fetch_add(1, std::memory_order_relaxed);
    stats_.backpressure_health.fetch_add(1, std::memory_order_relaxed);
    record_trace(TraceEvent{TraceEvent::Kind::kFail, request.label, 0,
                            request.bytes,
                            "healthy targets exhausted; " +
                                std::to_string(withheld) +
                                " quarantined target(s) withheld"});
    return make_error(Errc::kBackpressure,
                      "healthy local targets cannot hold " +
                          support::format_bytes(request.bytes) + " for '" +
                          request.label + "'; " + std::to_string(withheld) +
                          " quarantined target(s) withheld by admission control");
  }
  record_trace(TraceEvent{TraceEvent::Kind::kFail, request.label, 0,
                          request.bytes, "all local targets exhausted"});
  return make_error(Errc::kOutOfCapacity,
                    "no local target can hold " +
                        support::format_bytes(request.bytes) + " for '" +
                        request.label + "'");
}

Result<Allocation> HeterogeneousAllocator::mem_alloc(const AllocRequest& request) {
  if (request.bytes == 0) {
    return make_error(Errc::kInvalidArgument, "zero-byte request");
  }
  if (request.initiator.empty()) {
    return make_error(Errc::kInvalidArgument,
                      "empty initiator: bind the caller to CPUs first");
  }
  if (request.admission_control) {
    // Fast-fail before any ranking work: when every node is quarantined or
    // offline, the full ranking walk below could only rediscover that fact
    // one withheld target at a time. Under a storm of admission-controlled
    // requests that walk (snapshot fetch included) is pure wasted work.
    const health::QuarantineList* quarantine = registry_->quarantine_list();
    if (quarantine != nullptr && no_healthy_online_target(*quarantine)) {
      stats_.failures.fetch_add(1, std::memory_order_relaxed);
      stats_.backpressure_rejections.fetch_add(1, std::memory_order_relaxed);
      stats_.backpressure_health.fetch_add(1, std::memory_order_relaxed);
      record_trace(TraceEvent{TraceEvent::Kind::kFail, request.label, 0,
                              request.bytes,
                              "admission fast-fail: every target quarantined "
                              "or offline"});
      return make_error(Errc::kBackpressure,
                        "no healthy target online for '" + request.label +
                            "': every node is quarantined or offline "
                            "(admission-control fast-fail)");
    }
  }
  TenantGate gate;
  if (request.tenant != nullptr) {
    tenant::Tenant& owner = *request.tenant;
    if (!owner.live()) {
      return make_error(Errc::kInvalidArgument,
                        "tenant '" + owner.name() +
                            "' was deregistered; new allocations are refused");
    }
    gate.tenant = &owner;
    gate.level = overload_level();
    switch (ladder_in_use().action(gate.level, owner.priority())) {
      case tenant::LadderAction::kPlace:
        break;
      case tenant::LadderAction::kSpill:
        gate.spill = true;
        break;
      case tenant::LadderAction::kShed: {
        stats_.failures.fetch_add(1, std::memory_order_relaxed);
        stats_.backpressure_rejections.fetch_add(1, std::memory_order_relaxed);
        stats_.backpressure_shed.fetch_add(1, std::memory_order_relaxed);
        owner.note_shed();
        record_trace(TraceEvent{
            TraceEvent::Kind::kFail, request.label, 0, request.bytes,
            std::string("shed at overload level ") +
                tenant::overload_level_name(gate.level)});
        return backpressure_error(
            request,
            std::string("request shed for ") +
                tenant::priority_name(owner.priority()) + " tenant '" +
                owner.name() + "' at overload level " +
                tenant::overload_level_name(gate.level),
            ladder_in_use().retry_after_ms(gate.level, owner.priority()));
      }
    }
  }
  // One cached snapshot folds attribute resolution and the resilient ranking:
  // on a hit this is a single lock-free load — no shared_mutex, no per-call
  // vector, not even an Initiator copy (the request's cpuset is the key).
  attr::RankingSnapshot snapshot = registry_->alloc_ranking_cached(
      request.attribute, request.initiator, request.locality);
  attr::AttrId used_attribute =
      snapshot->resolved_ok ? snapshot->resolved : request.attribute;
  const std::vector<attr::TargetValue>* ranking = &snapshot->targets;
  attr::RankingSnapshot capacity_snapshot;  // held once fetched, never refetched

  if (ranking->empty()) {
    if (!request.attribute_rescue) {
      if (!snapshot->resolved_ok) {
        // Cold failure path: regenerate the precise resolution error (the
        // snapshot only records that resolution failed, not the message).
        return registry_->resolve_with_fallback(request.attribute).error();
      }
      return make_error(Errc::kNotFound,
                        "no local target has values for attribute '" +
                            registry_->info(used_attribute).name + "'");
    }
    // Rescue: degrade to a coarser trusted attribute, ultimately kCapacity
    // (always populated from the topology, never probe- or firmware-fed).
    attr::RankingSnapshot rescue = registry_->rescue_ranking_cached(
        request.attribute, request.initiator, request.locality);
    used_attribute = rescue->resolved;
    snapshot = std::move(rescue);
    ranking = &snapshot->targets;
    if (ranking->empty() && used_attribute != attr::kCapacity) {
      used_attribute = attr::kCapacity;
      capacity_snapshot = registry_->targets_ranked_resilient_cached(
          attr::kCapacity, request.initiator, request.locality);
      ranking = &capacity_snapshot->targets;
    }
    if (ranking->empty()) {
      return make_error(Errc::kNotFound,
                        "no local target exists even for a Capacity rescue");
    }
    stats_.attribute_rescues.fetch_add(1, std::memory_order_relaxed);
  }

  TenantGate* gate_ptr = gate.tenant != nullptr ? &gate : nullptr;
  auto attempt = try_targets(request, *ranking, used_attribute, gate_ptr);
  if (attempt.ok() || !request.attribute_rescue ||
      request.policy == Policy::kStrict ||
      attempt.error().code != Errc::kOutOfCapacity ||
      used_attribute == attr::kCapacity) {
    return attempt;
  }
  // Ranking-exhaustion rescue: the attribute ranking only covers targets
  // that *have values* — after corruption or probe failures that can be a
  // strict subset of the machine. Capacity is populated for every node
  // natively, so its ranking reaches targets the broken attribute missed.
  // Reuse the capacity snapshot if the rescue above already fetched it.
  if (!capacity_snapshot) {
    capacity_snapshot = registry_->targets_ranked_resilient_cached(
        attr::kCapacity, request.initiator, request.locality);
  }
  if (capacity_snapshot->targets.empty()) return attempt;
  auto rescued = try_targets(request, capacity_snapshot->targets,
                             attr::kCapacity, gate_ptr);
  if (!rescued.ok()) return attempt;
  stats_.attribute_rescues.fetch_add(1, std::memory_order_relaxed);
  return rescued;
}

std::vector<TraceEvent> HeterogeneousAllocator::failure_log() const {
  std::lock_guard<std::mutex> lock(trace_mutex_);
  std::vector<TraceEvent> failures;
  for (const TraceEvent& event : trace_) {
    if (event.kind == TraceEvent::Kind::kFail) failures.push_back(event);
  }
  return failures;
}

Status HeterogeneousAllocator::mem_free(sim::BufferId buffer) {
  if (!trace_enabled()) {
    // Hot path: skip the BufferInfo snapshot (it copies the label string)
    // when nobody will read the trace event.
    Status status = machine_->free(buffer);
    if (!status.ok()) return status;
    stats_.frees.fetch_add(1, std::memory_order_relaxed);
    release_tenant_charge(buffer);
    return {};
  }
  const sim::BufferInfo info = machine_->info(buffer);
  Status status = machine_->free(buffer);
  if (!status.ok()) return status;
  stats_.frees.fetch_add(1, std::memory_order_relaxed);
  release_tenant_charge(buffer);
  record_trace(TraceEvent{TraceEvent::Kind::kFree, info.label, info.node,
                          info.declared_bytes, ""});
  return {};
}

void HeterogeneousAllocator::record_tenant_charge(sim::BufferId buffer,
                                                  tenant::TenantHandle tenant,
                                                  topo::MemoryKind tier,
                                                  std::uint64_t bytes) {
  std::lock_guard<std::mutex> lock(tenant_mutex_);
  tenant_charges_[buffer.index] = TenantCharge{std::move(tenant), tier, bytes};
  tenant_charge_count_.store(tenant_charges_.size(),
                             std::memory_order_relaxed);
}

void HeterogeneousAllocator::release_tenant_charge(sim::BufferId buffer) {
  // The machine's free() succeeds at most once per buffer (double frees fail
  // before reaching here), so the erase — and with it the quota refund — is
  // exactly-once. The count gate keeps untenanted frees lock-free.
  if (tenant_charge_count_.load(std::memory_order_relaxed) == 0) return;
  TenantCharge charge;
  {
    std::lock_guard<std::mutex> lock(tenant_mutex_);
    auto it = tenant_charges_.find(buffer.index);
    if (it == tenant_charges_.end()) return;
    charge = std::move(it->second);
    tenant_charges_.erase(it);
    tenant_charge_count_.store(tenant_charges_.size(),
                               std::memory_order_relaxed);
  }
  charge.tenant->uncharge(charge.tier, charge.bytes);
}

void HeterogeneousAllocator::move_tenant_charge(sim::BufferId buffer,
                                                unsigned destination_node) {
  if (tenant_charge_count_.load(std::memory_order_relaxed) == 0) return;
  std::lock_guard<std::mutex> lock(tenant_mutex_);
  auto it = tenant_charges_.find(buffer.index);
  if (it == tenant_charges_.end()) return;
  const topo::MemoryKind to = node_kinds_[destination_node];
  it->second.tenant->move_charge(it->second.tier, to, it->second.bytes);
  it->second.tier = to;
}

tenant::TenantHandle HeterogeneousAllocator::tenant_of(
    sim::BufferId buffer) const {
  if (tenant_charge_count_.load(std::memory_order_relaxed) == 0) return nullptr;
  std::lock_guard<std::mutex> lock(tenant_mutex_);
  auto it = tenant_charges_.find(buffer.index);
  return it == tenant_charges_.end() ? nullptr : it->second.tenant;
}

const tenant::DegradationLadder& HeterogeneousAllocator::ladder_in_use() const {
  static const tenant::DegradationLadder kDefaultLadder;
  return tenant_registry_ != nullptr ? tenant_registry_->ladder()
                                     : kDefaultLadder;
}

double HeterogeneousAllocator::healthy_free_fraction() const {
  const health::QuarantineList* quarantine = registry_->quarantine_list();
  std::uint64_t free_bytes = 0;
  std::uint64_t capacity = 0;
  for (std::size_t n = 0; n < node_count_; ++n) {
    const unsigned node = static_cast<unsigned>(n);
    if (!machine_->node_online(node)) continue;
    if (quarantine != nullptr &&
        quarantine->verdict(node) != health::PlacementVerdict::kNormal) {
      continue;
    }
    capacity += machine_->capacity_bytes(node);
    free_bytes += usable_bytes(node);
  }
  return capacity == 0
             ? 0.0
             : static_cast<double>(free_bytes) / static_cast<double>(capacity);
}

tenant::OverloadLevel HeterogeneousAllocator::overload_level() const {
  const double fraction = healthy_free_fraction();
  return tenant_registry_ != nullptr
             ? tenant_registry_->effective_level(fraction)
             : ladder_in_use().level_for(fraction);
}

bool HeterogeneousAllocator::no_healthy_online_target(
    const health::QuarantineList& quarantine) const {
  for (std::size_t n = 0; n < node_count_; ++n) {
    const unsigned node = static_cast<unsigned>(n);
    if (machine_->node_online(node) &&
        quarantine.verdict(node) == health::PlacementVerdict::kNormal) {
      return false;
    }
  }
  return true;
}

support::Error HeterogeneousAllocator::backpressure_error(
    const AllocRequest& request, std::string message, std::uint64_t hint_ms) {
  if (request.deadline_ms > 0) hint_ms = std::min(hint_ms, request.deadline_ms);
  support::Error error =
      make_error(Errc::kBackpressure, std::move(message) + "; retry-after-ms=" +
                                          std::to_string(hint_ms));
  error.retry_after_ms = hint_ms;
  return error;
}

double HeterogeneousAllocator::estimate_migration_cost_ns(
    sim::BufferId buffer, unsigned destination_node) const {
  const sim::BufferInfo info = machine_->info(buffer);
  if (info.freed || info.node == destination_node) return 0.0;
  const auto& model = machine_->perf_model();
  const sim::EffectiveNodePerf src =
      model.effective(info.node, info.declared_bytes, /*local_initiator=*/true);
  const sim::EffectiveNodePerf dst = model.effective(
      destination_node, info.declared_bytes, /*local_initiator=*/true);
  const double copy_bw = std::min(src.read_bw, dst.write_bw);
  const double pages = static_cast<double>(
      (info.declared_bytes + migration_model_.page_bytes - 1) /
      migration_model_.page_bytes);
  return pages * migration_model_.per_page_overhead_ns +
         static_cast<double>(info.declared_bytes) / copy_bw * 1e9;
}

Result<double> HeterogeneousAllocator::migrate(sim::BufferId buffer,
                                               unsigned destination_node) {
  const sim::BufferInfo before = machine_->info(buffer);
  const double cost_ns = estimate_migration_cost_ns(buffer, destination_node);
  if (Status status = machine_->migrate(buffer, destination_node); !status.ok()) {
    return status.error();
  }
  if (before.node == destination_node) return 0.0;

  move_tenant_charge(buffer, destination_node);
  stats_.migrations.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes_migrated.fetch_add(before.declared_bytes,
                                  std::memory_order_relaxed);
  record_trace(TraceEvent{TraceEvent::Kind::kMigrate, before.label,
                          destination_node, before.declared_bytes,
                          "from node " + std::to_string(before.node)});
  return cost_ns;
}

Result<HeterogeneousAllocator::HybridAllocation>
HeterogeneousAllocator::mem_alloc_hybrid(const AllocRequest& request) {
  if (request.tenant != nullptr) {
    return make_error(Errc::kUnsupported,
                      "hybrid allocations are not quota-accounted; "
                      "tenanted requests must use mem_alloc");
  }
  // Whole-buffer placement on the BEST target first. (Not the full ranking:
  // the point of a hybrid allocation is to keep part of the buffer on the
  // fast target instead of pushing all of it down the ranking, §VII.)
  AllocRequest strict = request;
  strict.policy = Policy::kStrict;
  if (auto whole = mem_alloc(strict); whole.ok()) {
    HybridAllocation hybrid;
    hybrid.fast = whole->buffer;
    hybrid.fast_node = whole->node;
    hybrid.slow_node = whole->node;
    return hybrid;
  }

  attr::RankingSnapshot snapshot = registry_->alloc_ranking_cached(
      request.attribute, request.initiator,
      request.locality);
  if (!snapshot->resolved_ok) {
    return registry_->resolve_with_fallback(request.attribute).error();
  }
  const std::vector<attr::TargetValue>& ranking = snapshot->targets;
  if (ranking.size() < 2) {
    return make_error(Errc::kOutOfCapacity,
                      "cannot split: fewer than two local targets");
  }

  // Take whatever the best target still has, round down to MiB granularity
  // so tiny slivers do not count as a "fast part".
  const unsigned fast_node = ranking[0].target->logical_index();
  const std::uint64_t granule = 1 << 20;
  const std::uint64_t fast_bytes =
      std::min(request.bytes, usable_bytes(fast_node) / granule * granule);
  if (fast_bytes == 0 || fast_bytes == request.bytes) {
    return make_error(Errc::kOutOfCapacity,
                      "best target has no usable room to split into");
  }
  const std::uint64_t slow_bytes = request.bytes - fast_bytes;
  const double fast_fraction =
      static_cast<double>(fast_bytes) / static_cast<double>(request.bytes);
  const std::size_t fast_backing = static_cast<std::size_t>(
      static_cast<double>(request.backing_bytes) * fast_fraction);
  const std::size_t slow_backing =
      request.backing_bytes > fast_backing ? request.backing_bytes - fast_backing : 0;

  auto fast = machine_->allocate(fast_bytes, fast_node,
                                 request.label + ".fast", fast_backing);
  if (!fast.ok()) return fast.error();

  for (std::size_t rank = 1; rank < ranking.size(); ++rank) {
    const unsigned slow_node = ranking[rank].target->logical_index();
    auto slow = machine_->allocate(slow_bytes, slow_node,
                                   request.label + ".slow", slow_backing);
    if (!slow.ok()) {
      if (slow.error().code == Errc::kOutOfCapacity) continue;
      (void)machine_->free(*fast);
      return slow.error();
    }
    stats_.allocations.fetch_add(2, std::memory_order_relaxed);
    stats_.fallbacks.fetch_add(1, std::memory_order_relaxed);
    stats_.bytes_allocated.fetch_add(request.bytes, std::memory_order_relaxed);
    record_trace(TraceEvent{TraceEvent::Kind::kAlloc, request.label,
                            fast_node, request.bytes,
                            "hybrid split " +
                                support::format_fixed(fast_fraction * 100, 0) +
                                "% / node " + std::to_string(slow_node)});
    HybridAllocation hybrid;
    hybrid.fast = *fast;
    hybrid.slow = *slow;
    hybrid.fast_node = fast_node;
    hybrid.slow_node = slow_node;
    hybrid.fast_fraction = fast_fraction;
    return hybrid;
  }
  (void)machine_->free(*fast);
  stats_.failures.fetch_add(1, std::memory_order_relaxed);
  return make_error(Errc::kOutOfCapacity,
                    "no target can hold the slow part of the split");
}

Result<HeterogeneousAllocator::InterleavedAllocation>
HeterogeneousAllocator::mem_alloc_interleaved(const AllocRequest& request,
                                              unsigned max_ways) {
  if (max_ways == 0 || request.bytes == 0 || request.initiator.empty()) {
    return make_error(Errc::kInvalidArgument, "bad interleave request");
  }
  if (request.tenant != nullptr) {
    return make_error(Errc::kUnsupported,
                      "interleaved allocations are not quota-accounted; "
                      "tenanted requests must use mem_alloc");
  }
  attr::RankingSnapshot snapshot = registry_->alloc_ranking_cached(
      request.attribute, request.initiator,
      request.locality);
  if (!snapshot->resolved_ok) {
    return registry_->resolve_with_fallback(request.attribute).error();
  }
  const std::vector<attr::TargetValue>& ranking = snapshot->targets;
  if (ranking.empty()) {
    return make_error(Errc::kNotFound, "no local target has attribute values");
  }

  // Membership: walk the ranking collecting the best targets that can each
  // hold an equal stripe; shrink the way count until enough members fit.
  for (unsigned ways = std::min<unsigned>(max_ways,
                                          static_cast<unsigned>(ranking.size()));
       ways >= 1; --ways) {
    const std::uint64_t stripe = (request.bytes + ways - 1) / ways;
    std::vector<unsigned> members;
    for (const attr::TargetValue& candidate : ranking) {
      if (usable_bytes(candidate.target->logical_index()) >= stripe) {
        members.push_back(candidate.target->logical_index());
        if (members.size() == ways) break;
      }
    }
    if (members.size() < ways) continue;

    InterleavedAllocation result;
    std::uint64_t remaining = request.bytes;
    for (unsigned w = 0; w < ways; ++w) {
      const std::uint64_t part_bytes = std::min(stripe, remaining);
      remaining -= part_bytes;
      const unsigned node = members[w];
      auto buffer = machine_->allocate(
          part_bytes, node, request.label + ".ileave" + std::to_string(w),
          request.backing_bytes / std::max(1u, ways));
      if (!buffer.ok()) {
        for (sim::BufferId id : result.parts) (void)machine_->free(id);
        return buffer.error();
      }
      result.parts.push_back(*buffer);
      result.nodes.push_back(node);
      result.fractions.push_back(static_cast<double>(part_bytes) /
                                 static_cast<double>(request.bytes));
    }
    stats_.allocations.fetch_add(1, std::memory_order_relaxed);
    stats_.bytes_allocated.fetch_add(request.bytes, std::memory_order_relaxed);
    record_trace(TraceEvent{TraceEvent::Kind::kAlloc, request.label,
                            result.nodes.front(), request.bytes,
                            "interleaved " + std::to_string(ways) + "-way"});
    return result;
  }
  stats_.failures.fetch_add(1, std::memory_order_relaxed);
  return make_error(Errc::kOutOfCapacity,
                    "no interleave width fits '" + request.label + "'");
}

Status HeterogeneousAllocator::reserve(unsigned node, std::uint64_t bytes) {
  if (node >= node_count_) {
    return make_error(Errc::kInvalidArgument, "no such node");
  }
  // The availability check is advisory under concurrency (other threads
  // allocate while we look); the hard never-oversubscribe invariant lives in
  // the machine's capacity CAS. The reservation counter itself is exact.
  std::uint64_t reserved = reserved_[node].load(std::memory_order_relaxed);
  do {
    if (machine_->available_bytes(node) < reserved + bytes) {
      return make_error(Errc::kOutOfCapacity,
                        "cannot reserve " + support::format_bytes(bytes) +
                            " on node " + std::to_string(node));
    }
  } while (!reserved_[node].compare_exchange_weak(reserved, reserved + bytes,
                                                  std::memory_order_relaxed));
  return {};
}

void HeterogeneousAllocator::release_reservation(unsigned node,
                                                 std::uint64_t bytes) {
  if (node >= node_count_) return;
  std::uint64_t reserved = reserved_[node].load(std::memory_order_relaxed);
  std::uint64_t next;
  do {
    next = reserved - std::min(reserved, bytes);
  } while (!reserved_[node].compare_exchange_weak(reserved, next,
                                                  std::memory_order_relaxed));
}

std::uint64_t HeterogeneousAllocator::reserved_bytes(unsigned node) const {
  return node < node_count_ ? reserved_[node].load(std::memory_order_relaxed) : 0;
}

bool HeterogeneousAllocator::consume_reservation(unsigned node,
                                                 std::uint64_t bytes) {
  std::uint64_t reserved = reserved_[node].load(std::memory_order_relaxed);
  do {
    if (reserved < bytes) return false;
  } while (!reserved_[node].compare_exchange_weak(reserved, reserved - bytes,
                                                  std::memory_order_relaxed));
  return true;
}

Result<Allocation> HeterogeneousAllocator::mem_alloc_reserved(
    unsigned node, std::uint64_t bytes, std::string label,
    std::size_t backing_bytes) {
  if (node >= node_count_) {
    return make_error(Errc::kInvalidArgument, "no such node");
  }
  // Consume the reservation *before* allocating so two racing callers can
  // never both spend the same reserved bytes; refund on allocation failure.
  if (!consume_reservation(node, bytes)) {
    return make_error(Errc::kOutOfCapacity,
                      "reservation on node " + std::to_string(node) +
                          " holds only " +
                          support::format_bytes(reserved_bytes(node)));
  }
  auto buffer = machine_->allocate(bytes, node, label, backing_bytes);
  if (!buffer.ok()) {
    reserved_[node].fetch_add(bytes, std::memory_order_relaxed);
    return buffer.error();
  }
  stats_.allocations.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes_allocated.fetch_add(bytes, std::memory_order_relaxed);
  record_trace(TraceEvent{TraceEvent::Kind::kAlloc, label, node, bytes,
                          "from reservation"});
  return Allocation{*buffer, node, attr::kCapacity, 0, false};
}

Result<Allocation> HeterogeneousAllocator::mem_alloc_intercepted(
    std::uint64_t bytes, const support::Bitmap& initiator, std::string label,
    std::size_t backing_bytes) {
  AllocRequest request;
  request.bytes = bytes;
  request.initiator = initiator;
  request.label = std::move(label);
  request.backing_bytes = backing_bytes;
  request.policy = Policy::kPreferredThenDefault;

  for (const SizeRule& rule : size_rules_) {
    if (bytes >= rule.min_bytes && bytes < rule.max_bytes) {
      request.attribute = rule.attribute;
      return mem_alloc(request);
    }
  }
  // No rule matched: OS default order == Locality ranking (closest, then
  // logical index), which Capacity-agnostic malloc would get.
  request.attribute = attr::kLocality;
  return mem_alloc(request);
}

}  // namespace hetmem::alloc
