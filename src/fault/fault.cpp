#include "hetmem/fault/fault.hpp"

#include <algorithm>

#include "hetmem/support/str.hpp"

namespace hetmem::fault {

namespace {

/// FNV-1a, so a site's random stream depends only on (seed, name) — never on
/// the order sites were first touched. That is what makes interleaved
/// consumers (machine, probe, corruption) individually replayable.
std::uint64_t hash_site(std::string_view name) {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (char c : name) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

}  // namespace

FaultInjector::Site& FaultInjector::site_state_locked(std::string_view site) {
  for (Site& s : sites_) {
    if (s.name == site) return s;
  }
  Site s;
  s.name = std::string(site);
  s.rng = support::Xoshiro256(seed_ ^ hash_site(site));
  sites_.push_back(std::move(s));
  return sites_.back();
}

const FaultInjector::Site* FaultInjector::find_site_locked(
    std::string_view site) const {
  for (const Site& s : sites_) {
    if (s.name == site) return &s;
  }
  return nullptr;
}

void FaultInjector::configure(std::string_view site, FaultSpec spec) {
  std::lock_guard<std::mutex> lock(mutex_);
  Site& s = site_state_locked(site);
  s.spec = spec;
  s.armed = spec.probability > 0.0;
  s.burst_remaining = 0;
}

bool FaultInjector::should_fail(std::string_view site) {
  std::lock_guard<std::mutex> lock(mutex_);
  return should_fail_locked(site);
}

bool FaultInjector::should_fail_locked(std::string_view site) {
  Site& s = site_state_locked(site);
  const std::uint64_t sequence = s.consultations++;
  if (!s.armed) return false;
  if (s.spec.max_count != 0 && s.injected >= s.spec.max_count) return false;

  bool fire = false;
  if (s.burst_remaining > 0) {
    --s.burst_remaining;
    fire = true;
  } else if (s.rng.next_double() < s.spec.probability) {
    fire = true;
    if (s.spec.burst > 1) s.burst_remaining = s.spec.burst - 1;
  }
  if (!fire) return false;

  ++s.injected;
  schedule_.push_back(FaultEvent{s.name, sequence});
  return true;
}

double FaultInjector::noise_factor(std::string_view site) {
  // Draw the magnitude unconditionally so the stream position (and thus the
  // rest of the schedule) does not depend on whether this consultation fired.
  std::lock_guard<std::mutex> lock(mutex_);
  const bool fire = should_fail_locked(site);
  Site& s = site_state_locked(site);
  const double unit = s.rng.next_double() * 2.0 - 1.0;  // [-1, 1)
  if (!fire || s.spec.noise_sigma <= 0.0) return 1.0;
  return std::max(0.01, 1.0 + s.spec.noise_sigma * unit);
}

double FaultInjector::uniform(std::string_view site) {
  std::lock_guard<std::mutex> lock(mutex_);
  return site_state_locked(site).rng.next_double();
}

std::uint64_t FaultInjector::injected(std::string_view site) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const Site* s = find_site_locked(site);
  return s != nullptr ? s->injected : 0;
}

std::uint64_t FaultInjector::consultations(std::string_view site) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const Site* s = find_site_locked(site);
  return s != nullptr ? s->consultations : 0;
}

std::uint64_t FaultInjector::total_injected() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const Site& s : sites_) total += s.injected;
  return total;
}

std::string FaultInjector::schedule_fingerprint() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  for (const FaultEvent& event : schedule_) {
    if (!out.empty()) out += ' ';
    out += event.site + "@" + std::to_string(event.sequence);
  }
  return out;
}

const std::vector<SiteInfo>& all_sites() {
  static const std::vector<SiteInfo> sites = {
      {site::kMachineAllocTransient, "SimMachine::allocate",
       "the allocation fails with kTransient (retryable)"},
      {site::kMachineNodeOffline, "SimMachine::allocate, "
       "SimMachine::sample_node_faults",
       "the target/sampled node goes offline (sticky) and the call fails"},
      {site::kMachineMigrateTransient, "SimMachine::migrate",
       "the migration fails with kTransient (retryable)"},
      {site::kMachineMigrateStall, "SimMachine::migrate",
       "the migration wedges: kTransient failures that persist across "
       "retries (burst), the stalled-progress signature the recover "
       "watchdog/breakers react to"},
      {site::kRuntimeEpochOverrun, "recover::Watchdog::observe_epoch",
       "the observed epoch is treated as having blown its deadline"},
      {site::kMachineEccBurst, "SimMachine::sample_node_faults",
       "a corrected-ECC-error burst is counted against the sampled node"},
      {site::kMachineNodeDegraded, "SimMachine::sample_node_faults",
       "the sampled node enters the sticky degraded regime"},
      {site::kMachinePowerThrottle, "SimMachine::sample_node_faults",
       "a thermal power-throttle event is counted against the sampled node"},
      {site::kProbeFail, "probe::measure",
       "the measurement fails outright (device busy, counters unavailable)"},
      {site::kProbeNoise, "probe::measure",
       "the measured value is multiplied by a noise factor"},
      {site::kHmatDropEntry, "corrupt_hmat_text",
       "a record line is dropped (firmware omission)"},
      {site::kHmatFlipAccess, "corrupt_hmat_text",
       "a read<->write access token is flipped"},
      {site::kHmatTruncateLine, "corrupt_hmat_text",
       "a record line is truncated mid-token"},
      {site::kHmatDuplicateEntry, "corrupt_hmat_text",
       "a record is duplicated with a perturbed value"},
      {site::kHmatGarbleValue, "corrupt_hmat_text",
       "a numeric value is replaced with garbage"},
  };
  return sites;
}

std::vector<FaultInjector::SiteState> FaultInjector::export_sites() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<SiteState> out;
  out.reserve(sites_.size());
  for (const Site& s : sites_) {
    out.push_back(SiteState{s.name, s.spec, s.rng.state(), s.consultations,
                            s.injected, s.burst_remaining, s.armed});
  }
  return out;
}

void FaultInjector::restore_site(const SiteState& state) {
  std::lock_guard<std::mutex> lock(mutex_);
  Site& s = site_state_locked(state.name);
  s.spec = state.spec;
  s.rng.set_state(state.rng);
  s.consultations = state.consultations;
  s.injected = state.injected;
  s.burst_remaining = state.burst_remaining;
  s.armed = state.armed;
}

const std::vector<const char*>& FaultInjector::preset_names() {
  static const std::vector<const char*> names = {"none", "light", "heavy",
                                                 "hmat-chaos", "alloc-storm"};
  return names;
}

FaultInjector FaultInjector::preset(std::string_view name, std::uint64_t seed) {
  FaultInjector injector(seed);
  if (name == "none") return injector;
  if (name == "light") {
    injector.configure(site::kMachineAllocTransient, {.probability = 0.05});
    injector.configure(site::kProbeFail, {.probability = 0.03});
    injector.configure(site::kProbeNoise,
                       {.probability = 0.2, .noise_sigma = 0.05});
    injector.configure(site::kHmatDropEntry, {.probability = 0.05});
    injector.configure(site::kHmatGarbleValue, {.probability = 0.03});
    return injector;
  }
  if (name == "heavy") {
    injector.configure(site::kMachineAllocTransient,
                       {.probability = 0.25, .burst = 2});
    injector.configure(site::kMachineNodeOffline,
                       {.probability = 0.02, .max_count = 1});
    injector.configure(site::kMachineMigrateTransient, {.probability = 0.2});
    // Health-sampling sites: only consulted when a HealthMonitor (or a
    // direct sample_node_faults caller) polls, so arming them here does not
    // change schedules for runs without health monitoring.
    injector.configure(site::kMachineEccBurst,
                       {.probability = 0.05, .burst = 3});
    injector.configure(site::kMachineNodeDegraded,
                       {.probability = 0.01, .max_count = 1});
    injector.configure(site::kProbeFail, {.probability = 0.15});
    injector.configure(site::kProbeNoise,
                       {.probability = 0.6, .noise_sigma = 0.35});
    injector.configure(site::kHmatDropEntry, {.probability = 0.2});
    injector.configure(site::kHmatFlipAccess, {.probability = 0.1});
    injector.configure(site::kHmatTruncateLine, {.probability = 0.1});
    injector.configure(site::kHmatDuplicateEntry, {.probability = 0.15});
    injector.configure(site::kHmatGarbleValue, {.probability = 0.1});
    return injector;
  }
  if (name == "hmat-chaos") {
    injector.configure(site::kHmatDropEntry, {.probability = 0.3});
    injector.configure(site::kHmatFlipAccess, {.probability = 0.2});
    injector.configure(site::kHmatTruncateLine, {.probability = 0.2});
    injector.configure(site::kHmatDuplicateEntry, {.probability = 0.3});
    injector.configure(site::kHmatGarbleValue, {.probability = 0.2});
    return injector;
  }
  if (name == "alloc-storm") {
    injector.configure(site::kMachineAllocTransient,
                       {.probability = 0.5, .burst = 3});
    return injector;
  }
  // Unknown names behave like "none": chaos harnesses iterate preset_names().
  return injector;
}

HmatCorruption corrupt_hmat_text(std::string_view text, FaultInjector& injector) {
  HmatCorruption result;
  for (std::string_view raw_line : support::split(text, '\n')) {
    const std::string_view line = support::trim(raw_line);
    const bool is_record = !line.empty() && line.front() != '#';
    if (!is_record) {
      if (!raw_line.empty()) {
        result.text += std::string(raw_line);
        result.text += '\n';
      }
      continue;
    }

    if (injector.should_fail(site::kHmatDropEntry)) {
      ++result.lines_dropped;
      continue;  // omission: the record never reaches the parser
    }

    std::string mutated(raw_line);
    if (injector.should_fail(site::kHmatFlipAccess)) {
      // Swap read<->write access tokens; promote "access" to "read" so even
      // combined entries get skewed.
      std::size_t pos;
      if ((pos = mutated.find(" read ")) != std::string::npos) {
        mutated.replace(pos, 6, " write ");
        ++result.access_flips;
      } else if ((pos = mutated.find(" write ")) != std::string::npos) {
        mutated.replace(pos, 7, " read ");
        ++result.access_flips;
      } else if ((pos = mutated.find(" access ")) != std::string::npos) {
        mutated.replace(pos, 8, " read ");
        ++result.access_flips;
      }
    }
    if (injector.should_fail(site::kHmatGarbleValue)) {
      if (const std::size_t pos = mutated.rfind('='); pos != std::string::npos) {
        mutated.replace(pos + 1, std::string::npos, "NaN?");
        ++result.values_garbled;
      }
    }
    if (injector.should_fail(site::kHmatTruncateLine)) {
      const double position = injector.uniform(site::kHmatTruncateLine);
      const std::size_t cut = 4 + static_cast<std::size_t>(
                                      static_cast<double>(mutated.size()) * position);
      mutated.resize(std::min(mutated.size(), cut));
      ++result.lines_truncated;
    }

    result.text += mutated;
    result.text += '\n';

    if (injector.should_fail(site::kHmatDuplicateEntry)) {
      // Re-emit the (pre-mutation) record with a perturbed value: a
      // duplicate (initiator, target, attribute) key whose resolution must
      // be deterministic (last-wins) in the parser.
      std::string duplicate(raw_line);
      if (const std::size_t pos = duplicate.rfind('='); pos != std::string::npos) {
        duplicate.insert(pos + 1, "9");
        result.text += duplicate;
        result.text += '\n';
        ++result.duplicates_added;
      }
    }
  }
  return result;
}

}  // namespace hetmem::fault
