#include "hetmem/omp/omp_spaces.hpp"

#include <bit>

namespace hetmem::omp {

using support::Errc;
using support::make_error;
using support::Result;
using support::Status;

const char* mem_space_name(MemSpace space) {
  switch (space) {
    case MemSpace::kDefault: return "omp_default_mem_space";
    case MemSpace::kLargeCap: return "omp_large_cap_mem_space";
    case MemSpace::kConst: return "omp_const_mem_space";
    case MemSpace::kHighBandwidth: return "omp_high_bw_mem_space";
    case MemSpace::kLowLatency: return "omp_low_lat_mem_space";
  }
  return "?";
}

attr::AttrId space_attribute(MemSpace space) {
  switch (space) {
    case MemSpace::kDefault:
    case MemSpace::kConst:
      return attr::kLocality;
    case MemSpace::kLargeCap:
      return attr::kCapacity;
    case MemSpace::kHighBandwidth:
      return attr::kBandwidth;
    case MemSpace::kLowLatency:
      return attr::kLatency;
  }
  return attr::kLocality;
}

OmpRuntime::OmpRuntime(alloc::HeterogeneousAllocator& allocator)
    : allocator_(&allocator) {
  // Predefined allocators, handles 0..4 (default traits).
  for (MemSpace space : {MemSpace::kDefault, MemSpace::kLargeCap,
                         MemSpace::kConst, MemSpace::kHighBandwidth,
                         MemSpace::kLowLatency}) {
    allocators_.push_back(OmpAllocator{space, AllocatorTraits{}});
  }
}

Result<std::uint32_t> OmpRuntime::init_allocator(MemSpace space,
                                                 const AllocatorTraits& traits) {
  if (traits.alignment == 0 || !std::has_single_bit(traits.alignment)) {
    return make_error(Errc::kInvalidArgument,
                      "alignment trait must be a power of two");
  }
  allocators_.push_back(OmpAllocator{space, traits});
  return static_cast<std::uint32_t>(allocators_.size() - 1);
}

const OmpAllocator* OmpRuntime::allocator_info(std::uint32_t handle) const {
  if (handle >= allocators_.size()) return nullptr;
  return &allocators_[handle];
}

Result<sim::BufferId> OmpRuntime::allocate(std::uint64_t bytes,
                                           std::uint32_t allocator_handle,
                                           const support::Bitmap& initiator,
                                           std::string label,
                                           std::size_t backing_bytes) {
  const OmpAllocator* omp_allocator = allocator_info(allocator_handle);
  if (omp_allocator == nullptr) {
    return make_error(Errc::kInvalidArgument, "unknown allocator handle");
  }
  // Alignment trait: round the charged size up.
  const std::uint64_t align = omp_allocator->traits.alignment;
  const std::uint64_t padded = (bytes + align - 1) / align * align;

  alloc::AllocRequest request;
  request.bytes = padded;
  request.attribute = space_attribute(omp_allocator->space);
  request.initiator = initiator;
  request.label = std::move(label);
  request.backing_bytes = backing_bytes;
  // The space targets ITS best node; walking the whole ranking would blur
  // spaces together, so in-space allocation is strict and the fallback
  // TRAIT decides what happens next (OpenMP spec semantics).
  request.policy = alloc::Policy::kStrict;

  auto allocation = allocator_->mem_alloc(request);
  if (allocation.ok()) return allocation->buffer;
  if (allocation.error().code != Errc::kOutOfCapacity) {
    return allocation.error();
  }

  switch (omp_allocator->traits.fallback) {
    case FallbackTrait::kNullFb:
      return make_error(Errc::kOutOfCapacity,
                        std::string(mem_space_name(omp_allocator->space)) +
                            " exhausted (null_fb)");
    case FallbackTrait::kAbortFb:
      return make_error(Errc::kInternal,
                        std::string(mem_space_name(omp_allocator->space)) +
                            " exhausted (abort_fb)");
    case FallbackTrait::kDefaultMemFb: {
      request.attribute = space_attribute(MemSpace::kDefault);
      request.policy = alloc::Policy::kRankedFallback;
      auto retry = allocator_->mem_alloc(request);
      if (!retry.ok()) return retry.error();
      return retry->buffer;
    }
  }
  return make_error(Errc::kInternal, "unreachable");
}

Status OmpRuntime::deallocate(sim::BufferId buffer) {
  return allocator_->mem_free(buffer);
}

}  // namespace hetmem::omp
