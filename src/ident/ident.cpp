#include "hetmem/ident/ident.hpp"

#include <algorithm>
#include <cstdio>
#include <cmath>

#include "hetmem/support/units.hpp"

namespace hetmem::ident {

const char* kind_guess_name(KindGuess guess) {
  switch (guess) {
    case KindGuess::kFastSmall: return "fast-small";
    case KindGuess::kNormal: return "normal";
    case KindGuess::kSlowBig: return "slow-big";
    case KindGuess::kFar: return "far";
    case KindGuess::kUnknown: return "unknown";
  }
  return "?";
}

KindGuess expected_guess(topo::MemoryKind kind) {
  switch (kind) {
    case topo::MemoryKind::kDRAM: return KindGuess::kNormal;
    case topo::MemoryKind::kHBM: return KindGuess::kFastSmall;
    case topo::MemoryKind::kNVDIMM: return KindGuess::kSlowBig;
    case topo::MemoryKind::kNAM: return KindGuess::kFar;
    // From the CPU initiators this library models, coherent GPU memory is a
    // high-latency remote pool (NVLink hop) — behaviorally "far", even
    // though it is HBM on the device side.
    case topo::MemoryKind::kGPU: return KindGuess::kFar;
  }
  return KindGuess::kUnknown;
}

namespace {

struct Features {
  bool has_perf = false;
  double bandwidth = 0.0;  // best-initiator view
  double latency = 0.0;
  double capacity = 0.0;
};

double median(std::vector<double> values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const std::size_t n = values.size();
  return n % 2 == 1 ? values[n / 2] : (values[n / 2 - 1] + values[n / 2]) / 2.0;
}

}  // namespace

std::vector<NodeClassification> classify(const attr::MemAttrRegistry& registry,
                                         const ClassifyOptions& options) {
  const topo::Topology& topology = registry.topology();
  const std::size_t node_count = topology.numa_nodes().size();

  std::vector<Features> features(node_count);
  for (const topo::Object* node : topology.numa_nodes()) {
    Features& f = features[node->logical_index()];
    auto capacity = registry.value(attr::kCapacity, *node, std::nullopt);
    f.capacity = capacity.ok() ? *capacity : 0.0;
    auto bandwidth = registry.best_initiator(attr::kBandwidth, *node);
    auto latency = registry.best_initiator(attr::kLatency, *node);
    if (bandwidth.ok() && latency.ok()) {
      f.has_perf = true;
      f.bandwidth = bandwidth->value;
      f.latency = latency->value;
    }
  }

  std::vector<double> latencies, capacities;
  for (const Features& f : features) {
    if (!f.has_perf) continue;
    latencies.push_back(f.latency);
    capacities.push_back(f.capacity);
  }
  const double floor_lat =
      latencies.empty() ? 0.0 : *std::min_element(latencies.begin(), latencies.end());
  const double median_cap = median(capacities);

  // Pass 1: latency rules split off the slow tiers (NVDIMM/NAM-like).
  // The small-capacity condition keeps HBM — whose loaded latency can also
  // exceed DRAM's — out of the slow bucket.
  std::vector<bool> slow_or_far(node_count, false);
  for (std::size_t n = 0; n < node_count; ++n) {
    const Features& f = features[n];
    if (!f.has_perf) continue;
    const double lat_ratio = floor_lat > 0 ? f.latency / floor_lat : 1.0;
    const double cap_ratio = median_cap > 0 ? f.capacity / median_cap : 1.0;
    slow_or_far[n] = lat_ratio >= options.far_latency_ratio ||
                     f.latency >= options.absolute_far_latency ||
                     (lat_ratio >= options.slow_latency_ratio && cap_ratio >= 1.0);
  }

  // Pass 2: the bandwidth baseline is the weakest of the remaining
  // ("normal-or-faster") nodes — a median would sit between the tiers when
  // half the nodes are HBM.
  double baseline_bw = 0.0;
  double baseline_cap_median = 0.0;
  {
    std::vector<double> base_caps;
    for (std::size_t n = 0; n < node_count; ++n) {
      if (!features[n].has_perf || slow_or_far[n]) continue;
      if (baseline_bw == 0.0 || features[n].bandwidth < baseline_bw) {
        baseline_bw = features[n].bandwidth;
      }
      base_caps.push_back(features[n].capacity);
    }
    baseline_cap_median = median(base_caps);
  }

  std::vector<NodeClassification> out;
  out.reserve(node_count);
  for (const topo::Object* node : topology.numa_nodes()) {
    const std::size_t n = node->logical_index();
    const Features& f = features[n];
    NodeClassification c;
    c.node = node->logical_index();
    if (!f.has_perf) {
      c.guess = KindGuess::kUnknown;
      c.rationale = "no bandwidth/latency values";
      out.push_back(std::move(c));
      continue;
    }

    const double bw_ratio = baseline_bw > 0 ? f.bandwidth / baseline_bw : 1.0;
    const double lat_ratio = floor_lat > 0 ? f.latency / floor_lat : 1.0;
    const double cap_ratio = median_cap > 0 ? f.capacity / median_cap : 1.0;
    char rationale[160];
    std::snprintf(
        rationale, sizeof(rationale),
        "bandwidth %.1fx baseline, latency %.1fx floor, capacity %.1fx median",
        bw_ratio, lat_ratio, cap_ratio);
    c.rationale = rationale;

    // Decision ladder, most distinctive behavior first. Confidence is the
    // margin past the triggering threshold, saturated at 1.
    const bool small_node =
        baseline_cap_median <= 0.0 || f.capacity <= baseline_cap_median;
    if (slow_or_far[n] && (lat_ratio >= options.far_latency_ratio ||
                           f.latency >= options.absolute_far_latency)) {
      c.guess = KindGuess::kFar;
      c.confidence =
          std::min(1.0, lat_ratio / (2.0 * options.far_latency_ratio) + 0.5);
    } else if (slow_or_far[n]) {
      c.guess = KindGuess::kSlowBig;
      c.confidence =
          std::min(1.0, lat_ratio / (2.0 * options.slow_latency_ratio) + 0.5);
    } else if ((bw_ratio >= options.fast_bandwidth_ratio && small_node) ||
               f.bandwidth >= options.absolute_fast_bandwidth) {
      c.guess = KindGuess::kFastSmall;
      c.confidence =
          std::min(1.0, bw_ratio / (2.0 * options.fast_bandwidth_ratio) + 0.5);
    } else {
      c.guess = KindGuess::kNormal;
      // Confidence shrinks as the node drifts toward any boundary.
      const double margin =
          std::min({options.slow_latency_ratio / std::max(1.0, lat_ratio),
                    options.fast_bandwidth_ratio / std::max(1.0, bw_ratio)});
      c.confidence = std::min(1.0, 0.4 + 0.3 * margin);
    }
    out.push_back(std::move(c));
  }
  return out;
}

double agreement_with_ground_truth(
    const topo::Topology& topology,
    const std::vector<NodeClassification>& classifications) {
  if (classifications.empty()) return 0.0;
  std::size_t matches = 0;
  for (const NodeClassification& c : classifications) {
    const topo::Object* node = topology.numa_node(c.node);
    if (node != nullptr && expected_guess(node->memory_kind()) == c.guess) {
      ++matches;
    }
  }
  return static_cast<double>(matches) / static_cast<double>(classifications.size());
}

std::string render(const topo::Topology& topology,
                   const std::vector<NodeClassification>& classifications) {
  std::string out;
  for (const NodeClassification& c : classifications) {
    const topo::Object* node = topology.numa_node(c.node);
    out += "  L#" + std::to_string(c.node) + ": " + kind_guess_name(c.guess) +
           " (confidence " + support::format_fixed(c.confidence, 2) + ") -- " +
           c.rationale;
    if (node != nullptr) {
      out += " [truth: ";
      out += topo::memory_kind_name(node->memory_kind());
      out += "]";
    }
    out += "\n";
  }
  return out;
}

}  // namespace hetmem::ident
