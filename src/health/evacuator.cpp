#include "hetmem/health/evacuator.hpp"

#include <algorithm>
#include <utility>

#include "hetmem/alloc/advisor.hpp"
#include "hetmem/prof/classify.hpp"
#include "hetmem/support/str.hpp"
#include "hetmem/support/units.hpp"

namespace hetmem::health {

namespace {

/// Criticality class for the drain order. Lower drains first.
enum class DrainClass : int {
  kLatency = 0,
  kBandwidth = 1,
  kCold = 2,  // committed-insensitive or untracked
};

struct DrainItem {
  sim::BufferId buffer;
  DrainClass drain_class = DrainClass::kCold;
  bool tracked = false;
  prof::Sensitivity sensitivity = prof::Sensitivity::kInsensitive;
  double ema_bytes = 0.0;
};

DrainClass drain_class_of(prof::Sensitivity sensitivity) {
  switch (sensitivity) {
    case prof::Sensitivity::kLatency: return DrainClass::kLatency;
    case prof::Sensitivity::kBandwidth: return DrainClass::kBandwidth;
    default: return DrainClass::kCold;
  }
}

}  // namespace

const char* evac_verdict_name(EvacVerdict verdict) {
  switch (verdict) {
    case EvacVerdict::kMoved: return "moved";
    case EvacVerdict::kSkippedCold: return "skipped:cold";
    case EvacVerdict::kRejectedBreakeven: return "rejected:breakeven";
    case EvacVerdict::kRejectedNoTarget: return "rejected:no-target";
    case EvacVerdict::kDeferredBudget: return "deferred:budget";
    case EvacVerdict::kDeferredTenantShare: return "deferred:tenant-share";
    case EvacVerdict::kFailedMigrate: return "failed:migrate";
  }
  return "?";
}

Evacuator::Evacuator(alloc::HeterogeneousAllocator& allocator,
                     runtime::MigrationEngine& engine, support::Bitmap initiator,
                     EvacuatorOptions options)
    : allocator_(&allocator),
      engine_(&engine),
      initiator_(std::move(initiator)),
      options_(options) {}

void Evacuator::log(std::uint64_t epoch, unsigned from_node, unsigned to_node,
                    sim::BufferId buffer, EvacVerdict verdict, double cost_ns,
                    std::string reason) {
  const sim::BufferInfo& info = allocator_->machine().info(buffer);
  EvacDecision decision;
  decision.epoch = epoch;
  decision.from_node = from_node;
  decision.to_node = to_node;
  decision.buffer = buffer;
  decision.label = info.label;
  decision.bytes = info.declared_bytes;
  decision.verdict = verdict;
  decision.cost_ns = cost_ns;
  decision.reason = std::move(reason);
  switch (verdict) {
    case EvacVerdict::kMoved:
      ++stats_.moved;
      stats_.moved_bytes += decision.bytes;
      stats_.cost_ns += cost_ns;
      break;
    case EvacVerdict::kSkippedCold:
    case EvacVerdict::kRejectedBreakeven:
      ++stats_.skipped;
      break;
    case EvacVerdict::kDeferredBudget:
    case EvacVerdict::kDeferredTenantShare:
      ++stats_.deferred;
      break;
    default:
      ++stats_.failed;
      break;
  }
  decisions_.push_back(std::move(decision));
}

double Evacuator::drain_epoch(std::uint64_t epoch_index, unsigned node,
                              HealthState state, unsigned threads,
                              const runtime::OnlineClassifier* classifier) {
  if (state != HealthState::kQuarantined && state != HealthState::kOffline) {
    return 0.0;
  }
  const bool offline = state == HealthState::kOffline;
  sim::SimMachine& machine = allocator_->machine();
  const attr::MemAttrRegistry& registry = allocator_->registry();
  const alloc::TrafficCostModel model{options_.mlp, threads};

  auto node_cost_ns = [&](unsigned target, std::uint64_t declared_bytes,
                          const sim::BufferTraffic& traffic) {
    const bool local = initiator_.is_subset_of(
        machine.topology().numa_node(target)->cpuset());
    return model.cost_ns(machine, target, declared_bytes, local, traffic);
  };

  // Work list: a racy snapshot of the node's live buffers, annotated with
  // the classifier's committed verdict and traffic EMA. Each entry is
  // revalidated against machine.info() before anything irreversible.
  std::vector<DrainItem> items;
  for (sim::BufferId buffer : machine.live_buffers_on(node)) {
    DrainItem item;
    item.buffer = buffer;
    if (classifier != nullptr && buffer.index < classifier->states().size()) {
      const auto& buffer_state = classifier->states()[buffer.index];
      if (buffer_state.tracked) {
        item.tracked = true;
        item.sensitivity = buffer_state.committed;
        item.drain_class = drain_class_of(buffer_state.committed);
        item.ema_bytes = buffer_state.ema.memory_bytes;
      }
    }
    items.push_back(item);
  }
  // Most critical first: latency, then bandwidth, then cold/untracked;
  // hotter before colder within a class; buffer index breaks ties so the
  // order (and the log) is deterministic.
  std::stable_sort(items.begin(), items.end(),
                   [](const DrainItem& a, const DrainItem& b) {
                     if (a.drain_class != b.drain_class) {
                       return static_cast<int>(a.drain_class) <
                              static_cast<int>(b.drain_class);
                     }
                     if (a.ema_bytes != b.ema_bytes) {
                       return a.ema_bytes > b.ema_bytes;
                     }
                     return a.buffer.index < b.buffer.index;
                   });

  double paid_ns = 0.0;
  // Traffic already re-homed onto each destination by this drain: charging
  // it as congestion when choosing the next destination spreads a multi-
  // buffer drain across equivalent targets instead of piling everything
  // onto the single cheapest node (whose controller would then serialize
  // all the evacuated traffic).
  std::vector<sim::BufferTraffic> assigned(
      machine.topology().numa_nodes().size());
  for (const DrainItem& item : items) {
    const sim::BufferInfo info = machine.info(item.buffer);
    if (info.freed || info.node != node) continue;  // raced a free/migration

    // Destination: candidates come from the quarantine-aware resilient
    // ranking of the buffer's own placement hint (capacity for cold and
    // untracked buffers); quarantined targets sink to the ranking's tail and
    // are skipped outright here — evacuating onto failing hardware would
    // just queue a second evacuation. For a buffer with observed traffic the
    // pick is the candidate with the lowest modeled traffic cost, not the
    // first in ranking order: the locality-first ranking can prefer a local
    // slow tier (e.g. package NVDIMM) over a sibling DRAM node that serves
    // this buffer's access pattern far better. Ranking order breaks cost
    // ties, keeping the choice deterministic.
    const attr::AttrId attribute =
        item.tracked ? prof::allocation_hint(item.sensitivity) : attr::kCapacity;
    // kAll, not the allocator's locality-restricted default: losing a node is
    // exactly the situation where the search must widen to non-local targets
    // (an SNC sibling's DRAM does not even intersect this initiator's cpuset).
    attr::RankingSnapshot snapshot = registry.targets_ranked_resilient_cached(
        attribute, initiator_, topo::LocalityFlags::kAll);
    const QuarantineList* quarantine = registry.quarantine_list();
    const bool cost_aware =
        item.tracked && item.ema_bytes > 0.0 && classifier != nullptr;
    unsigned destination = node;
    double destination_cost_ns = 0.0;
    for (const attr::TargetValue& target : snapshot->targets) {
      const unsigned candidate = target.target->logical_index();
      if (candidate == node) continue;
      if (!machine.node_online(candidate)) continue;
      if (quarantine != nullptr &&
          quarantine->verdict(candidate) != PlacementVerdict::kNormal) {
        continue;
      }
      if (machine.available_bytes(candidate) < info.declared_bytes) continue;
      if (!cost_aware) {
        destination = candidate;
        break;
      }
      const double candidate_cost_ns =
          node_cost_ns(candidate, info.declared_bytes,
                       classifier->states()[item.buffer.index].ema) +
          node_cost_ns(candidate, info.declared_bytes, assigned[candidate]);
      if (destination == node || candidate_cost_ns < destination_cost_ns) {
        destination = candidate;
        destination_cost_ns = candidate_cost_ns;
      }
    }
    if (destination == node) {
      log(epoch_index, node, node, item.buffer, EvacVerdict::kRejectedNoTarget,
          0.0, "no healthy target has room");
      continue;
    }

    const double cost_ns =
        allocator_->estimate_migration_cost_ns(item.buffer, destination);
    if (!offline) {
      // Quarantined (not offline): the node still serves reads, so only move
      // buffers whose traffic amortizes the copy. The source cost is scaled
      // by quarantined_slowdown — the degraded regime that earned the
      // quarantine — so hot buffers drain even off nominally fast nodes,
      // while cold buffers wait for recovery or offline escalation.
      if (!item.tracked || item.ema_bytes <= 0.0) {
        log(epoch_index, node, destination, item.buffer,
            EvacVerdict::kSkippedCold, 0.0,
            item.tracked ? "no observed traffic" : "untracked buffer");
        continue;
      }
      const sim::BufferTraffic& traffic =
          classifier->states()[item.buffer.index].ema;
      const double benefit_per_epoch_ns =
          node_cost_ns(node, info.declared_bytes, traffic) *
              options_.quarantined_slowdown -
          node_cost_ns(destination, info.declared_bytes, traffic);
      if (benefit_per_epoch_ns <= 0.0) {
        log(epoch_index, node, destination, item.buffer,
            EvacVerdict::kSkippedCold, 0.0,
            "degraded source still cheaper than " +
                std::to_string(destination) + " for observed traffic");
        continue;
      }
      const double breakeven = cost_ns / benefit_per_epoch_ns;
      if (breakeven > options_.expected_future_epochs) {
        log(epoch_index, node, destination, item.buffer,
            EvacVerdict::kRejectedBreakeven, cost_ns,
            "breakeven " + support::format_fixed(breakeven, 1) +
                " epochs exceeds horizon " +
                support::format_fixed(options_.expected_future_epochs, 1));
        continue;
      }
    }

    // Budget gate: evacuation draws from the engine's per-epoch pool, so a
    // drain burst cannot blow past the paper's migration-avoidance knob. An
    // offline node's remaining buffers simply retry next epoch.
    if (engine_->budget_remaining(epoch_index) < info.declared_bytes) {
      log(epoch_index, node, destination, item.buffer,
          EvacVerdict::kDeferredBudget, cost_ns,
          "needs " + support::format_bytes(info.declared_bytes) +
              ", budget has " +
              support::format_bytes(engine_->budget_remaining(epoch_index)) +
              " left this epoch");
      continue;
    }
    // Arbiter gate: with per-tenant slices in force, a drain burst for one
    // tenant cannot starve the others' migration shares either — the drained
    // bytes come out of the owning tenant's slice, and a denial defers the
    // buffer to the next epoch exactly like the shared-pool gate above.
    if (!engine_->tenant_draw(epoch_index, item.buffer, info.declared_bytes)) {
      log(epoch_index, node, destination, item.buffer,
          EvacVerdict::kDeferredTenantShare, cost_ns,
          "owning tenant's slice cannot cover " +
              support::format_bytes(info.declared_bytes) + " this epoch");
      continue;
    }

    auto result = allocator_->migrate(item.buffer, destination);
    if (!result.ok()) {
      log(epoch_index, node, destination, item.buffer,
          EvacVerdict::kFailedMigrate, 0.0, result.error().to_string());
      continue;
    }
    paid_ns += *result;
    (void)engine_->consume_budget(epoch_index, info.declared_bytes);
    if (item.tracked && classifier != nullptr) {
      const sim::BufferTraffic& moved_traffic =
          classifier->states()[item.buffer.index].ema;
      sim::BufferTraffic& sink = assigned[destination];
      sink.reads += moved_traffic.reads;
      sink.writes += moved_traffic.writes;
      sink.llc_misses += moved_traffic.llc_misses;
      sink.memory_bytes += moved_traffic.memory_bytes;
      sink.random_accesses += moved_traffic.random_accesses;
      sink.random_misses += moved_traffic.random_misses;
    }
    log(epoch_index, node, destination, item.buffer, EvacVerdict::kMoved,
        *result,
        offline ? "urgent drain off offline node"
                : "drain off quarantined node");
  }
  return paid_ns;
}

bool Evacuator::drained(unsigned node) const {
  return allocator_->machine().live_buffers_on(node).empty();
}

std::string Evacuator::render_log() const {
  std::string out;
  for (const EvacDecision& decision : decisions_) {
    out += "epoch " + std::to_string(decision.epoch) + " " +
           evac_verdict_name(decision.verdict) + " " + decision.label +
           " (buffer " + std::to_string(decision.buffer.index) + ") node " +
           std::to_string(decision.from_node) + " -> " +
           std::to_string(decision.to_node) + " " +
           support::format_bytes(decision.bytes);
    if (decision.cost_ns > 0.0) {
      out += " cost " + support::format_fixed(decision.cost_ns / 1e6, 3) + " ms";
    }
    if (!decision.reason.empty()) out += " — " + decision.reason;
    out += "\n";
  }
  return out;
}

void attach_health(runtime::RuntimePolicy& policy, HealthMonitor& monitor,
                   Evacuator& evacuator) {
  policy.add_epoch_hook([&policy, &monitor, &evacuator](
                            std::uint64_t epoch_index, unsigned threads) {
    monitor.poll();
    double paid_ns = 0.0;
    for (unsigned node : monitor.nodes_needing_evacuation()) {
      paid_ns += evacuator.drain_epoch(epoch_index, node, monitor.state(node),
                                       threads, &policy.classifier());
    }
    return paid_ns;
  });
}

}  // namespace hetmem::health
