#include "hetmem/health/health.hpp"

namespace hetmem::health {

HealthMonitor::HealthMonitor(sim::SimMachine& machine,
                             attr::MemAttrRegistry& registry,
                             HealthOptions options)
    : machine_(&machine),
      registry_(&registry),
      options_(options),
      quarantine_(machine.topology().numa_nodes().size()),
      node_count_(machine.topology().numa_nodes().size()) {
  nodes_ = std::make_unique<NodeHealth[]>(node_count_);
  // Nodes that are already offline (or carry error history) at construction
  // are picked up by the first poll; start everything healthy so the
  // transition log narrates what the monitor actually observed.
  registry_->set_quarantine_list(&quarantine_);
}

HealthMonitor::~HealthMonitor() {
  // Uninstall so the registry never dereferences a dead list. This also
  // clears all quarantine effects — a destroyed monitor stops gating.
  registry_->set_quarantine_list(nullptr);
}

std::uint64_t HealthMonitor::error_count(const sim::NodeTelemetry& t) const {
  std::uint64_t errors = t.transient_faults + t.ecc_errors;
  if (options_.count_capacity_rejections) errors += t.capacity_rejections;
  if (options_.throttle_is_fault) errors += t.thermal_throttle_events;
  return errors;
}

void HealthMonitor::transition(unsigned node, NodeHealth& health,
                               HealthState to, std::string reason) {
  const HealthState from =
      static_cast<HealthState>(health.state.load(std::memory_order_relaxed));
  if (from == to) return;
  health.state.store(static_cast<std::uint8_t>(to), std::memory_order_release);
  switch (to) {
    case HealthState::kOffline:
      quarantine_.set(node, PlacementVerdict::kExclude);
      break;
    case HealthState::kQuarantined:
      quarantine_.set(node, PlacementVerdict::kDeprioritize);
      break;
    default:
      quarantine_.set(node, PlacementVerdict::kNormal);
      break;
  }
  // Ordering contract (quarantine.hpp): verdict store FIRST, then the
  // generation bump — readers that see the new generation see the verdict.
  registry_->invalidate_rankings();
  transitions_.push_back(
      HealthTransition{poll_count_, node, from, to, std::move(reason)});
}

std::size_t HealthMonitor::poll() {
  ++poll_count_;
  const std::size_t before = transitions_.size();
  for (unsigned node = 0; node < node_count_; ++node) {
    machine_->sample_node_faults(node);
    const sim::NodeTelemetry t = machine_->node_telemetry(node);
    NodeHealth& health = nodes_[node];
    const std::uint64_t errors = error_count(t);
    const std::uint64_t delta = errors - health.last_errors;
    health.last_errors = errors;
    const bool degraded_fault = options_.degraded_is_fault && t.degraded;
    const bool faulty = delta >= options_.suspect_errors || degraded_fault;
    const auto current = static_cast<HealthState>(
        health.state.load(std::memory_order_relaxed));

    if (!t.online) {
      if (current != HealthState::kOffline) {
        health.faulty_streak = 0;
        health.clean_streak = 0;
        transition(node, health, HealthState::kOffline,
                   "machine reports node offline");
      }
      continue;
    }

    if (current == HealthState::kOffline) {
      // The operator brought the node back: re-probate through quarantine,
      // never straight to healthy.
      health.faulty_streak = 0;
      health.clean_streak = 0;
      transition(node, health, HealthState::kQuarantined,
                 "node back online; entering probation");
      continue;
    }

    if (faulty) {
      health.clean_streak = 0;
      ++health.faulty_streak;
      const std::string evidence =
          degraded_fault && delta == 0
              ? "degraded regime active"
              : std::to_string(delta) + " error(s) this poll" +
                    (degraded_fault ? " + degraded regime" : "");
      if (delta >= options_.quarantine_errors &&
          current != HealthState::kQuarantined) {
        transition(node, health, HealthState::kQuarantined,
                   "error burst: " + evidence);
        continue;
      }
      switch (current) {
        case HealthState::kHealthy:
          transition(node, health, HealthState::kSuspect, evidence);
          break;
        case HealthState::kSuspect:
          if (health.faulty_streak >= options_.faulty_polls_to_quarantine) {
            transition(node, health, HealthState::kQuarantined,
                       "sustained faults: " +
                           std::to_string(health.faulty_streak) +
                           " consecutive faulty poll(s)");
          }
          break;
        default:
          break;  // already quarantined: stay until clean polls accumulate
      }
      continue;
    }

    // Clean poll: hysteresis steps the node DOWN one state per streak.
    health.faulty_streak = 0;
    if (current == HealthState::kHealthy) continue;
    ++health.clean_streak;
    if (health.clean_streak < options_.clean_polls_to_recover) continue;
    health.clean_streak = 0;
    const std::string reason = std::to_string(options_.clean_polls_to_recover) +
                               " clean poll(s)";
    if (current == HealthState::kQuarantined) {
      transition(node, health, HealthState::kSuspect,
                 reason + "; re-probation");
    } else {
      transition(node, health, HealthState::kHealthy, reason);
    }
  }
  return transitions_.size() - before;
}

HealthMonitor::NodeState HealthMonitor::node_state(unsigned node) const {
  NodeState out;
  if (node >= node_count_) return out;
  const NodeHealth& health = nodes_[node];
  out.state = static_cast<HealthState>(
      health.state.load(std::memory_order_acquire));
  out.last_errors = health.last_errors;
  out.faulty_streak = health.faulty_streak;
  out.clean_streak = health.clean_streak;
  return out;
}

void HealthMonitor::restore_state(std::uint64_t poll_count,
                                  const std::vector<NodeState>& nodes) {
  poll_count_ = poll_count;
  for (unsigned node = 0; node < node_count_ && node < nodes.size(); ++node) {
    NodeHealth& health = nodes_[node];
    health.state.store(static_cast<std::uint8_t>(nodes[node].state),
                       std::memory_order_release);
    health.last_errors = nodes[node].last_errors;
    health.faulty_streak = nodes[node].faulty_streak;
    health.clean_streak = nodes[node].clean_streak;
    switch (nodes[node].state) {
      case HealthState::kOffline:
        quarantine_.set(node, PlacementVerdict::kExclude);
        break;
      case HealthState::kQuarantined:
        quarantine_.set(node, PlacementVerdict::kDeprioritize);
        break;
      default:
        quarantine_.set(node, PlacementVerdict::kNormal);
        break;
    }
  }
  registry_->invalidate_rankings();
}

HealthState HealthMonitor::state(unsigned node) const {
  if (node >= node_count_) return HealthState::kHealthy;
  return static_cast<HealthState>(
      nodes_[node].state.load(std::memory_order_acquire));
}

std::vector<unsigned> HealthMonitor::nodes_needing_evacuation() const {
  std::vector<unsigned> nodes;
  for (unsigned node = 0; node < node_count_; ++node) {
    const HealthState current = state(node);
    if (current == HealthState::kQuarantined ||
        current == HealthState::kOffline) {
      nodes.push_back(node);
    }
  }
  return nodes;
}

std::string HealthMonitor::render_transition_log() const {
  std::string out;
  for (const HealthTransition& t : transitions_) {
    out += "poll " + std::to_string(t.poll) + " node " +
           std::to_string(t.node) + " " + health_state_name(t.from) + " -> " +
           health_state_name(t.to) + " — " + t.reason + "\n";
  }
  return out;
}

}  // namespace hetmem::health
