#include "hetmem/prof/profiler.hpp"

#include <algorithm>

#include "hetmem/support/str.hpp"
#include "hetmem/support/table.hpp"
#include "hetmem/support/units.hpp"

namespace hetmem::prof {

BoundnessSummary summarize(const sim::ExecutionContext& exec,
                           const ProfileOptions& options) {
  BoundnessSummary summary;
  const auto& nodes = exec.machine().topology().numa_nodes();

  double total_ns = 0.0;
  double stall_dram = 0.0;
  double stall_pmem = 0.0;
  double stall_hbm = 0.0;
  double bw_dram_ns = 0.0;
  double bw_pmem_ns = 0.0;
  double bw_hbm_ns = 0.0;

  for (const sim::PhaseResult& phase : exec.history()) {
    total_ns += phase.sim_ns;
    bool dram_saturated = false;
    bool pmem_saturated = false;
    bool hbm_saturated = false;
    for (std::size_t n = 0; n < phase.nodes.size(); ++n) {
      const sim::NodePhaseStats& stats = phase.nodes[n];
      const topo::MemoryKind kind = nodes[n]->memory_kind();
      switch (kind) {
        case topo::MemoryKind::kDRAM:
          stall_dram += stats.latency_stall_ns;
          dram_saturated |= stats.utilization >= options.bw_bound_utilization;
          break;
        case topo::MemoryKind::kNVDIMM:
          stall_pmem += stats.latency_stall_ns;
          pmem_saturated |= stats.utilization >= options.bw_bound_utilization;
          break;
        case topo::MemoryKind::kHBM:
          stall_hbm += stats.latency_stall_ns;
          hbm_saturated |= stats.utilization >= options.bw_bound_utilization;
          break;
        default:
          break;
      }
    }
    if (dram_saturated) bw_dram_ns += phase.sim_ns;
    if (pmem_saturated) bw_pmem_ns += phase.sim_ns;
    if (hbm_saturated) bw_hbm_ns += phase.sim_ns;
  }

  if (total_ns <= 0.0) return summary;
  // Stall percentages are per-thread "clockticks": total thread-time is
  // elapsed x thread count.
  const double thread_ns = total_ns * exec.thread_count();
  summary.dram_bound_pct = 100.0 * stall_dram / thread_ns;
  summary.pmem_bound_pct = 100.0 * stall_pmem / thread_ns;
  summary.hbm_bound_pct = 100.0 * stall_hbm / thread_ns;
  summary.dram_bw_bound_pct = 100.0 * bw_dram_ns / total_ns;
  summary.pmem_bw_bound_pct = 100.0 * bw_pmem_ns / total_ns;
  summary.hbm_bw_bound_pct = 100.0 * bw_hbm_ns / total_ns;
  return summary;
}

std::vector<BufferProfile> profile_buffers(const sim::ExecutionContext& exec,
                                           const ProfileOptions& options) {
  std::vector<sim::BufferTraffic> merged = exec.merged_buffer_traffic();
  const sim::SimMachine& machine = exec.machine();

  double total_memory_bytes = 0.0;
  for (const sim::BufferTraffic& bt : merged) total_memory_bytes += bt.memory_bytes;

  std::vector<BufferProfile> profiles;
  for (std::uint32_t index = 0; index < merged.size(); ++index) {
    const sim::BufferTraffic& bt = merged[index];
    if (bt.reads + bt.writes <= 0.0) continue;
    const sim::BufferInfo& info = machine.info(sim::BufferId{index});

    BufferProfile profile;
    profile.buffer = sim::BufferId{index};
    profile.label = info.label;
    profile.node = info.node;
    profile.declared_bytes = info.declared_bytes;
    profile.accesses = bt.reads + bt.writes;
    profile.llc_misses = bt.llc_misses;
    profile.memory_bytes = bt.memory_bytes;
    profile.random_fraction =
        profile.accesses > 0.0 ? bt.random_accesses / profile.accesses : 0.0;

    const double traffic_share =
        total_memory_bytes > 0.0 ? bt.memory_bytes / total_memory_bytes : 0.0;
    profile.sensitivity = classify_sensitivity(traffic_share, bt.llc_misses,
                                               bt.random_misses,
                                               options.classify);
    profiles.push_back(std::move(profile));
  }

  std::stable_sort(profiles.begin(), profiles.end(),
                   [](const BufferProfile& a, const BufferProfile& b) {
                     return a.memory_bytes > b.memory_bytes;
                   });
  return profiles;
}

std::string render_summary(const BoundnessSummary& summary) {
  using support::format_fixed;
  std::string out;
  auto row = [&](const char* name, double bound, double bw_bound) {
    out += std::string(name) + " Bound: " + format_fixed(bound, 1) +
           "% of clockticks" +
           (bound >= 15.0 ? "  [FLAG: latency issue]" : "") + "\n";
    out += std::string(name) + " Bandwidth Bound: " + format_fixed(bw_bound, 1) +
           "% of elapsed time" +
           (bw_bound >= 40.0 ? "  [FLAG: bandwidth issue]" : "") + "\n";
  };
  row("DRAM", summary.dram_bound_pct, summary.dram_bw_bound_pct);
  row("PMem", summary.pmem_bound_pct, summary.pmem_bw_bound_pct);
  row("HBM", summary.hbm_bound_pct, summary.hbm_bw_bound_pct);
  return out;
}

std::string render_hot_buffers(const std::vector<BufferProfile>& profiles,
                               std::size_t top_n) {
  support::TextTable table({"Memory Object", "Node", "Size", "Accesses",
                            "LLC Miss Count", "Memory Traffic", "Random",
                            "Sensitivity"});
  std::size_t shown = 0;
  for (const BufferProfile& profile : profiles) {
    if (shown++ >= top_n) break;
    table.add_row({profile.label, "L#" + std::to_string(profile.node),
                   support::format_bytes(profile.declared_bytes),
                   support::format_fixed(profile.accesses, 0),
                   support::format_fixed(profile.llc_misses, 0),
                   support::format_bytes(
                       static_cast<std::uint64_t>(profile.memory_bytes)),
                   support::format_fixed(100.0 * profile.random_fraction, 0) + "%",
                   sensitivity_name(profile.sensitivity)});
  }
  return table.render();
}

std::string render_timeline(const sim::ExecutionContext& exec,
                            std::size_t max_phases) {
  struct Sample {
    std::string name;
    double sim_ms = 0.0;
    double read_bw = 0.0;   // bytes/s across all nodes
    double write_bw = 0.0;
  };

  // Coalesce history into at most max_phases samples (merging neighbors
  // keeps long runs readable, like a zoomed-out VTune track).
  std::vector<Sample> samples;
  const auto& history = exec.history();
  const std::size_t stride =
      history.empty() ? 1 : (history.size() + max_phases - 1) / max_phases;
  for (std::size_t start = 0; start < history.size(); start += stride) {
    Sample sample;
    double read_bytes = 0.0;
    double write_bytes = 0.0;
    double ns = 0.0;
    for (std::size_t i = start;
         i < std::min(history.size(), start + stride); ++i) {
      const sim::PhaseResult& phase = history[i];
      if (sample.name.empty()) sample.name = phase.name;
      ns += phase.sim_ns;
      for (const sim::NodePhaseStats& stats : phase.nodes) {
        read_bytes += stats.read_bytes;
        write_bytes += stats.write_bytes;
      }
    }
    if (ns <= 0.0) continue;
    sample.sim_ms = ns / 1e6;
    sample.read_bw = read_bytes / (ns / 1e9);
    sample.write_bw = write_bytes / (ns / 1e9);
    samples.push_back(std::move(sample));
  }
  if (samples.empty()) return "(no phases executed)\n";

  double peak = 1.0;
  for (const Sample& sample : samples) {
    peak = std::max({peak, sample.read_bw, sample.write_bw});
  }

  std::string out =
      "bandwidth over time ('#' read, '=' write; full bar = " +
      support::format_bandwidth(peak) + ")\n";
  constexpr std::size_t kBarWidth = 40;
  for (const Sample& sample : samples) {
    const auto read_cells =
        static_cast<std::size_t>(sample.read_bw / peak * kBarWidth);
    const auto write_cells =
        static_cast<std::size_t>(sample.write_bw / peak * kBarWidth);
    out += "  " + support::pad_right(sample.name, 14) +
           support::pad_left(support::format_fixed(sample.sim_ms, 2), 9) +
           " ms |" + std::string(read_cells, '#') +
           std::string(kBarWidth - read_cells, ' ') + "|" +
           std::string(write_cells, '=') +
           std::string(kBarWidth - write_cells, ' ') + "|\n";
  }
  return out;
}

}  // namespace hetmem::prof
