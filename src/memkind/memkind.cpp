#include "hetmem/memkind/memkind.hpp"

#include <algorithm>

namespace hetmem::memkind {

using support::Errc;
using support::make_error;
using support::Result;
using support::Status;

const char* kind_name(Kind kind) {
  switch (kind) {
    case Kind::kDefault: return "MEMKIND_DEFAULT";
    case Kind::kHbw: return "MEMKIND_HBW";
    case Kind::kHbwPreferred: return "MEMKIND_HBW_PREFERRED";
    case Kind::kHbwAll: return "MEMKIND_HBW_ALL";
    case Kind::kDax: return "MEMKIND_DAX_KMEM";
    case Kind::kDaxPreferred: return "MEMKIND_DAX_KMEM_PREFERRED";
    case Kind::kHighestCapacity: return "MEMKIND_HIGHEST_CAPACITY";
  }
  return "?";
}

MemkindShim::MemkindShim(sim::SimMachine& machine) : machine_(&machine) {}

const topo::Object* MemkindShim::find_node(topo::MemoryKind want,
                                           const support::Bitmap& initiator,
                                           bool local_only,
                                           std::uint64_t bytes) const {
  const topo::Topology& topology = machine_->topology();
  const topo::Object* fallback = nullptr;
  for (const topo::Object* node : topology.numa_nodes()) {
    if (node->memory_kind() != want) continue;
    if (machine_->available_bytes(node->logical_index()) < bytes) continue;
    const bool local = node->cpuset().intersects(initiator);
    if (local) return node;
    if (!local_only && fallback == nullptr) fallback = node;
  }
  return fallback;
}

bool MemkindShim::available(Kind kind) const {
  const topo::Topology& topology = machine_->topology();
  auto has_kind = [&](topo::MemoryKind want) {
    return std::any_of(topology.numa_nodes().begin(), topology.numa_nodes().end(),
                       [&](const topo::Object* node) {
                         return node->memory_kind() == want;
                       });
  };
  switch (kind) {
    case Kind::kDefault:
    case Kind::kHighestCapacity:
      return true;
    case Kind::kHbw:
    case Kind::kHbwPreferred:
    case Kind::kHbwAll:
      return has_kind(topo::MemoryKind::kHBM);
    case Kind::kDax:
    case Kind::kDaxPreferred:
      return has_kind(topo::MemoryKind::kNVDIMM);
  }
  return false;
}

Result<sim::BufferId> MemkindShim::malloc(std::uint64_t bytes, Kind kind,
                                          const support::Bitmap& initiator,
                                          std::string label,
                                          std::size_t backing_bytes) {
  const topo::Topology& topology = machine_->topology();

  auto default_node = [&]() -> const topo::Object* {
    // The OS default: the lowest-index node local to the caller with room.
    for (const topo::Object* node : topology.local_numa_nodes(
             initiator, topo::LocalityFlags::kIntersecting)) {
      if (machine_->available_bytes(node->logical_index()) >= bytes) return node;
    }
    return nullptr;
  };

  const topo::Object* target = nullptr;
  switch (kind) {
    case Kind::kDefault:
      target = default_node();
      break;
    case Kind::kHbw:
      target = find_node(topo::MemoryKind::kHBM, initiator, /*local_only=*/true,
                         bytes);
      break;
    case Kind::kHbwAll:
      target = find_node(topo::MemoryKind::kHBM, initiator, /*local_only=*/false,
                         bytes);
      break;
    case Kind::kHbwPreferred:
      target = find_node(topo::MemoryKind::kHBM, initiator, true, bytes);
      if (target == nullptr) target = default_node();
      break;
    case Kind::kDax:
      target = find_node(topo::MemoryKind::kNVDIMM, initiator, true, bytes);
      break;
    case Kind::kDaxPreferred:
      target = find_node(topo::MemoryKind::kNVDIMM, initiator, true, bytes);
      if (target == nullptr) target = default_node();
      break;
    case Kind::kHighestCapacity: {
      std::uint64_t best = 0;
      for (const topo::Object* node : topology.numa_nodes()) {
        if (machine_->available_bytes(node->logical_index()) >= bytes &&
            node->capacity_bytes() > best) {
          best = node->capacity_bytes();
          target = node;
        }
      }
      break;
    }
  }

  if (target == nullptr) {
    // memkind_malloc returns NULL here; kUnsupported distinguishes "this
    // machine has no such technology" from plain capacity exhaustion.
    const bool technology_missing = !available(kind);
    return make_error(technology_missing ? Errc::kUnsupported
                                         : Errc::kOutOfCapacity,
                      std::string(kind_name(kind)) +
                          (technology_missing ? ": no such memory on this machine"
                                              : ": out of capacity"));
  }
  return machine_->allocate(bytes, target->logical_index(), std::move(label),
                            backing_bytes);
}

Status MemkindShim::free(sim::BufferId buffer) { return machine_->free(buffer); }

}  // namespace hetmem::memkind
