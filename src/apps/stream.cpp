#include "hetmem/apps/stream.hpp"

namespace hetmem::apps {

using support::Errc;
using support::make_error;
using support::Result;

StreamRunner::StreamRunner(sim::SimMachine& machine, StreamConfig config)
    : machine_(&machine), config_(config) {}

StreamRunner::~StreamRunner() {
  for (sim::BufferId id : owned_) (void)machine_->free(id);
}

Result<std::unique_ptr<StreamRunner>> StreamRunner::create(
    sim::SimMachine& machine, alloc::HeterogeneousAllocator* allocator,
    const support::Bitmap& initiator, const StreamConfig& config,
    const BufferPlacement& placement) {
  std::unique_ptr<StreamRunner> runner(new StreamRunner(machine, config));

  const std::uint64_t declared_each = config.declared_total_bytes / 3;
  const std::size_t backing_each = config.backing_elements * sizeof(double);

  struct Request {
    const char* label;
    sim::BufferId* out;
  };
  const Request requests[] = {
      {"stream.a", &runner->a_id_},
      {"stream.b", &runner->b_id_},
      {"stream.c", &runner->c_id_},
  };
  for (const Request& request : requests) {
    if (placement.forced_node.has_value()) {
      auto buffer = machine.allocate(declared_each, *placement.forced_node,
                                     request.label, backing_each);
      if (!buffer.ok()) return buffer.error();
      *request.out = *buffer;
    } else {
      if (allocator == nullptr) {
        return make_error(Errc::kInvalidArgument,
                          "attribute placement requires an allocator");
      }
      alloc::AllocRequest alloc_request;
      alloc_request.bytes = declared_each;
      alloc_request.attribute = placement.attribute;
      alloc_request.initiator = initiator;
      alloc_request.policy = placement.policy;
      alloc_request.backing_bytes = backing_each;
      alloc_request.label = request.label;
      alloc_request.attribute_rescue = placement.attribute_rescue;
      auto allocation = allocator->mem_alloc(alloc_request);
      if (!allocation.ok()) return allocation.error();
      *request.out = allocation->buffer;
      runner->fell_back_ |= allocation->fell_back;
    }
    runner->owned_.push_back(*request.out);
  }

  runner->exec_ = std::make_unique<sim::ExecutionContext>(machine, initiator,
                                                          config.threads);
  runner->a_ = std::make_unique<sim::Array<double>>(machine, runner->a_id_);
  runner->b_ = std::make_unique<sim::Array<double>>(machine, runner->b_id_);
  runner->c_ = std::make_unique<sim::Array<double>>(machine, runner->c_id_);

  // STREAM's initialization pass (untimed here).
  auto b_span = runner->b_->span();
  auto c_span = runner->c_->span();
  for (std::size_t i = 0; i < b_span.size(); ++i) {
    b_span[i] = 1.0 + static_cast<double>(i % 7);
    c_span[i] = 2.0 + static_cast<double>(i % 5);
  }
  return runner;
}

void StreamRunner::refresh_arrays() {
  a_->refresh_model();
  b_->refresh_model();
  c_->refresh_model();
}

Result<StreamResult> StreamRunner::run_triad() {
  const std::size_t n_backing = a_->size();
  const std::uint64_t declared_each = config_.declared_total_bytes / 3;
  constexpr double kScalar = 3.0;

  StreamResult result;
  result.node_a = machine_->info(a_id_).node;
  result.node_b = machine_->info(b_id_).node;
  result.node_c = machine_->info(c_id_).node;
  result.fell_back = fell_back_;

  const double clock_before = exec_->clock_ns();
  for (unsigned iter = 0; iter < config_.iterations; ++iter) {
    exec_->run_phase(
        "triad", config_.threads,
        [&](sim::ThreadCtx& ctx, unsigned thread, std::size_t begin,
            std::size_t end) {
          // Real computation on the backing slice...
          const std::size_t chunk = n_backing / config_.threads;
          const std::size_t lo = thread * chunk;
          const std::size_t hi =
              thread + 1 == config_.threads ? n_backing : lo + chunk;
          auto a_span = a_->span();
          auto b_span = b_->span();
          auto c_span = c_->span();
          for (std::size_t i = lo; i < hi; ++i) {
            a_span[i] = b_span[i] + kScalar * c_span[i];
          }
          // ...and traffic reported at declared scale: each simulated thread
          // streams its share of the declared arrays once per iteration.
          const double share = static_cast<double>(declared_each) /
                               config_.threads *
                               static_cast<double>(end - begin);
          b_->record_bulk_read(ctx, share);
          c_->record_bulk_read(ctx, share);
          a_->record_bulk_write(ctx, share);
        });
    // Fork/join + barrier cost of the kernel launch: serialized with the
    // streaming phase (it dilutes the reported rate for small arrays, the
    // Table IIIb 85.05-vs-89.90 effect).
    if (config_.launch_overhead_ns > 0.0) {
      exec_->run_phase("barrier", config_.threads,
                       [&](sim::ThreadCtx& ctx, unsigned, std::size_t begin,
                           std::size_t end) {
                         if (begin < end) {
                           ctx.add_compute_ns(config_.launch_overhead_ns);
                         }
                       });
    }
  }
  const double elapsed_ns = exec_->clock_ns() - clock_before;
  if (elapsed_ns <= 0.0) {
    return make_error(Errc::kInternal, "zero elapsed simulated time");
  }

  const double total_bytes =
      3.0 * static_cast<double>(declared_each) * config_.iterations;
  result.triad_bytes_per_second = total_bytes / (elapsed_ns / 1e9);

  double checksum = 0.0;
  for (double value : a_->span()) checksum += value;
  result.checksum = checksum;
  return result;
}

}  // namespace hetmem::apps
