#include "hetmem/apps/rmat.hpp"

#include "hetmem/support/rng.hpp"

namespace hetmem::apps {

std::vector<Edge> generate_rmat(const RmatParams& params) {
  const std::uint64_t n = std::uint64_t{1} << params.scale;
  const std::uint64_t m = n * params.edgefactor;
  support::Xoshiro256 rng(params.seed);

  // Vertex scrambling: fixed random permutation via multiplicative hashing
  // (Graph500 permutes vertex labels so that id 0 is not the densest hub).
  const std::uint64_t mask = n - 1;
  auto scramble = [&](std::uint64_t x) {
    x = (x * 0x9e3779b97f4a7c15ull + 0x2545f4914f6cdd1dull);
    return static_cast<std::uint32_t>((x >> 20) & mask);
  };

  std::vector<Edge> edges;
  edges.reserve(m);
  for (std::uint64_t e = 0; e < m; ++e) {
    std::uint64_t u = 0;
    std::uint64_t v = 0;
    for (unsigned depth = 0; depth < params.scale; ++depth) {
      const double r = rng.next_double();
      unsigned quadrant;
      if (r < params.a) {
        quadrant = 0;
      } else if (r < params.a + params.b) {
        quadrant = 1;
      } else if (r < params.a + params.b + params.c) {
        quadrant = 2;
      } else {
        quadrant = 3;
      }
      u = (u << 1) | (quadrant >> 1);
      v = (v << 1) | (quadrant & 1);
    }
    edges.push_back(Edge{scramble(u), scramble(v)});
  }
  return edges;
}

}  // namespace hetmem::apps
