#include "hetmem/apps/kvcache.hpp"

#include <algorithm>
#include <string>

#include "hetmem/support/rng.hpp"

namespace hetmem::apps {

using support::Errc;
using support::make_error;
using support::Result;

KvCachePlacement KvCachePlacement::all_on_node(unsigned node) {
  KvCachePlacement placement;
  placement.buffers.forced_node = node;
  return placement;
}

KvCacheRunner::KvCacheRunner(sim::SimMachine& machine, KvCacheConfig config)
    : machine_(&machine), config_(config) {
  config_.segments = std::max(1u, config_.segments);
  config_.shift_every_phases = std::max(1u, config_.shift_every_phases);
  config_.threads = std::max(1u, config_.threads);
  config_.backing_lookups_per_thread =
      std::max<std::size_t>(1, config_.backing_lookups_per_thread);
}

KvCacheRunner::~KvCacheRunner() {
  for (sim::BufferId id : owned_) (void)machine_->free(id);
}

Result<std::unique_ptr<KvCacheRunner>> KvCacheRunner::create(
    sim::SimMachine& machine, alloc::HeterogeneousAllocator* allocator,
    const support::Bitmap& initiator, const KvCacheConfig& config,
    const KvCachePlacement& placement) {
  std::unique_ptr<KvCacheRunner> runner(new KvCacheRunner(machine, config));
  const KvCacheConfig& cfg = runner->config_;

  const std::size_t total_keys =
      cfg.backing_keys_per_segment * cfg.segments;
  const std::uint64_t segment_declared =
      std::max<std::uint64_t>(1, cfg.declared_value_bytes / cfg.segments);

  struct Request {
    std::string label;
    std::uint64_t declared;
    std::size_t backing;
    sim::BufferId* out;
  };
  std::vector<Request> requests;
  requests.push_back({"kv.dir", cfg.declared_directory_bytes,
                      total_keys * sizeof(std::uint64_t), &runner->dir_id_});
  requests.push_back({"kv.log", cfg.declared_log_bytes,
                      (64u << 10), &runner->log_id_});
  runner->segment_ids_.resize(cfg.segments);
  for (unsigned segment = 0; segment < cfg.segments; ++segment) {
    requests.push_back({"kv.seg" + std::to_string(segment), segment_declared,
                        cfg.backing_keys_per_segment * sizeof(double),
                        &runner->segment_ids_[segment]});
  }

  for (const Request& request : requests) {
    if (placement.buffers.forced_node.has_value()) {
      auto buffer =
          machine.allocate(request.declared, *placement.buffers.forced_node,
                           request.label, request.backing);
      if (!buffer.ok()) return buffer.error();
      *request.out = *buffer;
    } else {
      if (allocator == nullptr) {
        return make_error(Errc::kInvalidArgument,
                          "attribute placement requires an allocator");
      }
      alloc::AllocRequest alloc_request;
      alloc_request.bytes = request.declared;
      alloc_request.attribute = placement.buffers.attribute;
      alloc_request.initiator = initiator;
      alloc_request.policy = placement.buffers.policy;
      alloc_request.backing_bytes = request.backing;
      alloc_request.label = request.label;
      alloc_request.attribute_rescue = placement.buffers.attribute_rescue;
      auto allocation = allocator->mem_alloc(alloc_request);
      if (!allocation.ok()) return allocation.error();
      *request.out = allocation->buffer;
    }
    runner->owned_.push_back(*request.out);
  }

  runner->exec_ = std::make_unique<sim::ExecutionContext>(machine, initiator,
                                                          cfg.threads);
  runner->exec_->set_mlp(cfg.mlp);

  runner->directory_ =
      std::make_unique<sim::Array<std::uint64_t>>(machine, runner->dir_id_);
  runner->log_ = std::make_unique<sim::Array<double>>(machine, runner->log_id_);
  runner->segments_.resize(cfg.segments);
  for (unsigned segment = 0; segment < cfg.segments; ++segment) {
    runner->segments_[segment] = std::make_unique<sim::Array<double>>(
        machine, runner->segment_ids_[segment]);
  }

  // Untimed construction: identity directory, deterministic values.
  for (std::size_t key = 0; key < total_keys; ++key) {
    runner->directory_->span()[key] = key;
  }
  for (unsigned segment = 0; segment < cfg.segments; ++segment) {
    std::span<double> values = runner->segments_[segment]->span();
    for (std::size_t i = 0; i < values.size(); ++i) {
      values[i] = 1.0 + static_cast<double>((segment * 31 + i) % 17);
    }
  }

  runner->zipf_ = support::ZipfDistribution(total_keys, cfg.zipf_s);
  return runner;
}

void KvCacheRunner::refresh_arrays() {
  directory_->refresh_model();
  log_->refresh_model();
  for (auto& segment : segments_) segment->refresh_model();
}

Result<KvCacheResult> KvCacheRunner::run() {
  return run_phases(config_.phases);
}

Result<KvCacheResult> KvCacheRunner::run_phases(unsigned count) {
  const std::size_t keys_per_segment = config_.backing_keys_per_segment;
  const std::size_t total_keys = keys_per_segment * config_.segments;
  const double probes_per_thread =
      config_.lookups_per_phase / config_.threads;
  const double backing_probes =
      static_cast<double>(config_.backing_lookups_per_thread);

  KvCacheResult result;
  std::vector<double> partial(config_.threads, 0.0);
  const double clock_before = exec_->clock_ns();

  for (unsigned local = 0; local < count; ++local) {
    const unsigned phase = phase_cursor_;
    const unsigned hot = hot_segment(phase);
    std::fill(partial.begin(), partial.end(), 0.0);
    const double phase_clock_before = exec_->clock_ns();
    exec_->run_phase(
        "kv.lookup", config_.threads,
        [&](sim::ThreadCtx& ctx, unsigned thread, std::size_t begin,
            std::size_t end) {
          if (begin >= end) return;
          // Seeded per (phase, thread): traffic replays bit-identically and
          // is independent of placement, so checksums survive migrations.
          support::SplitMix64 mix(config_.seed ^
                                  (static_cast<std::uint64_t>(phase) << 32) ^
                                  thread);
          support::Xoshiro256 rng(mix.next());
          std::vector<std::size_t> hits(config_.segments, 0);
          double acc = 0.0;
          for (std::size_t probe = 0;
               probe < config_.backing_lookups_per_thread; ++probe) {
            // Zipf rank -> key, rotated so the head ranks land on the hot
            // segment this phase.
            const std::size_t rank = zipf_.sample(rng);
            const std::size_t key =
                (rank + hot * keys_per_segment) % total_keys;
            const std::size_t slot =
                static_cast<std::size_t>(directory_->span()[key]);
            const std::size_t segment = slot / keys_per_segment;
            acc += segments_[segment]->span()[slot % keys_per_segment];
            ++hits[segment];
          }
          partial[thread] = acc;
          // Declared-scale traffic: directory probes (LLC-resident, ~2%
          // misses), value gathers split by observed segment mix, streamed
          // log appends, and hash/probe compute.
          directory_->record_bulk_random_reads(ctx, probes_per_thread);
          for (unsigned segment = 0; segment < config_.segments; ++segment) {
            if (hits[segment] == 0) continue;
            const double share =
                static_cast<double>(hits[segment]) / backing_probes;
            segments_[segment]->record_bulk_random_reads(
                ctx, probes_per_thread * share);
          }
          log_->record_bulk_write(
              ctx, config_.log_bytes_per_phase / config_.threads);
          ctx.add_compute_ns(probes_per_thread * config_.compute_ns_per_lookup);
        });
    for (double value : partial) result.checksum += value;
    // Clock delta, not PhaseResult::sim_ns: an attached policy charges its
    // migration cost between phases, and recovery gates must see the run
    // paying for its own management.
    result.phase_ns.push_back(exec_->clock_ns() - phase_clock_before);
    result.hot_segments.push_back(hot);
    ++phase_cursor_;
  }

  const double elapsed_ns = exec_->clock_ns() - clock_before;
  if (elapsed_ns <= 0.0) {
    return make_error(Errc::kInternal, "zero elapsed simulated time");
  }
  result.seconds = elapsed_ns / 1e9;
  result.lookups_per_second =
      config_.lookups_per_phase * count / result.seconds;
  return result;
}

}  // namespace hetmem::apps
