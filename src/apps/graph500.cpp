#include "hetmem/apps/graph500.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <span>

#include "hetmem/apps/rmat.hpp"
#include "hetmem/support/rng.hpp"

namespace hetmem::apps {

using support::Errc;
using support::make_error;
using support::Result;
using support::Status;

namespace {
constexpr std::uint32_t kUnvisited = UINT32_MAX;
}

std::uint64_t graph500_declared_bytes(unsigned scale, unsigned edgefactor) {
  const std::uint64_t n = std::uint64_t{1} << scale;
  return n * edgefactor * 2ull * sizeof(std::uint32_t);
}

Graph500Placement Graph500Placement::all_on_node(unsigned node) {
  Graph500Placement placement;
  placement.graph.forced_node = node;
  placement.parents.forced_node = node;
  placement.frontier.forced_node = node;
  return placement;
}

Graph500Placement Graph500Placement::by_attribute(attr::AttrId attribute) {
  Graph500Placement placement;
  placement.graph.attribute = attribute;
  placement.parents.attribute = attribute;
  placement.frontier.attribute = attribute;
  return placement;
}

Graph500Runner::Graph500Runner(sim::SimMachine& machine, Graph500Config config)
    : machine_(&machine), config_(config) {}

Graph500Runner::~Graph500Runner() {
  for (sim::BufferId id : owned_) (void)machine_->free(id);
}

Result<std::unique_ptr<Graph500Runner>> Graph500Runner::create(
    sim::SimMachine& machine, alloc::HeterogeneousAllocator* allocator,
    const support::Bitmap& initiator, const Graph500Config& config,
    const Graph500Placement& placement) {
  if (config.scale_backing > 24) {
    return make_error(Errc::kInvalidArgument,
                      "backing scale > 24 would need >2 GiB of host RAM");
  }
  std::unique_ptr<Graph500Runner> runner(new Graph500Runner(machine, config));

  RmatParams rmat;
  rmat.scale = config.scale_backing;
  rmat.edgefactor = config.edgefactor;
  rmat.seed = config.seed;
  runner->graph_ = build_csr(generate_rmat(rmat),
                             static_cast<std::uint32_t>(1u << config.scale_backing));

  if (Status status =
          runner->allocate_buffers(allocator, initiator, placement);
      !status.ok()) {
    return status.error();
  }

  runner->exec_ = std::make_unique<sim::ExecutionContext>(machine, initiator,
                                                          config.threads);
  runner->exec_->set_mlp(config.mlp);

  // Materialize the CSR into the simulated buffers (untimed construction).
  runner->offsets_ =
      std::make_unique<sim::Array<std::uint64_t>>(machine, runner->offsets_id_);
  runner->targets_ =
      std::make_unique<sim::Array<std::uint32_t>>(machine, runner->targets_id_);
  runner->parents_ =
      std::make_unique<sim::Array<std::uint32_t>>(machine, runner->parents_id_);
  runner->frontier_ =
      std::make_unique<sim::Array<std::uint32_t>>(machine, runner->frontier_id_);
  runner->visited_ =
      std::make_unique<sim::Array<std::uint64_t>>(machine, runner->visited_id_);

  const CsrGraph& graph = runner->graph_;
  std::copy(graph.offsets.begin(), graph.offsets.end(),
            runner->offsets_->span().begin());
  std::copy(graph.targets.begin(), graph.targets.end(),
            runner->targets_->span().begin());
  return runner;
}

Status Graph500Runner::allocate_buffers(alloc::HeterogeneousAllocator* allocator,
                                        const support::Bitmap& initiator,
                                        const Graph500Placement& placement) {
  const std::uint64_t n_declared = std::uint64_t{1} << config_.scale_declared;
  const std::uint32_t n_backing = graph_.num_vertices;

  struct Request {
    const char* label;
    std::uint64_t declared;
    std::size_t backing;
    const BufferPlacement* placement;
    sim::BufferId* out;
  };
  const Request requests[] = {
      {"g500.offsets", (n_declared + 1) * sizeof(std::uint64_t),
       (static_cast<std::size_t>(n_backing) + 1) * sizeof(std::uint64_t),
       &placement.graph, &offsets_id_},
      {"g500.targets", graph500_declared_bytes(config_.scale_declared,
                                               config_.edgefactor),
       graph_.targets.size() * sizeof(std::uint32_t), &placement.graph,
       &targets_id_},
      {"g500.parents", n_declared * sizeof(std::uint32_t),
       static_cast<std::size_t>(n_backing) * sizeof(std::uint32_t),
       &placement.parents, &parents_id_},
      {"g500.frontier", 2 * n_declared * sizeof(std::uint32_t),
       2 * static_cast<std::size_t>(n_backing) * sizeof(std::uint32_t),
       &placement.frontier, &frontier_id_},
      {"g500.visited", n_declared / 8 + 8,
       (static_cast<std::size_t>(n_backing) / 64 + 1) * sizeof(std::uint64_t),
       &placement.parents, &visited_id_},
  };

  for (const Request& request : requests) {
    if (request.placement->forced_node.has_value()) {
      auto buffer = machine_->allocate(request.declared,
                                       *request.placement->forced_node,
                                       request.label, request.backing);
      if (!buffer.ok()) return buffer.error();
      *request.out = *buffer;
    } else {
      if (allocator == nullptr) {
        return make_error(Errc::kInvalidArgument,
                          "attribute placement requires an allocator");
      }
      alloc::AllocRequest alloc_request;
      alloc_request.bytes = request.declared;
      alloc_request.attribute = request.placement->attribute;
      alloc_request.initiator = initiator;
      alloc_request.policy = request.placement->policy;
      alloc_request.backing_bytes = request.backing;
      alloc_request.label = request.label;
      alloc_request.attribute_rescue = request.placement->attribute_rescue;
      auto allocation = allocator->mem_alloc(alloc_request);
      if (!allocation.ok()) return allocation.error();
      *request.out = allocation->buffer;
    }
    owned_.push_back(*request.out);
  }
  return {};
}

unsigned Graph500Runner::node_of_graph() const {
  return machine_->info(targets_id_).node;
}
unsigned Graph500Runner::node_of_parents() const {
  return machine_->info(parents_id_).node;
}
std::uint64_t Graph500Runner::declared_graph_bytes() const {
  return graph500_declared_bytes(config_.scale_declared, config_.edgefactor);
}

void Graph500Runner::refresh_arrays() {
  offsets_->refresh_model();
  targets_->refresh_model();
  parents_->refresh_model();
  frontier_->refresh_model();
  visited_->refresh_model();
}

Result<std::pair<double, std::uint64_t>> Graph500Runner::bfs_from(
    std::uint32_t root) {
  const CsrGraph& graph = graph_;
  if (root >= graph.num_vertices) {
    return make_error(Errc::kInvalidArgument, "root out of range");
  }
  last_root_ = root;

  std::span<std::uint32_t> parents = parents_->span();
  std::span<std::uint32_t> frontier = frontier_->span();
  std::span<std::uint64_t> visited = visited_->span();
  const std::size_t n = graph.num_vertices;
  std::fill(parents.begin(), parents.end(), kUnvisited);
  std::fill(visited.begin(), visited.end(), 0);
  parents[root] = root;
  visited[root / 64] |= std::uint64_t{1} << (root % 64);

  // Current frontier occupies [0, n), next frontier [n, 2n).
  frontier[0] = root;
  std::size_t current_size = 1;
  std::atomic<std::uint32_t> next_size{0};

  const double clock_before = exec_->clock_ns();
  const double line_elems = 64.0 / sizeof(std::uint32_t);
  const unsigned stride = exec_->thread_count();

  // Frontier membership bitmap for bottom-up sweeps (host scratch; its
  // traffic is charged to the visited buffer, which has the same footprint).
  std::vector<std::uint64_t> member;

  while (current_size > 0) {
    next_size.store(0, std::memory_order_relaxed);
    const bool bottom_up =
        config_.direction_beta > 0 &&
        current_size > n / config_.direction_beta;

    if (!bottom_up) {
      // --- top-down: expand the frontier, claim via the visited bitmap.
      // Strided frontier split: RMAT hubs are discovered together, so
      // contiguous chunks would give one rank most of the heavy vertices
      // (real Graph500 distributes vertices round-robin across ranks too).
      exec_->run_phase(
          "bfs.topdown", stride,
          [&](sim::ThreadCtx& ctx, unsigned thread, std::size_t, std::size_t) {
            for (std::size_t i = thread; i < current_size; i += stride) {
              const std::uint32_t u = frontier_->load_seq(ctx, i);
              // One dependent lookup covers offsets[u] and offsets[u+1]
              // (adjacent, same or neighboring line).
              const std::uint64_t lo = offsets_->load_rand(ctx, u);
              const std::uint64_t hi = offsets_->span()[u + 1];
              const auto degree = static_cast<std::uint32_t>(hi - lo);
              if (degree == 0) continue;
              ctx.add_compute_ns(config_.compute_ns_per_edge * degree);

              // Adjacency scan: short runs at random positions — one
              // dependent access per touched cache line.
              targets_->record_bulk_random_reads(
                  ctx, std::max(1.0, degree / line_elems));

              std::uint32_t claimed = 0;
              for (std::uint64_t j = lo; j < hi; ++j) {
                const std::uint32_t v = targets_->span()[j];
                std::atomic_ref<std::uint64_t> word(visited[v / 64]);
                const std::uint64_t bit = std::uint64_t{1} << (v % 64);
                if ((word.load(std::memory_order_relaxed) & bit) != 0) continue;
                if ((word.fetch_or(bit, std::memory_order_relaxed) & bit) == 0) {
                  // Won the claim: record the parent and enqueue.
                  std::atomic_ref<std::uint32_t> slot(parents[v]);
                  slot.store(u, std::memory_order_relaxed);
                  const std::uint32_t pos =
                      next_size.fetch_add(1, std::memory_order_relaxed);
                  frontier_->store_seq(ctx, n + pos, v);
                  ++claimed;
                }
              }
              // Membership checks hit the visited bitmap (one dependent
              // read per edge; the bitmap is n/8 bytes and mostly
              // LLC-resident at moderate scales); only claims touch the
              // big parents array.
              visited_->record_bulk_random_reads(ctx, degree);
              if (claimed > 0) {
                visited_->record_bulk_random_writes(ctx, claimed);
                parents_->record_bulk_random_writes(ctx, claimed);
              }
            }
          });
    } else {
      // --- bottom-up (Beamer): every unvisited vertex scans its own
      // neighbors for one already in the frontier — no contended claims,
      // early exit on the first hit.
      member.assign(n / 64 + 1, 0);
      for (std::size_t i = 0; i < current_size; ++i) {
        const std::uint32_t u = frontier[i];
        member[u / 64] |= std::uint64_t{1} << (u % 64);
      }
      exec_->run_phase(
          "bfs.bottomup", n,
          [&](sim::ThreadCtx& ctx, unsigned, std::size_t begin,
              std::size_t end) {
            if (begin >= end) return;
            // Sequential sweep of the visited bitmap for this slice.
            visited_->record_bulk_read(
                ctx, static_cast<double>(end - begin) / 8.0);
            for (std::size_t v = begin; v < end; ++v) {
              if ((visited[v / 64] >> (v % 64)) & 1u) continue;
              const std::uint64_t lo = offsets_->load_rand(ctx, v);
              const std::uint64_t hi = offsets_->span()[v + 1];
              std::uint32_t scanned = 0;
              bool found = false;
              std::uint32_t parent = 0;
              for (std::uint64_t j = lo; j < hi; ++j) {
                const std::uint32_t u = targets_->span()[j];
                ++scanned;
                if ((member[u / 64] >> (u % 64)) & 1u) {
                  found = true;
                  parent = u;
                  break;
                }
              }
              if (scanned > 0) {
                ctx.add_compute_ns(config_.compute_ns_per_edge * scanned);
                targets_->record_bulk_random_reads(
                    ctx, std::max(1.0, scanned / line_elems));
                // Frontier-membership probes: bitmap-resident checks,
                // charged at the visited buffer's footprint.
                visited_->record_bulk_random_reads(ctx, scanned);
              }
              if (found) {
                std::atomic_ref<std::uint64_t> word(visited[v / 64]);
                word.fetch_or(std::uint64_t{1} << (v % 64),
                              std::memory_order_relaxed);
                parents[v] = static_cast<std::uint32_t>(parent);
                const std::uint32_t pos =
                    next_size.fetch_add(1, std::memory_order_relaxed);
                frontier_->store_seq(ctx, n + pos,
                                     static_cast<std::uint32_t>(v));
                parents_->record_bulk_random_writes(ctx, 1.0);
              }
            }
          });
    }

    // Swap frontiers: copy next half down (untimed bookkeeping; the queue
    // traffic itself was recorded above).
    const std::uint32_t produced = next_size.load(std::memory_order_relaxed);
    std::copy(frontier.begin() + static_cast<std::ptrdiff_t>(n),
              frontier.begin() + static_cast<std::ptrdiff_t>(n) + produced,
              frontier.begin());
    current_size = produced;
  }

  const double elapsed_ns = exec_->clock_ns() - clock_before;
  // Graph500 counts the undirected edges of the traversed component
  // (independent of traversal direction): sum of visited degrees / 2.
  std::uint64_t degree_sum = 0;
  for (std::uint32_t v = 0; v < graph.num_vertices; ++v) {
    if (parents[v] != kUnvisited) degree_sum += graph.degree(v);
  }
  const std::uint64_t traversed = degree_sum / 2;
  if (elapsed_ns <= 0.0 || traversed == 0) {
    return make_error(Errc::kInternal, "degenerate BFS (isolated root?)");
  }
  const double teps = static_cast<double>(traversed) / (elapsed_ns / 1e9);
  return std::make_pair(teps, traversed);
}

Result<Graph500Result> Graph500Runner::run() {
  Graph500Result result;
  result.backing_edges = graph_.num_edges;
  result.declared_graph_bytes = declared_graph_bytes();

  support::Xoshiro256 rng(config_.seed ^ 0xBF5ull);
  double inverse_sum = 0.0;
  unsigned found = 0;
  unsigned attempts = 0;
  while (found < config_.num_roots && attempts < config_.num_roots * 64) {
    ++attempts;
    const auto root =
        static_cast<std::uint32_t>(rng.next_below(graph_.num_vertices));
    if (graph_.degree(root) == 0) continue;
    auto bfs = bfs_from(root);
    if (!bfs.ok()) return bfs.error();
    result.teps_per_root.push_back(bfs->first);
    inverse_sum += 1.0 / bfs->first;
    ++found;
  }
  if (found == 0) {
    return make_error(Errc::kInternal, "no usable BFS root found");
  }
  result.harmonic_mean_teps = static_cast<double>(found) / inverse_sum;
  result.total_sim_seconds = exec_->clock_ns() / 1e9;
  return result;
}

Status Graph500Runner::validate_last_tree() const {
  const CsrGraph& graph = graph_;
  std::span<const std::uint32_t> parents = parents_->span();
  const std::uint32_t root = last_root_;
  if (parents[root] != root) {
    return make_error(Errc::kInternal, "root is not its own parent");
  }
  for (std::uint32_t v = 0; v < graph.num_vertices; ++v) {
    const std::uint32_t p = parents[v];
    if (p == kUnvisited || v == root) continue;
    if (p >= graph.num_vertices || parents[p] == kUnvisited) {
      return make_error(Errc::kInternal,
                        "vertex " + std::to_string(v) + " has unvisited parent");
    }
    // Edge (p, v) must exist; adjacency lists are sorted by construction.
    const auto begin = graph.targets.begin() +
                       static_cast<std::ptrdiff_t>(graph.offsets[p]);
    const auto end = graph.targets.begin() +
                     static_cast<std::ptrdiff_t>(graph.offsets[p + 1]);
    if (!std::binary_search(begin, end, v)) {
      return make_error(Errc::kInternal,
                        "tree edge (" + std::to_string(p) + "," +
                            std::to_string(v) + ") not in graph");
    }
  }
  return {};
}

}  // namespace hetmem::apps
