#include "hetmem/apps/spmv.hpp"

#include "hetmem/support/rng.hpp"

namespace hetmem::apps {

using support::Errc;
using support::make_error;
using support::Result;
using support::Status;

SpmvPlacement SpmvPlacement::all_on_node(unsigned node) {
  SpmvPlacement placement;
  placement.matrix.forced_node = node;
  placement.x.forced_node = node;
  placement.y.forced_node = node;
  return placement;
}

SpmvPlacement SpmvPlacement::per_buffer() {
  SpmvPlacement placement;
  placement.matrix.attribute = attr::kBandwidth;
  placement.x.attribute = attr::kLatency;
  placement.y.attribute = attr::kBandwidth;
  return placement;
}

SpmvRunner::SpmvRunner(sim::SimMachine& machine, SpmvConfig config)
    : machine_(&machine), config_(config) {}

SpmvRunner::~SpmvRunner() {
  for (sim::BufferId id : owned_) (void)machine_->free(id);
}

Result<std::unique_ptr<SpmvRunner>> SpmvRunner::create(
    sim::SimMachine& machine, alloc::HeterogeneousAllocator* allocator,
    const support::Bitmap& initiator, const SpmvConfig& config,
    const SpmvPlacement& placement) {
  std::unique_ptr<SpmvRunner> runner(new SpmvRunner(machine, config));

  const std::uint64_t nnz_backing =
      static_cast<std::uint64_t>(config.backing_rows) * config.nnz_per_row;
  // Declared footprints: values take 2/3 of matrix_bytes (8B vs 4B index).
  struct Request {
    const char* label;
    std::uint64_t declared;
    std::size_t backing;
    const BufferPlacement* placement;
    sim::BufferId* out;
  };
  const Request requests[] = {
      {"spmv.values", config.matrix_bytes * 2 / 3,
       static_cast<std::size_t>(nnz_backing * sizeof(double)),
       &placement.matrix, &runner->values_id_},
      {"spmv.indices", config.matrix_bytes / 3,
       static_cast<std::size_t>(nnz_backing * sizeof(std::uint32_t)),
       &placement.matrix, &runner->indices_id_},
      {"spmv.offsets",
       std::max<std::uint64_t>(1, config.matrix_bytes / 128),
       (static_cast<std::size_t>(config.backing_rows) + 1) *
           sizeof(std::uint64_t),
       &placement.matrix, &runner->offsets_id_},
      {"spmv.x", config.vector_bytes,
       static_cast<std::size_t>(config.backing_rows) * sizeof(double),
       &placement.x, &runner->x_id_},
      {"spmv.y", std::max<std::uint64_t>(1, config.vector_bytes / 4),
       static_cast<std::size_t>(config.backing_rows) * sizeof(double),
       &placement.y, &runner->y_id_},
  };
  for (const Request& request : requests) {
    if (request.placement->forced_node.has_value()) {
      auto buffer = machine.allocate(request.declared,
                                     *request.placement->forced_node,
                                     request.label, request.backing);
      if (!buffer.ok()) return buffer.error();
      *request.out = *buffer;
    } else {
      if (allocator == nullptr) {
        return make_error(Errc::kInvalidArgument,
                          "attribute placement requires an allocator");
      }
      alloc::AllocRequest alloc_request;
      alloc_request.bytes = request.declared;
      alloc_request.attribute = request.placement->attribute;
      alloc_request.initiator = initiator;
      alloc_request.policy = request.placement->policy;
      alloc_request.backing_bytes = request.backing;
      alloc_request.label = request.label;
      alloc_request.attribute_rescue = request.placement->attribute_rescue;
      auto allocation = allocator->mem_alloc(alloc_request);
      if (!allocation.ok()) return allocation.error();
      *request.out = allocation->buffer;
    }
    runner->owned_.push_back(*request.out);
  }

  runner->exec_ = std::make_unique<sim::ExecutionContext>(machine, initiator,
                                                          config.threads);
  runner->exec_->set_mlp(config.mlp);

  runner->values_ = std::make_unique<sim::Array<double>>(machine,
                                                         runner->values_id_);
  runner->indices_ =
      std::make_unique<sim::Array<std::uint32_t>>(machine, runner->indices_id_);
  runner->offsets_ =
      std::make_unique<sim::Array<std::uint64_t>>(machine, runner->offsets_id_);
  runner->x_ = std::make_unique<sim::Array<double>>(machine, runner->x_id_);
  runner->y_ = std::make_unique<sim::Array<double>>(machine, runner->y_id_);

  // Build a random sparse matrix and input vector (untimed construction).
  sim::Array<double>& values = *runner->values_;
  sim::Array<std::uint32_t>& indices = *runner->indices_;
  sim::Array<std::uint64_t>& offsets = *runner->offsets_;
  sim::Array<double>& x = *runner->x_;
  support::Xoshiro256 rng(config.seed);
  for (std::uint32_t row = 0; row <= config.backing_rows; ++row) {
    offsets.span()[row] =
        static_cast<std::uint64_t>(row) * config.nnz_per_row;
  }
  for (std::uint64_t i = 0; i < nnz_backing; ++i) {
    indices.span()[i] =
        static_cast<std::uint32_t>(rng.next_below(config.backing_rows));
    values.span()[i] = 1.0 + static_cast<double>(i % 9);
  }
  for (std::uint32_t row = 0; row < config.backing_rows; ++row) {
    x.span()[row] = 1.0 / (1.0 + static_cast<double>(row % 13));
  }
  return runner;
}

void SpmvRunner::refresh_arrays() {
  values_->refresh_model();
  indices_->refresh_model();
  offsets_->refresh_model();
  x_->refresh_model();
  y_->refresh_model();
}

Result<SpmvResult> SpmvRunner::run() {
  sim::Array<double>& values = *values_;
  sim::Array<std::uint32_t>& indices = *indices_;
  sim::Array<std::uint64_t>& offsets = *offsets_;
  sim::Array<double>& x = *x_;
  sim::Array<double>& y = *y_;

  const std::uint32_t rows = config_.backing_rows;
  // Scale factor: declared traffic per backing element.
  const double value_scale =
      static_cast<double>(machine_->info(values_id_).declared_bytes);
  const double index_scale =
      static_cast<double>(machine_->info(indices_id_).declared_bytes);
  const double y_scale =
      static_cast<double>(machine_->info(y_id_).declared_bytes);
  // Gathers at declared scale: one per nonzero of the DECLARED matrix.
  const double declared_nnz =
      static_cast<double>(machine_->info(values_id_).declared_bytes) /
      sizeof(double);

  const double clock_before = exec_->clock_ns();
  for (unsigned iter = 0; iter < config_.iterations; ++iter) {
    exec_->run_phase(
        "spmv", config_.threads,
        [&](sim::ThreadCtx& ctx, unsigned thread, std::size_t begin,
            std::size_t end) {
          if (begin >= end) return;
          // Real computation over this thread's row slice.
          const std::uint32_t chunk = rows / config_.threads;
          const std::uint32_t lo = thread * chunk;
          const std::uint32_t hi =
              thread + 1 == config_.threads ? rows : lo + chunk;
          for (std::uint32_t row = lo; row < hi; ++row) {
            double acc = 0.0;
            for (std::uint64_t k = offsets.span()[row];
                 k < offsets.span()[row + 1]; ++k) {
              acc += values.span()[k] * x.span()[indices.span()[k]];
            }
            y.span()[row] = acc;
          }
          // Declared-scale traffic, one share per simulated thread:
          // matrix streams, x gathers, y streams out.
          const double share = 1.0 / config_.threads;
          values.record_bulk_read(ctx, value_scale * share);
          indices.record_bulk_read(ctx, index_scale * share);
          x.record_bulk_random_reads(ctx, declared_nnz * share);
          y.record_bulk_write(ctx, y_scale * share);
          // Two flops per nonzero at ~1 flop/ns/core headroom.
          ctx.add_compute_ns(declared_nnz * share * 0.5);
        });
  }
  const double elapsed_ns = exec_->clock_ns() - clock_before;
  if (elapsed_ns <= 0.0) {
    return make_error(Errc::kInternal, "zero elapsed simulated time");
  }

  SpmvResult result;
  result.seconds = elapsed_ns / 1e9;
  result.gflops =
      2.0 * declared_nnz * config_.iterations / elapsed_ns;  // flops per ns
  result.matrix_node = machine_->info(values_id_).node;
  result.x_node = machine_->info(x_id_).node;
  double checksum = 0.0;
  for (double value : y.span()) checksum += value;
  result.checksum = checksum;
  return result;
}

}  // namespace hetmem::apps
