#include "hetmem/apps/csr.hpp"

#include <algorithm>

namespace hetmem::apps {

CsrGraph build_csr(std::vector<Edge> edges, std::uint32_t num_vertices) {
  // Symmetrize and drop self-loops.
  std::vector<Edge> sym;
  sym.reserve(edges.size() * 2);
  for (const Edge& e : edges) {
    if (e.u == e.v) continue;
    sym.push_back(e);
    sym.push_back(Edge{e.v, e.u});
  }
  std::sort(sym.begin(), sym.end(), [](const Edge& a, const Edge& b) {
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  });
  sym.erase(std::unique(sym.begin(), sym.end(),
                        [](const Edge& a, const Edge& b) {
                          return a.u == b.u && a.v == b.v;
                        }),
            sym.end());

  CsrGraph graph;
  graph.num_vertices = num_vertices;
  graph.num_edges = sym.size() / 2;
  graph.offsets.assign(num_vertices + 1, 0);
  for (const Edge& e : sym) ++graph.offsets[e.u + 1];
  for (std::uint32_t v = 0; v < num_vertices; ++v) {
    graph.offsets[v + 1] += graph.offsets[v];
  }
  graph.targets.resize(sym.size());
  std::vector<std::uint64_t> cursor(graph.offsets.begin(), graph.offsets.end() - 1);
  for (const Edge& e : sym) graph.targets[cursor[e.u]++] = e.v;
  return graph;
}

}  // namespace hetmem::apps
