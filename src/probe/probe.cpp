#include "hetmem/probe/probe.hpp"

#include <algorithm>

#include "hetmem/simmem/array.hpp"
#include "hetmem/simmem/exec.hpp"
#include "hetmem/support/rng.hpp"
#include "hetmem/support/units.hpp"

namespace hetmem::probe {

using support::Bitmap;
using support::Errc;
using support::make_error;
using support::Result;
using support::Status;

namespace {

/// One physical measurement run: fault consult, kernels, optional noise.
Result<Measurement> measure_once(sim::SimMachine& machine, const Bitmap& initiator,
                                 unsigned target_node, const ProbeOptions& options) {
  if (target_node >= machine.topology().numa_nodes().size()) {
    return make_error(Errc::kInvalidArgument, "no such target node");
  }
  if (initiator.empty()) {
    return make_error(Errc::kInvalidArgument, "empty initiator");
  }
  if (options.faults != nullptr &&
      options.faults->should_fail(fault::site::kProbeFail)) {
    return make_error(Errc::kTransient,
                      "injected probe failure for node " +
                          std::to_string(target_node));
  }
  auto buffer = machine.allocate(options.buffer_bytes, target_node, "probe",
                                 options.backing_bytes);
  if (!buffer.ok()) return buffer.error();
  const sim::BufferId id = *buffer;

  Measurement m;
  m.initiator = initiator;
  m.target_node = target_node;

  {
    sim::ExecutionContext exec(machine, initiator, options.threads);
    sim::Array<std::uint64_t> array(machine, id);
    const double bytes_per_thread =
        static_cast<double>(options.buffer_bytes) / options.threads;

    // Copy kernel: 1 read stream + 1 write stream -> "Bandwidth".
    const auto& copy = exec.run_phase(
        "copy", options.threads,
        [&](sim::ThreadCtx& ctx, unsigned, std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) {
            array.record_bulk_read(ctx, bytes_per_thread / 2.0);
            array.record_bulk_write(ctx, bytes_per_thread / 2.0);
          }
        });
    m.bandwidth_bps =
        static_cast<double>(options.buffer_bytes) / (copy.sim_ns / 1e9);

    const auto& read_only = exec.run_phase(
        "read", options.threads,
        [&](sim::ThreadCtx& ctx, unsigned, std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) {
            array.record_bulk_read(ctx, bytes_per_thread);
          }
        });
    m.read_bandwidth_bps =
        static_cast<double>(options.buffer_bytes) / (read_only.sim_ns / 1e9);

    const auto& write_only = exec.run_phase(
        "write", options.threads,
        [&](sim::ThreadCtx& ctx, unsigned, std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) {
            array.record_bulk_write(ctx, bytes_per_thread);
          }
        });
    m.write_bandwidth_bps =
        static_cast<double>(options.buffer_bytes) / (write_only.sim_ns / 1e9);
  }

  {
    // Pointer chase: single thread, MLP 1, over a random cycle built in the
    // real backing (lmbench/multichase methodology).
    sim::ExecutionContext exec(machine, initiator, /*thread_count=*/1);
    exec.set_mlp(1.0);
    sim::Array<std::uint32_t> chase(machine, id);
    const std::size_t cycle = std::max<std::size_t>(2, chase.size());

    // Sattolo's algorithm: a single cycle visiting every slot.
    std::span<std::uint32_t> slots = chase.span();
    for (std::size_t i = 0; i < cycle; ++i) slots[i] = static_cast<std::uint32_t>(i);
    support::Xoshiro256 rng(0x9E3779B9u);
    for (std::size_t i = cycle - 1; i > 0; --i) {
      const std::size_t j = rng.next_below(i);
      std::swap(slots[i], slots[j]);
    }

    const std::size_t accesses = options.chase_accesses;
    const auto& chase_phase = exec.run_phase(
        "chase", 1, [&](sim::ThreadCtx& ctx, unsigned, std::size_t, std::size_t) {
          std::uint32_t position = 0;
          for (std::size_t i = 0; i < accesses; ++i) {
            position = chase.load_rand(ctx, position % cycle);
          }
        });
    // load_rand only charges expected misses; divide by the miss rate to
    // recover per-access latency the way a real chase (always missing, the
    // buffer defeats the LLC by construction) would see it.
    const double misses =
        static_cast<double>(accesses) * chase.random_miss_rate();
    m.latency_ns = misses > 0.0 ? chase_phase.sim_ns / misses : 0.0;
  }

  if (Status status = machine.free(id); !status.ok()) return status.error();

  if (options.faults != nullptr) {
    // One independent noise draw per metric: a noisy probe rarely distorts
    // bandwidth and latency by the same factor.
    m.bandwidth_bps *= options.faults->noise_factor(fault::site::kProbeNoise);
    m.read_bandwidth_bps *= options.faults->noise_factor(fault::site::kProbeNoise);
    m.write_bandwidth_bps *= options.faults->noise_factor(fault::site::kProbeNoise);
    m.latency_ns *= options.faults->noise_factor(fault::site::kProbeNoise);
  }
  return m;
}

/// Relative disagreement between two runs of the same metric.
double relative_spread(double a, double b) {
  const double hi = std::max(a, b);
  const double lo = std::min(a, b);
  if (hi <= 0.0) return 0.0;
  return (hi - lo) / hi;
}

}  // namespace

Result<Measurement> measure(sim::SimMachine& machine, const Bitmap& initiator,
                            unsigned target_node, const ProbeOptions& options) {
  auto first = measure_once(machine, initiator, target_node, options);
  if (!first.ok()) return first;

  const unsigned repeats = std::max(1u, options.repeats);
  for (unsigned run = 1; run < repeats; ++run) {
    auto again = measure_once(machine, initiator, target_node, options);
    // A failed repeat is itself evidence the pair is flaky: keep the first
    // result but stop trusting it.
    if (!again.ok()) {
      first.value().suspect = true;
      break;
    }
    if (relative_spread(first->bandwidth_bps, again->bandwidth_bps) >
            options.suspect_tolerance ||
        relative_spread(first->read_bandwidth_bps, again->read_bandwidth_bps) >
            options.suspect_tolerance ||
        relative_spread(first->write_bandwidth_bps, again->write_bandwidth_bps) >
            options.suspect_tolerance ||
        relative_spread(first->latency_ns, again->latency_ns) >
            options.suspect_tolerance) {
      first.value().suspect = true;
    }
  }
  return first;
}

Result<DiscoveryReport> discover(sim::SimMachine& machine,
                                 const ProbeOptions& options) {
  DiscoveryReport report;
  const auto& nodes = machine.topology().numa_nodes();

  // Distinct localities present in the machine (each is a candidate
  // initiator: "the cores of one SubNUMA cluster", "of one package", ...).
  std::vector<Bitmap> localities;
  for (const topo::Object* node : nodes) {
    if (node->cpuset().empty()) continue;  // CPU-less nodes cannot initiate
    if (std::none_of(localities.begin(), localities.end(),
                     [&](const Bitmap& seen) { return seen == node->cpuset(); })) {
      localities.push_back(node->cpuset());
    }
  }

  for (const Bitmap& initiator : localities) {
    for (const topo::Object* node : nodes) {
      const bool local = initiator.is_subset_of(node->cpuset());
      if (!local && !options.include_remote) continue;
      auto measurement =
          measure(machine, initiator, node->logical_index(), options);
      if (!measurement.ok()) {
        // Invalid arguments are caller bugs and still abort; a failed
        // measurement (injected or real) only costs the one pair.
        if (measurement.error().code == Errc::kInvalidArgument) {
          return measurement.error();
        }
        ++report.failed_pairs;
        continue;
      }
      report.measurements.push_back(std::move(measurement.value()));
    }
  }
  return report;
}

Status feed_registry(attr::MemAttrRegistry& registry, const DiscoveryReport& report) {
  const topo::Topology& topology = registry.topology();
  for (const Measurement& m : report.measurements) {
    const topo::Object* target = topology.numa_node(m.target_node);
    if (target == nullptr) {
      return make_error(Errc::kInvalidArgument, "measurement for unknown node");
    }
    const auto initiator = attr::Initiator::from_cpuset(m.initiator);
    if (auto s = registry.set_value(attr::kBandwidth, *target, initiator,
                                    m.bandwidth_bps);
        !s.ok()) {
      return s;
    }
    if (auto s = registry.set_value(attr::kReadBandwidth, *target, initiator,
                                    m.read_bandwidth_bps);
        !s.ok()) {
      return s;
    }
    if (auto s = registry.set_value(attr::kWriteBandwidth, *target, initiator,
                                    m.write_bandwidth_bps);
        !s.ok()) {
      return s;
    }
    if (auto s = registry.set_value(attr::kLatency, *target, initiator, m.latency_ns);
        !s.ok()) {
      return s;
    }
    if (m.suspect) {
      // Repeat disagreement demotes the stored values so resilient rankings
      // prefer targets with clean measurements (docs/RESILIENCE.md).
      for (attr::AttrId attr : {attr::kBandwidth, attr::kReadBandwidth,
                                attr::kWriteBandwidth, attr::kLatency}) {
        if (auto s = registry.set_confidence(attr, *target, initiator,
                                             attr::Confidence::kNoisy);
            !s.ok()) {
          return s;
        }
      }
    }
  }
  return {};
}

Result<attr::AttrId> register_triad_attribute(attr::MemAttrRegistry& registry,
                                              const DiscoveryReport& report) {
  auto attr = registry.register_attribute("StreamTriad", attr::Polarity::kHigherFirst,
                                          /*need_initiator=*/true);
  if (!attr.ok()) return attr;
  const topo::Topology& topology = registry.topology();
  for (const Measurement& m : report.measurements) {
    const topo::Object* target = topology.numa_node(m.target_node);
    if (target == nullptr || m.read_bandwidth_bps <= 0.0 ||
        m.write_bandwidth_bps <= 0.0) {
      continue;
    }
    // Triad moves 16B of reads and 8B of writes per element.
    const double triad =
        24.0 / (16.0 / m.read_bandwidth_bps + 8.0 / m.write_bandwidth_bps);
    if (auto s = registry.set_value(*attr, *target,
                                    attr::Initiator::from_cpuset(m.initiator), triad);
        !s.ok()) {
      return s.error();
    }
  }
  return attr;
}

std::string report_to_string(const DiscoveryReport& report,
                             const topo::Topology& topology) {
  std::string out;
  for (const Measurement& m : report.measurements) {
    const topo::Object* node = topology.numa_node(m.target_node);
    out += "initiator {" + m.initiator.to_list_string() + "} -> NUMANode L#" +
           std::to_string(m.target_node) + " (" +
           (node != nullptr ? topo::memory_kind_name(node->memory_kind()) : "?") +
           "): " + support::format_bandwidth(m.bandwidth_bps) + " copy, " +
           support::format_bandwidth(m.read_bandwidth_bps) + " read, " +
           support::format_bandwidth(m.write_bandwidth_bps) + " write, " +
           support::format_latency_ns(m.latency_ns) + "\n";
  }
  return out;
}

}  // namespace hetmem::probe
